//! Umbrella crate for the COMET workspace.
//!
//! This crate only exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The library surface is
//! a re-export of the [`comet`] facade; depend on the individual crates
//! (or on `comet`) directly in real code.

pub use comet::*;
