//! The semantic-coupling experiment (E3). Kienzle & Guerraoui (ECOOP
//! 2002) argue that transactional behaviour cannot be "aspectized away":
//! a generic transactional aspect applied *without knowledge of the
//! application* cannot deliver the desired semantics. The paper's answer
//! is that the parameter set `Si` that specialized the model
//! transformation carries exactly that knowledge into the aspect.
//!
//! The scenario: `Bank.transfer` must be atomic, but the audit counter
//! written by `Bank.noteAudit` (called from inside `transfer`) must
//! survive even when the transfer aborts — a business rule no generic
//! aspect can guess.
//!
//! * **No aspect**: a mid-transfer crash leaves the books inconsistent.
//! * **Naive generic aspect** (wraps *every* method, no `Si`): the books
//!   are consistent, but the audit record is rolled back with the failed
//!   transfer — observably wrong — and every harmless query now pays for
//!   a transaction.
//! * **`Si`-specialized aspects** (the paper's proposal): transfer is
//!   atomic *and* the audit survives (`requires-new`), with transactions
//!   only where the application semantics demand them.
//!
//! Run with: `cargo run --example semantic_coupling`

use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, Weaver};
use comet_codegen::{Block, BodyProvider, Expr, FunctionalGenerator, IrBinOp, Program, Stmt};
use comet_concerns::transactions;
use comet_interp::{Interp, Value};
use comet_model::{ModelBuilder, Primitive};
use comet_transform::{ParamSet, ParamValue};

fn functional_program() -> Program {
    let model = ModelBuilder::new("books")
        .class("Bank", |c| {
            c.attribute("balance", Primitive::Int)?
                .attribute("reserve", Primitive::Int)?
                .attribute("audits", Primitive::Int)?
                .operation("transfer", |o| o.parameter("amount", Primitive::Int))?
                .operation("noteAudit", |o| Ok(o))?
                .operation("getBalance", |o| o.returns(Primitive::Int))
        })
        .expect("valid model")
        .build();
    let transfer = Block::of(vec![
        Stmt::Expr(Expr::call_this("noteAudit", vec![])),
        Stmt::set_this_field(
            "balance",
            Expr::binary(IrBinOp::Sub, Expr::this_field("balance"), Expr::var("amount")),
        ),
        Stmt::If {
            cond: Expr::binary(IrBinOp::Eq, Expr::var("amount"), Expr::int(13)),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("crash mid-transfer"))]),
            else_block: None,
        },
        Stmt::set_this_field(
            "reserve",
            Expr::binary(IrBinOp::Add, Expr::this_field("reserve"), Expr::var("amount")),
        ),
        Stmt::ret(Expr::null()),
    ]);
    let note = Block::of(vec![Stmt::set_this_field(
        "audits",
        Expr::binary(IrBinOp::Add, Expr::this_field("audits"), Expr::int(1)),
    )]);
    let get = Block::of(vec![Stmt::ret(Expr::this_field("balance"))]);
    let bodies = BodyProvider::new()
        .provide("Bank::transfer", transfer)
        .provide("Bank::noteAudit", note)
        .provide("Bank::getBalance", get);
    FunctionalGenerator::new().generate(&model, &bodies)
}

struct Outcome {
    balance: Value,
    reserve: Value,
    audits: Value,
    tx_begun: u64,
}

fn run(program: Program) -> Result<Outcome, Box<dyn std::error::Error>> {
    let mut interp = Interp::new(program);
    let bank = interp.create("Bank")?;
    interp.set_field(&bank, "balance", Value::Int(100))?;
    // A good transfer, a crashing transfer, and a few queries.
    interp.call(bank.clone(), "transfer", vec![Value::Int(20)])?;
    let _ = interp.call(bank.clone(), "transfer", vec![Value::Int(13)]);
    for _ in 0..5 {
        interp.call(bank.clone(), "getBalance", vec![])?;
    }
    Ok(Outcome {
        balance: interp.field(&bank, "balance")?,
        reserve: interp.field(&bank, "reserve")?,
        audits: interp.field(&bank, "audits")?,
        tx_begun: interp.middleware().tx.stats().begun,
    })
}

fn naive_generic_aspect() -> Aspect {
    // What a reusable library aspect can do without application
    // knowledge: wrap every execution in a (joining) transaction.
    Aspect::new("naive-generic-tx").with_advice(Advice::new(
        AdviceKind::Around,
        parse_pointcut("execution(*.*)").expect("static pointcut"),
        Block::of(vec![
            Stmt::If {
                cond: Expr::intrinsic("tx.active", vec![]),
                then_block: Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
                else_block: None,
            },
            Stmt::Expr(Expr::intrinsic("tx.begin", vec![Expr::str("read-committed")])),
            Stmt::TryCatch {
                body: Block::of(vec![
                    Stmt::Local {
                        name: "__r".into(),
                        ty: comet_codegen::IrType::Str,
                        init: Some(Expr::Proceed(vec![])),
                    },
                    Stmt::Expr(Expr::intrinsic("tx.commit", vec![])),
                    Stmt::ret(Expr::var("__r")),
                ]),
                var: "__e".into(),
                handler: Block::of(vec![
                    Stmt::Expr(Expr::intrinsic("tx.rollback", vec![])),
                    Stmt::Throw(Expr::var("__e")),
                ]),
                finally: None,
            },
        ]),
    ))
}

fn print_outcome(label: &str, o: &Outcome) {
    println!(
        "{label:<28} balance={:<4} reserve={:<3} audits={:<2} tx.begun={}",
        o.balance.to_string(),
        o.reserve.to_string(),
        o.audits.to_string(),
        o.tx_begun
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let functional = functional_program();

    // Case A: no aspect. The crash leaves money destroyed: 13 debited,
    // never credited.
    let a = run(functional.clone())?;
    print_outcome("A: no aspect", &a);
    assert_eq!(a.balance, Value::Int(67)); // 100 - 20 - 13
    assert_eq!(a.reserve, Value::Int(20)); // the 13 vanished

    // Case B: the naive generic aspect, no Si. Books consistent, but the
    // audit of the failed transfer was rolled back with it, and even
    // getBalance paid for transactions.
    let b_woven = Weaver::new(vec![naive_generic_aspect()]).weave(&functional)?;
    let b = run(b_woven.program)?;
    print_outcome("B: naive generic aspect", &b);
    assert_eq!(b.balance, Value::Int(80));
    assert_eq!(b.reserve, Value::Int(20));
    assert_eq!(b.audits, Value::Int(1), "audit of the failed transfer was LOST");
    assert_eq!(b.tx_begun, 7, "every top-level execution paid for a transaction");

    // Case C: the paper's proposal. The same Si that specialized the
    // model transformation specializes the aspect: transfer is the
    // transaction boundary, noteAudit runs requires-new.
    let pair = transactions::pair();
    let (_, boundary) = pair.specialize(
        ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()])),
    )?;
    let (_, audit) = pair.specialize(
        ParamSet::new()
            .with("methods", ParamValue::from(vec!["Bank.noteAudit".to_owned()]))
            .with("propagation", ParamValue::from("requires-new")),
    )?;
    let c_woven = Weaver::new(vec![boundary, audit]).weave(&functional)?;
    let c = run(c_woven.program)?;
    print_outcome("C: Si-specialized aspects", &c);
    assert_eq!(c.balance, Value::Int(80), "atomic: crash rolled back");
    assert_eq!(c.reserve, Value::Int(20));
    assert_eq!(c.audits, Value::Int(2), "audits survive aborted transfers");
    assert!(c.tx_begun < b.tx_begun, "transactions only at declared boundaries");

    println!(
        "\nonly C is fully correct: consistent books AND durable audit trail,\n\
         with {} transactions instead of {} — the Si parameters carried the\n\
         application semantics the generic aspect could not invent.",
        c.tx_begun, b.tx_begun
    );
    Ok(())
}
