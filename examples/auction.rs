//! Distribution-heavy scenario: an auction house deployed on its own
//! node, with bidders calling in from two client nodes. Adds the
//! logging concern (call tracing) and the concurrency concern
//! (serializing `placeBid` on a named lock) on top of distribution —
//! demonstrating that concern modules compose and that precedence
//! follows the transformation order.
//!
//! Run with: `cargo run --example auction`

use comet::MdaLifecycle;
use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, IrType, LValue, Stmt};
use comet_concerns::{concurrency, distribution, logging};
use comet_interp::{Interp, Value};
use comet_model::sample::auction_pim;
use comet_model::{Model, TypeRef};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;

/// The sample auction PIM, extended with a `current: Auction` slot so the
/// functional bodies have state.
fn pim() -> Model {
    let mut model = auction_pim();
    let house = model.find_class("AuctionHouse").expect("sample class");
    let auction = model.find_class("Auction").expect("sample class");
    model.add_attribute(house, "current", TypeRef::Element(auction)).expect("fresh attribute");
    model
}

fn bodies() -> BodyProvider {
    let auction_field =
        |name: &str| Expr::Field { recv: Box::new(Expr::this_field("current")), name: name.into() };
    // openAuction(item, reserve): current = new Auction(item, reserve, "", true); return 1
    let open = Block::of(vec![
        Stmt::set_this_field(
            "current",
            Expr::New {
                class: "Auction".into(),
                args: vec![
                    Expr::var("item"),
                    Expr::var("reserve"),
                    Expr::str(""),
                    Expr::bool(true),
                ],
            },
        ),
        Stmt::ret(Expr::int(1)),
    ]);
    // placeBid(auctionId, bidder, amount): only higher bids on open auctions win.
    let bid = Block::of(vec![
        Stmt::If {
            cond: Expr::binary(IrBinOp::Eq, Expr::this_field("current"), Expr::null()),
            then_block: Block::of(vec![Stmt::ret(Expr::bool(false))]),
            else_block: None,
        },
        Stmt::If {
            cond: Expr::Unary {
                op: comet_codegen::IrUnOp::Not,
                operand: Box::new(auction_field("open")),
            },
            then_block: Block::of(vec![Stmt::ret(Expr::bool(false))]),
            else_block: None,
        },
        Stmt::If {
            cond: Expr::binary(IrBinOp::Le, Expr::var("amount"), auction_field("highestBid")),
            then_block: Block::of(vec![Stmt::ret(Expr::bool(false))]),
            else_block: None,
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::this_field("current"), name: "highestBid".into() },
            value: Expr::var("amount"),
        },
        Stmt::Assign {
            target: LValue::Field {
                recv: Expr::this_field("current"),
                name: "highestBidder".into(),
            },
            value: Expr::var("bidder"),
        },
        Stmt::ret(Expr::bool(true)),
    ]);
    // close(auctionId): open = false; return winner
    let close = Block::of(vec![
        Stmt::Assign {
            target: LValue::Field { recv: Expr::this_field("current"), name: "open".into() },
            value: Expr::bool(false),
        },
        Stmt::local("winner", IrType::Str, auction_field("highestBidder")),
        Stmt::ret(Expr::var("winner")),
    ]);
    BodyProvider::new()
        .provide("AuctionHouse::openAuction", open)
        .provide("AuctionHouse::placeBid", bid)
        .provide("AuctionHouse::close", close)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workflow = WorkflowModel::new("auction")
        .step("distribution", false)
        .step("concurrency", false)
        .step("logging", true);
    let mut mda = MdaLifecycle::new(pim(), workflow)?;

    mda.apply_concern(
        &distribution::pair(),
        ParamSet::new()
            .with("server_class", ParamValue::from("AuctionHouse"))
            .with("node", ParamValue::from("auction-node"))
            .with("registry", ParamValue::from("auctions/main"))
            .with(
                "operations",
                ParamValue::from(vec![
                    "openAuction".to_owned(),
                    "placeBid".to_owned(),
                    "close".to_owned(),
                ]),
            ),
    )?;
    mda.apply_concern(
        &concurrency::pair(),
        ParamSet::new()
            .with("methods", ParamValue::from(vec!["AuctionHouse.placeBid".to_owned()]))
            .with("lock", ParamValue::from("bids")),
    )?;
    mda.apply_concern(
        &logging::pair(),
        ParamSet::new()
            .with("targets", ParamValue::from(vec!["AuctionHouse.*".to_owned()]))
            .with("level", ParamValue::from("info")),
    )?;
    println!("applied: {:?}", mda.workflow().applied());
    println!("remaining: {:?}", mda.remaining_concerns());

    let system = mda.generate(&bodies(), comet::Backend::JavaFunctional)?;
    let mut interp = Interp::new(system.woven);
    for node in ["auction-node", "bidder-east", "bidder-west"] {
        interp.add_node(node);
    }
    let house = interp.create_on("AuctionHouse", "auction-node")?;
    interp.set_field(&house, "name", Value::from("Grand Hall"))?;
    interp.call(house.clone(), "registerRemote", vec![])?;

    // Open the auction from the east coast.
    interp.middleware_mut().bus.set_current_node("bidder-east")?;
    interp.call(house.clone(), "openAuction", vec![Value::from("a violin"), Value::Int(100)])?;

    // Alternating bids from the two client nodes.
    let mut accepted = 0;
    for round in 0..6 {
        let (node, bidder) =
            if round % 2 == 0 { ("bidder-east", "east") } else { ("bidder-west", "west") };
        interp.middleware_mut().bus.set_current_node(node)?;
        let amount = 90 + round * 20; // round 0 is below the reserve
        let ok = interp.call(
            house.clone(),
            "placeBid",
            vec![Value::Int(1), Value::from(bidder), Value::Int(amount)],
        )?;
        println!("bid {amount} from {bidder}: {ok}");
        if ok == Value::Bool(true) {
            accepted += 1;
        }
    }
    let winner = interp.call(house.clone(), "close", vec![Value::Int(1)])?;
    println!("auction closed, winner: {winner}");
    assert_eq!(winner, Value::from("west"));
    assert_eq!(accepted, 5);

    // Middleware evidence of all three concerns.
    let bus = interp.middleware().bus.stats();
    let locks = interp.middleware().locks.stats();
    let log = &interp.middleware().log;
    println!(
        "\nbus: {} messages across {} nodes | lock `bids` acquisitions: {} | log records: {}",
        bus.delivered,
        interp.middleware().bus.nodes().len(),
        locks.acquired,
        log.len()
    );
    println!(
        "east-coast link: {:?}",
        interp.middleware().bus.link_stats("bidder-east", "auction-node")
    );
    for record in log.records().iter().take(4) {
        println!("  [{:>6}us] {} {}", record.at_us, record.level, record.message);
    }
    assert_eq!(locks.acquired, 6, "every placeBid serialized on `bids`");
    assert_eq!(log.count_level("info") % 2, 0, "enter/exit pairs");
    Ok(())
}
