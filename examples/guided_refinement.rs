//! The tool-infrastructure walk-through (paper, Section 3): a
//! concern-oriented **wizard** collects the parameters, the **workflow**
//! guides the allowed order, every step is **versioned** with undo/redo,
//! the **colors** report shows which concern introduced which elements,
//! the model round-trips through **XMI**, and the result is **shipped**
//! under both packaging strategies.
//!
//! Run with: `cargo run --example guided_refinement`

use comet::{MdaLifecycle, ShippingStrategy, Wizard};
use comet_concerns::{distribution, security, transactions};
use comet_model::sample::banking_pim;
use comet_workflow::{OrderConstraint, WorkflowModel};
use comet_xmi::{export_model, import_model};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workflow = WorkflowModel::new("guided")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false)
        .constraint(OrderConstraint::Before("distribution".into(), "security".into()));
    let mut mda = MdaLifecycle::new(banking_pim(), workflow)?;

    // --- the wizard asks; an imaginary developer answers ---------------
    let pair = distribution::pair();
    let wizard = Wizard::for_pair(&pair);
    println!("wizard for `{}`:", wizard.concern());
    for q in wizard.questions() {
        println!(
            "  {} ({:?}{}) {}",
            q.name,
            q.kind,
            if q.required { ", required" } else { "" },
            q.default.map(|d| format!("[default: {d}]")).unwrap_or_default()
        );
    }
    let mut answers = BTreeMap::new();
    answers.insert("server_class".to_owned(), "Bank".to_owned());
    answers.insert("node".to_owned(), "server".to_owned());
    answers.insert("operations".to_owned(), "transfer, openAccount".to_owned());
    let si = wizard.collect(&answers)?;
    println!("\nworkflow allows next: {:?}", mda.workflow().allowed_next());
    mda.apply_concern(&pair, si)?;

    // Security is now allowed (distribution happened first).
    let sec = security::pair();
    let sec_wizard = Wizard::for_pair(&sec);
    let mut sec_answers = BTreeMap::new();
    sec_answers.insert("protected".to_owned(), "Bank.transfer:teller".to_owned());
    mda.apply_concern(&sec, sec_wizard.collect(&sec_answers)?)?;

    let tx = transactions::pair();
    let tx_wizard = Wizard::for_pair(&tx);
    let mut tx_answers = BTreeMap::new();
    tx_answers.insert("methods".to_owned(), "Bank.transfer".to_owned());
    mda.apply_concern(&tx, tx_wizard.collect(&tx_answers)?)?;
    println!("applied: {:?}, remaining: {:?}", mda.workflow().applied(), mda.remaining_concerns());
    assert!(mda.workflow().is_complete());

    // --- colors: which concern introduced what -------------------------
    println!("\n{}", mda.colors());

    // --- versioning: undo the transactions step, then change our mind --
    let before_undo = mda.model().clone();
    mda.undo_last()?;
    println!("after undo: applied = {:?}", mda.workflow().applied());
    let tx_again = transactions::pair();
    mda.apply_concern(&tx_again, tx_wizard.collect(&tx_answers)?)?;
    assert_eq!(mda.model(), &before_undo, "replaying the same Si reproduces the model");
    println!("re-applied transactions; log:");
    for commit in mda.repository().log() {
        println!("  [{}] {} {}", commit.id, commit.message, commit.hash);
    }

    // --- XMI round trip -------------------------------------------------
    let xmi = export_model(mda.model());
    let back = import_model(&xmi)?;
    assert_eq!(&back, mda.model());
    println!("\nXMI round trip OK ({} bytes)", xmi.len());

    // --- shipping: the paper's open question, both answers --------------
    let final_only = mda.ship(ShippingStrategy::FinalModelOnly);
    let full = mda.ship(ShippingStrategy::FullLineage);
    println!(
        "ship final-only: {} bytes | full lineage ({} steps): {} bytes",
        final_only.payload_bytes(),
        full.lineage.len(),
        full.payload_bytes()
    );
    assert!(full.payload_bytes() > final_only.payload_bytes());
    for step in &full.lineage {
        println!("  lineage step: {}", step.message);
    }
    Ok(())
}
