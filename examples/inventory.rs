//! Persistence + context-sensitive logging: an inventory service whose
//! entities are saved to the simulated document store after every
//! mutator, with audit logging that fires **only within the control flow
//! of `Warehouse.checkout`** — a `cflow(...)` pointcut, the dynamic
//! residue feature AspectJ is known for, composed with a concern pair
//! from the standard library.
//!
//! Run with: `cargo run --example inventory`

use comet::MdaLifecycle;
use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, Weaver};
use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, Stmt};
use comet_concerns::persistence;
use comet_interp::{Interp, Value};
use comet_model::{Model, ModelBuilder, Primitive, TypeRef};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;

fn pim() -> Model {
    let mut model = ModelBuilder::new("inventory")
        .class("Item", |c| {
            c.attribute("sku", Primitive::Str)?
                .attribute("stock", Primitive::Int)?
                .operation("adjust", |o| o.parameter("delta", Primitive::Int))
        })
        .expect("valid model")
        .build();
    let item = model.find_class("Item").expect("just added");
    let root = model.root();
    let warehouse = model.add_class(root, "Warehouse").expect("valid");
    model.add_attribute(warehouse, "item", TypeRef::Element(item)).expect("valid");
    let checkout = model.add_operation(warehouse, "checkout").expect("valid");
    model.add_parameter(checkout, "n", Primitive::Int.into()).expect("valid");
    model.set_return_type(checkout, Primitive::Bool.into()).expect("valid");
    let restock = model.add_operation(warehouse, "restock").expect("valid");
    model.add_parameter(restock, "n", Primitive::Int.into()).expect("valid");
    model
}

fn bodies() -> BodyProvider {
    let item_stock =
        || Expr::Field { recv: Box::new(Expr::this_field("item")), name: "stock".into() };
    // checkout(n): refuse when out of stock, otherwise adjust(-n).
    let checkout = Block::of(vec![
        Stmt::If {
            cond: Expr::binary(IrBinOp::Lt, item_stock(), Expr::var("n")),
            then_block: Block::of(vec![Stmt::ret(Expr::bool(false))]),
            else_block: None,
        },
        Stmt::Expr(Expr::call(
            Expr::this_field("item"),
            "adjust",
            vec![Expr::binary(IrBinOp::Mul, Expr::int(-1), Expr::var("n"))],
        )),
        Stmt::ret(Expr::bool(true)),
    ]);
    let restock = Block::of(vec![Stmt::Expr(Expr::call(
        Expr::this_field("item"),
        "adjust",
        vec![Expr::var("n")],
    ))]);
    let adjust = Block::of(vec![Stmt::set_this_field(
        "stock",
        Expr::binary(IrBinOp::Add, Expr::this_field("stock"), Expr::var("delta")),
    )]);
    BodyProvider::new()
        .provide("Warehouse::checkout", checkout)
        .provide("Warehouse::restock", restock)
        .provide("Item::adjust", adjust)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Model level: the persistence concern through the lifecycle.
    let workflow = WorkflowModel::new("inventory").step("persistence", false);
    let mut mda = MdaLifecycle::new(pim(), workflow)?;
    let step = mda.apply_concern(
        &persistence::pair(),
        ParamSet::new()
            .with("class", ParamValue::from("Item"))
            .with("key_attr", ParamValue::from("sku"))
            .with("mutators", ParamValue::from(vec!["adjust".to_owned()]))
            .with("collection", ParamValue::from("items")),
    )?;
    println!("applied {}", step.cmt.full_name());

    // Code level: the lifecycle-generated aspects PLUS a hand-written
    // audit aspect restricted to the checkout control flow.
    let system = mda.generate(&bodies(), comet::Backend::JavaFunctional)?;
    let audit = Aspect::new("checkout-audit").with_advice(Advice::new(
        AdviceKind::Before,
        parse_pointcut("execution(Item.adjust) && cflow(execution(Warehouse.checkout))")?,
        Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "log.emit",
            vec![
                Expr::str("audit"),
                Expr::binary(
                    IrBinOp::Add,
                    Expr::str("stock change in checkout: "),
                    Expr::var("__jp"),
                ),
            ],
        ))]),
    ));
    let mut aspects = mda.aspects();
    aspects.push(audit);
    let woven = Weaver::new(aspects).weave(&system.functional)?.program;

    // Execution.
    let mut interp = Interp::new(woven);
    let item = interp.create("Item")?;
    interp.set_field(&item, "sku", Value::from("SKU-1"))?;
    let warehouse = interp.create("Warehouse")?;
    interp.set_field(&warehouse, "item", item.clone())?;

    interp.call(warehouse.clone(), "restock", vec![Value::Int(10)])?;
    println!(
        "after restock(10): stock={}, audit records={}",
        interp.field(&item, "stock")?,
        interp.middleware().log.count_level("audit")
    );

    let ok = interp.call(warehouse.clone(), "checkout", vec![Value::Int(4)])?;
    println!(
        "checkout(4) -> {ok}; stock={}, audit records={}",
        interp.field(&item, "stock")?,
        interp.middleware().log.count_level("audit")
    );

    let sold_out = interp.call(warehouse, "checkout", vec![Value::Int(99)])?;
    println!("checkout(99) -> {sold_out} (refused, no audit, no save)");

    // Persistence evidence: every adjust saved a snapshot.
    let store = interp.middleware().store.stats();
    println!("store: {} saves, keys = {:?}", store.saves, interp.middleware().store.keys());

    // Restock was NOT audited (outside the checkout cflow); checkout was.
    assert_eq!(interp.middleware().log.count_level("audit"), 1);
    assert_eq!(store.saves, 2, "restock + successful checkout");
    assert_eq!(interp.field(&item, "stock")?, Value::Int(6));
    Ok(())
}
