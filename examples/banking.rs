//! The paper's running example (Fig. 2): a banking system refined along
//! three middleware-service concern dimensions — **C1 distribution, C2
//! transactions, C3 security** — each a generic transformation `T_i`
//! specialized with application parameters and paired with an
//! auto-generated aspect `A_i<p_i1, ...>`. The woven system then runs on
//! the simulated middleware, where all three concerns are *observable*:
//! remote calls cross the bus, a mid-transfer crash rolls balances back,
//! and an unauthorized principal is denied.
//!
//! Run with: `cargo run --example banking`

use comet::MdaLifecycle;
use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, IrType, Stmt};
use comet_concerns::{distribution, security, transactions};
use comet_interp::{Interp, Value};
use comet_model::{Model, ModelBuilder, Primitive, TypeRef};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::{OrderConstraint, WorkflowModel};

/// A banking PIM whose `Bank` holds two `Account` references so the
/// functional `transfer` body has real state to act on.
fn pim() -> Model {
    let mut model = ModelBuilder::new("bank")
        .class("Account", |c| {
            c.attribute("number", Primitive::Str)?.attribute("balance", Primitive::Int)
        })
        .expect("valid model")
        .build();
    let account = model.find_class("Account").expect("just added");
    let root = model.root();
    let bank = model.add_class(root, "Bank").expect("valid");
    model.add_attribute(bank, "a1", TypeRef::Element(account)).expect("valid");
    model.add_attribute(bank, "a2", TypeRef::Element(account)).expect("valid");
    let transfer = model.add_operation(bank, "transfer").expect("valid");
    for p in ["from", "to"] {
        model.add_parameter(transfer, p, Primitive::Str.into()).expect("valid");
    }
    model.add_parameter(transfer, "amount", Primitive::Int.into()).expect("valid");
    model.set_return_type(transfer, Primitive::Bool.into()).expect("valid");
    let get_balance = model.add_operation(bank, "getBalance").expect("valid");
    model.add_parameter(get_balance, "number", Primitive::Str.into()).expect("valid");
    model.set_return_type(get_balance, Primitive::Int.into()).expect("valid");
    model
}

/// Picks `this.a1` or `this.a2` by account number into local `var`.
fn select_account(var: &str, number_param: &str) -> Vec<Stmt> {
    vec![
        Stmt::local(var, IrType::Object("Account".into()), Expr::this_field("a1")),
        Stmt::If {
            cond: Expr::binary(
                IrBinOp::Ne,
                Expr::Field { recv: Box::new(Expr::var(var)), name: "number".into() },
                Expr::var(number_param),
            ),
            then_block: Block::of(vec![Stmt::set_var(var, Expr::this_field("a2"))]),
            else_block: None,
        },
    ]
}

/// The hand-written functional bodies (the MDA "protected regions").
/// Note: not a word about distribution, transactions or security.
fn bodies() -> BodyProvider {
    let mut transfer = Vec::new();
    transfer.extend(select_account("src", "from"));
    transfer.extend(select_account("dst", "to"));
    transfer.extend([
        Stmt::If {
            cond: Expr::binary(
                IrBinOp::Lt,
                Expr::Field { recv: Box::new(Expr::var("src")), name: "balance".into() },
                Expr::var("amount"),
            ),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("insufficient funds"))]),
            else_block: None,
        },
        // Debit first...
        Stmt::Assign {
            target: comet_codegen::LValue::Field { recv: Expr::var("src"), name: "balance".into() },
            value: Expr::binary(
                IrBinOp::Sub,
                Expr::Field { recv: Box::new(Expr::var("src")), name: "balance".into() },
                Expr::var("amount"),
            ),
        },
        // ... crash between debit and credit when amount == 13 — the
        // failure the transactions concern must contain.
        Stmt::If {
            cond: Expr::binary(IrBinOp::Eq, Expr::var("amount"), Expr::int(13)),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("simulated crash after debit"))]),
            else_block: None,
        },
        Stmt::Assign {
            target: comet_codegen::LValue::Field { recv: Expr::var("dst"), name: "balance".into() },
            value: Expr::binary(
                IrBinOp::Add,
                Expr::Field { recv: Box::new(Expr::var("dst")), name: "balance".into() },
                Expr::var("amount"),
            ),
        },
        Stmt::ret(Expr::bool(true)),
    ]);

    let mut get_balance = select_account("acc", "number");
    get_balance
        .push(Stmt::ret(Expr::Field { recv: Box::new(Expr::var("acc")), name: "balance".into() }));

    BodyProvider::new()
        .provide("Bank::transfer", Block::of(transfer))
        .provide("Bank::getBalance", Block::of(get_balance))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- model level: T1, T2, T3 specialized and applied in order ----
    let workflow = WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false)
        .constraint(OrderConstraint::Before("distribution".into(), "security".into()));
    let mut mda = MdaLifecycle::new(pim(), workflow)?;

    let t1 = ParamSet::new()
        .with("server_class", ParamValue::from("Bank"))
        .with("node", ParamValue::from("server"))
        .with("operations", ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]));
    let t2 = ParamSet::new()
        .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        .with("isolation", ParamValue::from("serializable"));
    let t3 = ParamSet::new()
        .with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()]));

    for (pair, si) in
        [(distribution::pair(), t1), (transactions::pair(), t2), (security::pair(), t3)]
    {
        let step = mda.apply_concern(&pair, si)?;
        println!("T: {}", step.cmt.full_name());
        println!("A: {}", step.aspect.name);
    }
    println!("\ncolors report:\n{}", mda.colors());

    // ----- code level: functional codegen + aspect weaving -------------
    let system = mda.generate(&bodies(), comet::Backend::JavaFunctional)?;
    println!(
        "functional: {} stmts | woven: {} stmts | advice applications: {}",
        system.functional.statement_count(),
        system.woven.statement_count(),
        system.weave_trace.len()
    );

    // ----- execution on the simulated middleware -----------------------
    let mut interp = Interp::new(system.woven);
    interp.add_node("client");
    interp.add_node("server");
    interp.add_principal("alice", &["teller"]);
    interp.add_principal("bob", &["customer"]);

    let bank = interp.create_on("Bank", "server")?;
    let a1 = interp.create_on("Account", "server")?;
    let a2 = interp.create_on("Account", "server")?;
    interp.set_field(&a1, "number", Value::from("A-1"))?;
    interp.set_field(&a1, "balance", Value::Int(1_000))?;
    interp.set_field(&a2, "number", Value::from("A-2"))?;
    interp.set_field(&a2, "balance", Value::Int(50))?;
    interp.set_field(&bank, "a1", a1.clone())?;
    interp.set_field(&bank, "a2", a2.clone())?;
    interp.call(bank.clone(), "registerRemote", vec![])?;

    // All client activity happens on the client node; the distribution
    // aspect routes it through the bus.
    interp.middleware_mut().bus.set_current_node("client")?;

    println!("\n== alice (teller) transfers 200 from A-1 to A-2, remotely ==");
    interp.login("alice")?;
    let ok = interp.call(
        bank.clone(),
        "transfer",
        vec![Value::from("A-1"), Value::from("A-2"), Value::Int(200)],
    )?;
    println!(
        "  -> {ok}; balances now A-1={} A-2={}",
        interp.field(&a1, "balance")?,
        interp.field(&a2, "balance")?
    );

    println!("== alice transfers the cursed amount 13: crash mid-transfer ==");
    let err = interp
        .call(
            bank.clone(),
            "transfer",
            vec![Value::from("A-1"), Value::from("A-2"), Value::Int(13)],
        )
        .expect_err("the simulated crash must surface");
    println!("  -> {err}");
    println!(
        "  -> balances after rollback: A-1={} A-2={} (unchanged)",
        interp.field(&a1, "balance")?,
        interp.field(&a2, "balance")?
    );
    assert_eq!(interp.field(&a1, "balance")?, Value::Int(800));
    assert_eq!(interp.field(&a2, "balance")?, Value::Int(250));

    println!("== bob (customer) tries to transfer: denied by the security aspect ==");
    interp.logout();
    interp.login("bob")?;
    let err = interp
        .call(bank.clone(), "transfer", vec![Value::from("A-1"), Value::from("A-2"), Value::Int(1)])
        .expect_err("bob lacks the teller role");
    println!("  -> {err}");

    let bus = interp.middleware().bus.stats();
    let tx = interp.middleware().tx.stats();
    let denials = interp.middleware().security.denials();
    println!(
        "\nmiddleware evidence: {} messages ({} bytes, mean {:.0}us), \
         tx committed={} rolled_back={}, security denials={}",
        bus.delivered,
        bus.bytes,
        bus.mean_latency_us(),
        tx.committed,
        tx.rolled_back,
        denials
    );
    assert!(bus.delivered >= 6, "three remote calls, two messages each");
    assert_eq!(tx.rolled_back, 2, "crash rollback + denial rollback");
    assert_eq!(denials, 1);
    Ok(())
}
