//! Quickstart: the paper's Fig. 1 pipeline on one concern.
//!
//! One parameter set `Si` specializes a generic model transformation
//! *and* its paired generic aspect; the concrete transformation refines
//! the model, the concrete aspect is woven into the generated code, and
//! the resulting program runs on the simulated middleware.
//!
//! Run with: `cargo run --example quickstart`

use comet::MdaLifecycle;
use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, Stmt};
use comet_concerns::transactions;
use comet_interp::{Interp, Value};
use comet_model::sample::banking_pim;
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The PIM: the functional banking model, no concern anywhere.
    let pim = banking_pim();
    println!("PIM `{}` with {} elements", pim.name(), pim.len());

    // 2. The refinement step: specialize the transactions concern with
    //    the application-specific Si and apply it.
    let workflow = WorkflowModel::new("quickstart").step("transactions", false);
    let mut mda = MdaLifecycle::new(pim, workflow)?;
    let si = ParamSet::new()
        .with("methods", ParamValue::from(vec!["Account.withdraw".to_owned()]))
        .with("isolation", ParamValue::from("serializable"));
    let step = mda.apply_concern(&transactions::pair(), si)?;
    println!("applied {}", step.cmt.full_name());
    println!("paired aspect {}", step.aspect.name);

    // 3. Code generation: functional generator + aspect generator, then
    //    weaving (the paper's alternative to a monolithic generator).
    let withdraw_body = Block::of(vec![
        // this.balance = this.balance - amount; fail when overdrawn
        Stmt::set_this_field(
            "balance",
            Expr::binary(IrBinOp::Sub, Expr::this_field("balance"), Expr::var("amount")),
        ),
        Stmt::If {
            cond: Expr::binary(IrBinOp::Lt, Expr::this_field("balance"), Expr::int(0)),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("overdrawn"))]),
            else_block: None,
        },
        Stmt::ret(Expr::bool(true)),
    ]);
    let bodies = BodyProvider::new().provide("Account::withdraw", withdraw_body);
    let system = mda.generate(&bodies, comet::Backend::JavaFunctional)?;
    println!("\n--- generated aspect artifact ---");
    println!("{}", system.aspect_sources[0].1);

    // 4. Execution: the woven program on the simulated middleware.
    let mut interp = Interp::new(system.woven);
    let account = interp.create("Account")?;
    interp.set_field(&account, "balance", Value::Int(100))?;

    // A successful withdrawal commits.
    let ok = interp.call(account.clone(), "withdraw", vec![Value::Int(30)])?;
    println!("withdraw(30) -> {ok}, balance = {}", interp.field(&account, "balance")?);

    // An overdraft throws inside the transaction; the aspect rolls the
    // balance back — transactional behaviour the functional code never
    // mentioned.
    let err = interp
        .call(account.clone(), "withdraw", vec![Value::Int(500)])
        .expect_err("overdraft must fail");
    println!("withdraw(500) -> {err}");
    println!("balance after rollback = {}", interp.field(&account, "balance")?);
    assert_eq!(interp.field(&account, "balance")?, Value::Int(70));

    let tx = interp.middleware().tx.stats();
    println!(
        "\ntransactions: begun={} committed={} rolled_back={}",
        tx.begun, tx.committed, tx.rolled_back
    );
    Ok(())
}
