//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so
//! external dev-dependencies are replaced by small local crates (see
//! `vendor/` in the repository root). This one implements the subset of
//! proptest's API that the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, `prop_recursive`, and `boxed`,
//! * strategies for integer ranges, `bool`/integers via [`any`],
//!   string literals with a `[class]{m,n}` pattern subset, tuples,
//!   [`Just`], [`prop_oneof!`], and `prop::collection::vec`,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   in the assertion message (all workspace strategies derive `Debug`
//!   payloads small enough to read directly).
//! * **Deterministic seeding.** Each test function derives its seed
//!   from its own name (FNV-1a), so failures reproduce exactly across
//!   runs without a persistence file. Set `PROPTEST_SEED` to override.
//!
//! Both trade-offs keep the crate dependency-free while preserving the
//! property-testing discipline the suite relies on: many random cases
//! per property, reproducible on failure.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic splitmix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    /// Next 64 uniform bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// FNV-1a over a string; used by [`proptest!`] to derive per-test seeds.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Reads `PROPTEST_SEED` if set, else returns `fallback`.
pub fn seed_or(fallback: u64) -> u64 {
    std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(fallback)
}

// ---------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a clonable sampler.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy { sample: Rc::new(move |rng| this.generate(rng)) }
    }

    /// Builds a recursive strategy: `recurse` receives a boxed strategy
    /// for the *smaller* structure and returns the strategy for one
    /// level above it. `self` is the leaf. `depth` bounds recursion;
    /// the size/branch hints are accepted for API compatibility and
    /// ignored (sampling already halves recursion probability per
    /// level, which bounds expected size).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for level in 0..depth {
            let deeper = recurse(strat).boxed();
            let leaf = self.clone().boxed();
            // Deeper levels of the final strategy recurse with lower
            // probability, keeping expected tree sizes finite and small.
            let p_recurse_num = 1;
            let p_recurse_den = 2 + level as u64 / 2;
            strat = BoxedStrategy {
                sample: Rc::new(move |rng| {
                    if rng.below(p_recurse_den) < p_recurse_num {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        strat
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { sample: Rc::clone(&self.sample) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $ty
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// String pattern strategy
// ---------------------------------------------------------------------

/// String literals are strategies over a regex subset: a sequence of
/// atoms, each a literal character or a `[...]` character class
/// (supporting `a-z` ranges and literal members), optionally followed
/// by `{n}` or `{m,n}` repetition. Example: `"v[a-z]{0,4}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        // Parse one atom: a char class or a literal character.
        let choices: Vec<char> = if bytes[i] == b'[' {
            let close = pattern[i..]
                .find(']')
                .map(|off| i + off)
                .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
            let class = &bytes[i + 1..close];
            i = close + 1;
            let mut chars = Vec::new();
            let mut j = 0;
            while j < class.len() {
                if j + 2 < class.len() && class[j + 1] == b'-' {
                    for c in class[j]..=class[j + 2] {
                        chars.push(c as char);
                    }
                    j += 3;
                } else {
                    chars.push(class[j] as char);
                    j += 1;
                }
            }
            assert!(!chars.is_empty(), "empty char class in pattern `{pattern}`");
            chars
        } else {
            let c = pattern[i..].chars().next().expect("in bounds");
            i += c.len_utf8();
            vec![c]
        };
        // Parse optional {n} / {m,n} repetition.
        let (lo, hi) = if i < bytes.len() && bytes[i] == b'{' {
            let close = pattern[i..]
                .find('}')
                .map(|off| i + off)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
            let spec = &pattern[i + 1..close];
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repetition bound"),
                    n.trim().parse::<usize>().expect("repetition bound"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            let k = rng.below(choices.len() as u64) as usize;
            out.push(choices[k]);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_strategy_tuple {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A / 0);
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// The `prop::` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// A vector of values from `element`, with a length drawn
        /// uniformly from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        /// See [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let n = self.size.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests. Each function runs `config.cases` random
/// cases; a failing assertion panics with the generated inputs visible
/// in the failure message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $( $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __base = $crate::seed_or($crate::fnv(concat!(module_path!(), "::", stringify!($name))));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::new(
                        __base.wrapping_add((__case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // The closure lets bodies use `?` on fallible helpers
                    // returning `Result<(), TestCaseError>`, as upstream
                    // proptest does.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!("property {} failed: {:?}", stringify!($name), __e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Failure carrier for fallible property bodies, mirroring upstream's
/// `TestCaseError`. This shim's `prop_assert!` macros panic directly, so
/// the type mostly appears in helper-function signatures
/// (`Result<(), TestCaseError>`) propagated with `?` inside a
/// [`proptest!`] body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold for the generated case.
    Fail(String),
    /// The generated case should be discarded (not a failure upstream;
    /// treated as a failure here since the shim does not resample).
    Reject(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The usual glob import target, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, fnv, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, seed_or,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_are_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let x = (3i64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0usize..=4).generate(&mut rng);
            assert!(y <= 4);
            let _: u8 = any::<u8>().generate(&mut rng);
        }
    }

    #[test]
    fn string_patterns_match_spec() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "v[a-z]{0,4}".generate(&mut rng);
            assert!(s.starts_with('v'));
            assert!(s.len() <= 5);
            assert!(s[1..].chars().all(|c| c.is_ascii_lowercase()));
            let t = "[A-Z][a-z]{1,6}".generate(&mut rng);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            assert!((2..=7).contains(&t.len()));
            let u = "[ab*]{0,6}".generate(&mut rng);
            assert!(u.chars().all(|c| matches!(c, 'a' | 'b' | '*')));
        }
    }

    #[test]
    fn oneof_and_map_and_vec_compose() {
        let strat =
            prop::collection::vec(prop_oneof![Just(0i64), (10i64..20).prop_map(|v| v * 2)], 1..8);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 0 || (20..40).contains(&x)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v), "leaf out of strategy range");
                    1
                }
                Tree::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(5, 40, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(4);
        for _ in 0..100 {
            // Depth bound 5 + binary nodes => at most 2^6 - 1 nodes.
            assert!(size(&strat.generate(&mut rng)) < 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, s in "[a-c]{1,3}") {
            prop_assert!(x < 100);
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert_eq!(s.clone(), s);
        }
    }
}
