//! Offline vendored stand-in for the `rayon` crate.
//!
//! The build environment has no network access to a crates registry, so
//! external dependencies are replaced by small local crates (see
//! `vendor/` in the repository root). This one implements the subset of
//! rayon's API the weaver uses:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` (and the same on
//!   `&Vec<T>`), order-preserving,
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] to pin a thread
//!   count for a region of code,
//! * [`current_num_threads`].
//!
//! Execution model: instead of a persistent work-stealing pool, each
//! `collect` call splits the input into `current_num_threads()`
//! contiguous chunks and maps them on `std::thread::scope` threads,
//! concatenating chunk results in input order — so `collect` returns
//! exactly what the sequential map would. With one thread (or one
//! item), it runs inline with zero spawning. This trades rayon's
//! adaptive splitting for simplicity; for the weaver's workload
//! (hundreds of class-sized work items of similar cost) static
//! chunking is within noise of work stealing.
//!
//! Caveat: [`ThreadPool::install`]'s thread-count override is
//! thread-local, so it does not propagate into *nested* `par_iter`
//! calls made from inside worker threads (the workspace does not nest
//! parallel regions).

use std::cell::Cell;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel iterators will use on this thread:
/// the innermost [`ThreadPool::install`] override, else available
/// hardware parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

// ---------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------

/// Builder for a [`ThreadPool`], mirroring rayon's.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`]. The shim's build cannot
/// actually fail; the type exists so call sites can keep `?`/`expect`.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count. `0` means "use the default"
    /// (hardware parallelism), matching rayon's convention.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// A configured degree of parallelism. Threads are spawned per
/// `collect` call, not held by the pool (see module docs).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it executes (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|c| {
            let prev = c.replace(Some(self.threads));
            let result = op();
            c.set(prev);
            result
        })
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

// ---------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The element reference type.
    type Item: Sync + 'a;
    /// A parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice; produced by `par_iter()`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` (run when collected).
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap { items: self.items, f }
    }
}

/// A mapped parallel iterator; consume with [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Runs the map across `current_num_threads()` scoped threads in
    /// contiguous chunks and returns results in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let n = self.items.len();
        let threads = current_num_threads().min(n).max(1);
        if threads <= 1 {
            return C::from(self.items.iter().map(&self.f).collect());
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<U> = Vec::with_capacity(n);
        let chunk_results: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        });
        for mut part in chunk_results {
            out.append(&mut part);
        }
        C::from(out)
    }
}

/// The usual glob import target, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_slices_and_empty_input() {
        let xs = [1, 2, 3];
        let ys: Vec<i32> = xs[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(ys, vec![2, 3, 4]);
        let none: Vec<i32> = Vec::<i32>::new().par_iter().map(|x| *x).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().expect("build");
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let v: Vec<usize> = (0..100).collect::<Vec<_>>().par_iter().map(|x| x + 1).collect();
            assert_eq!(v.len(), 100);
        });
        // Restored after install returns.
        let outer = current_num_threads();
        assert!(outer >= 1);
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().expect("build");
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().expect("build");
        let caller = std::thread::current().id();
        pool.install(|| {
            let ids: Vec<std::thread::ThreadId> = (0..8)
                .collect::<Vec<i32>>()
                .par_iter()
                .map(|_| std::thread::current().id())
                .collect();
            assert!(ids.iter().all(|id| *id == caller));
        });
    }
}
