//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so
//! external dev-dependencies are replaced by small local crates (see
//! `vendor/` in the repository root). This one implements the subset of
//! criterion's API the `comet-bench` harnesses use:
//!
//! * [`Criterion::benchmark_group`] with `sample_size` /
//!   `measurement_time` / `throughput` chaining,
//! * [`BenchmarkGroup::bench_function`] and
//!   [`BenchmarkGroup::bench_with_input`] (labels: `&str` or
//!   [`BenchmarkId`]),
//! * [`Bencher::iter`],
//! * [`criterion_group!`] / [`criterion_main!`],
//! * [`black_box`] (re-exported from `std::hint`).
//!
//! Measurement model: each benchmark does a short warm-up, then runs
//! `sample_size` samples where each sample executes the closure in a
//! batch sized so one batch takes roughly `measurement_time /
//! sample_size`. It reports min / mean / median per-iteration time on
//! stdout in a `name ... time: [..]` line shaped like criterion's.
//! There is no statistical regression analysis, HTML report, or saved
//! baseline — numbers are for relative comparison within one run, which
//! is how the workspace's benches and the `BENCH_*.json` emitters use
//! them.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

// ---------------------------------------------------------------------
// Ids and throughput
// ---------------------------------------------------------------------

/// A benchmark label built from a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("import", 50)` displays as `import/50`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Values that can label a benchmark within a group.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Throughput annotation for a group; recorded and echoed in output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

// ---------------------------------------------------------------------
// Core harness
// ---------------------------------------------------------------------

/// The top-level benchmark context handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Defaults are far smaller than real criterion's (100 samples,
        // 5 s): the suite has dozens of benches and must stay runnable
        // in CI-ish time on one core.
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            filter: std::env::args().nth(1).filter(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<L, F>(&mut self, label: L, mut f: F) -> &mut Self
    where
        L: IntoBenchmarkLabel,
        F: FnMut(&mut Bencher),
    {
        self.run(label.into_label(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<L, I, F>(&mut self, label: L, input: &I, mut f: F) -> &mut Self
    where
        L: IntoBenchmarkLabel,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(label.into_label(), |b| f(b, input));
        self
    }

    /// Ends the group. (Groups also end on drop; this mirrors the real
    /// API so harness code is unchanged.)
    pub fn finish(&mut self) {}

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self._parent.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full, self.throughput);
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly
/// once with the code under test.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, keeping its return value alive via
    /// [`black_box`] so the work is not optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find how many iterations fit in one
        // sample slot (measurement_time / sample_size).
        let slot = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let t0 = Instant::now();
        black_box(routine());
        let mut one = t0.elapsed().as_secs_f64().max(1e-9);
        // Refine the estimate if a single call is very fast.
        if one < slot / 16.0 {
            let probe = ((slot / 8.0) / one).clamp(1.0, 1e6) as u64;
            let t = Instant::now();
            for _ in 0..probe {
                black_box(routine());
            }
            one = (t.elapsed().as_secs_f64() / probe as f64).max(1e-9);
        }
        let iters_per_sample = (slot / one).clamp(1.0, 1e7) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<50} (no measurement: closure never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let tp = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {:>10}/s", human_bytes(n as f64 / median))
            }
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:>10.0} elem/s", n as f64 / median)
            }
            None => String::new(),
        };
        println!(
            "{label:<50} time: [{} {} {}]{tp}",
            human_time(min),
            human_time(mean),
            human_time(median),
        );
    }

    /// Median measured per-iteration time in seconds, for programmatic
    /// consumers (the `BENCH_*.json` emitters).
    pub fn median_secs(&self) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        sorted.get(sorted.len() / 2).copied().unwrap_or(0.0)
    }
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn human_bytes(bps: f64) -> String {
    if bps < 1024.0 {
        format!("{bps:.0} B")
    } else if bps < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bps / 1024.0)
    } else if bps < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bps / (1024.0 * 1024.0))
    } else {
        format!("{:.1} GiB", bps / (1024.0 * 1024.0 * 1024.0))
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(30));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.throughput(Throughput::Bytes(4096));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, n| {
            b.iter(|| (0..*n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs_and_measures() {
        benches();
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            sample_size: 4,
            measurement_time: Duration::from_millis(20),
            samples: Vec::new(),
        };
        b.iter(|| black_box(21u64) * 2);
        assert_eq!(b.samples.len(), 4);
        assert!(b.median_secs() > 0.0);
    }

    #[test]
    fn human_units_format() {
        assert!(human_time(2.5e-9).ends_with("ns"));
        assert!(human_time(2.5e-6).ends_with("µs"));
        assert!(human_time(2.5e-3).ends_with("ms"));
        assert!(human_time(2.5).ends_with('s'));
        assert!(human_bytes(10.0).ends_with('B'));
        assert!(human_bytes(1.0e7).contains("MiB"));
    }
}
