//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so external dependencies are replaced by small local
//! crates that reimplement exactly the API surface the workspace uses
//! (see `vendor/` in the repository root). This one covers what
//! `comet-middleware` needs from `rand` 0.8:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`] for `f64`, `u64`, `u32`, and `bool`,
//! * [`Rng::gen_range`] over integer ranges (`a..b` and `a..=b`),
//! * [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a
//! deterministic, high-quality, non-cryptographic PRNG. Byte streams do
//! **not** match the real `rand` crate's `StdRng` (ChaCha12); everything
//! in this workspace only relies on *seed-stable determinism*, which
//! this crate provides: the same seed always yields the same sequence.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that a generator can produce uniformly ("standard"
/// distribution in real `rand` terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Ranges a generator can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one value in the range from `rng`.
    fn sample(&self, rng: &mut dyn RngCore) -> Self::Output;
}

/// The object-safe core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the type's range; `f64`
    /// is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform draw in `[0, n)` without modulo bias (Lemire reduction would
/// be overkill here; rejection sampling keeps it exact).
fn below(rng: &mut dyn RngCore, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformRange for Range<$ty> {
            type Output = $ty;
            fn sample(&self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $ty
            }
        }
        impl UniformRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample(&self, rng: &mut dyn RngCore) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, the recommended seeding
            // procedure for the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(50u64..=500);
            assert!((50..=500).contains(&v));
            let w = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&w));
        }
        // Degenerate singleton range.
        assert_eq!(r.gen_range(3u64..=3), 3);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
