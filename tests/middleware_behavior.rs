//! E9: middleware-substrate characterization through woven code —
//! distributed transactions with 2PC, failure injection on the bus and
//! on participant votes, and the deterministic-simulation guarantee.

mod common;

use comet_aop::Weaver;
use comet_codegen::{Block, BodyProvider, Expr, FunctionalGenerator, LValue, Stmt};
use comet_concerns::transactions;
use comet_interp::{Interp, Value};
use comet_middleware::MiddlewareConfig;
use comet_model::{ModelBuilder, Primitive, TypeRef};
use comet_transform::{ParamSet, ParamValue};

/// A driver that writes to two stores inside one transaction; the stores
/// live on different nodes, so commit requires 2PC.
fn two_store_program() -> comet_codegen::Program {
    let mut model = ModelBuilder::new("stores")
        .class("Store", |c| c.attribute("v", Primitive::Int))
        .expect("valid")
        .build();
    let store = model.find_class("Store").expect("exists");
    let root = model.root();
    let driver = model.add_class(root, "Driver").expect("valid");
    model.add_attribute(driver, "s1", TypeRef::Element(store)).expect("valid");
    model.add_attribute(driver, "s2", TypeRef::Element(store)).expect("valid");
    let both = model.add_operation(driver, "writeBoth").expect("valid");
    model.add_parameter(both, "x", Primitive::Int.into()).expect("valid");

    let body = Block::of(vec![
        Stmt::Assign {
            target: LValue::Field { recv: Expr::this_field("s1"), name: "v".into() },
            value: Expr::var("x"),
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::this_field("s2"), name: "v".into() },
            value: Expr::var("x"),
        },
    ]);
    let bodies = BodyProvider::new().provide("Driver::writeBoth", body);
    let functional = FunctionalGenerator::new().generate(&model, &bodies);
    let (_, aspect) = transactions::pair()
        .specialize(
            ParamSet::new().with("methods", ParamValue::from(vec!["Driver.writeBoth".to_owned()])),
        )
        .unwrap();
    Weaver::new(vec![aspect]).weave(&functional).unwrap().program
}

fn setup(config: MiddlewareConfig) -> (Interp, Value, Value, Value) {
    let mut interp = Interp::with_config(two_store_program(), config);
    interp.add_node("n1");
    interp.add_node("n2");
    let s1 = interp.create_on("Store", "n1").unwrap();
    let s2 = interp.create_on("Store", "n2").unwrap();
    let d = interp.create("Driver").unwrap();
    interp.set_field(&d, "s1", s1.clone()).unwrap();
    interp.set_field(&d, "s2", s2.clone()).unwrap();
    (interp, d, s1, s2)
}

#[test]
fn cross_node_transaction_commits_via_2pc() {
    let (mut interp, d, s1, s2) = setup(MiddlewareConfig::default());
    interp.call(d, "writeBoth", vec![Value::Int(9)]).unwrap();
    assert_eq!(interp.field(&s1, "v").unwrap(), Value::Int(9));
    assert_eq!(interp.field(&s2, "v").unwrap(), Value::Int(9));
    let tx = interp.middleware().tx.stats();
    assert_eq!(tx.two_phase_commits, 1);
    assert_eq!(tx.two_phase_aborts, 0);
    assert_eq!(tx.committed, 1);
}

#[test]
fn injected_abort_vote_rolls_back_both_nodes() {
    let config = MiddlewareConfig { vote_abort_probability: 1.0, ..MiddlewareConfig::default() };
    let (mut interp, d, s1, s2) = setup(config);
    let err = interp.call(d, "writeBoth", vec![Value::Int(9)]).unwrap_err();
    assert!(err.to_string().contains("voted no"));
    assert_eq!(interp.field(&s1, "v").unwrap(), Value::Int(0));
    assert_eq!(interp.field(&s2, "v").unwrap(), Value::Int(0));
    let tx = interp.middleware().tx.stats();
    assert_eq!(tx.two_phase_aborts, 1);
    assert_eq!(tx.rolled_back, 1);
}

#[test]
fn message_loss_surfaces_as_catchable_failure() {
    use comet_concerns::distribution;
    use common::{banking_bodies, executable_banking_pim, setup_bank};
    // Apply the CMT first: it adds `registerRemote` to the model, so the
    // functional generator emits it and the CA can advise it.
    let mut model = executable_banking_pim();
    let (cmt, aspect) = distribution::pair().specialize(common::dist_si()).unwrap();
    cmt.apply(&mut model).unwrap();
    let functional = FunctionalGenerator::new().generate(&model, &banking_bodies());
    let woven = Weaver::new(vec![aspect]).weave(&functional).unwrap().program;
    let config = MiddlewareConfig { drop_probability: 1.0, ..MiddlewareConfig::default() };
    let mut interp = Interp::with_config(woven, config);
    let (bank, _, _) = setup_bank(&mut interp);
    // Registration is local bookkeeping; the remote call then hits the
    // fully lossy network.
    interp.call(bank.clone(), "registerRemote", vec![]).unwrap();
    interp.middleware_mut().bus.set_current_node("client").unwrap();
    let err = interp
        .call(bank, "transfer", vec![Value::from("A-1"), Value::from("A-2"), Value::Int(5)])
        .unwrap_err();
    assert!(err.to_string().contains("lost"));
    assert_eq!(interp.middleware().bus.stats().lost, 1);
    assert_eq!(interp.middleware().bus.stats().delivered, 0);
}

#[test]
fn identical_seeds_reproduce_identical_traces() {
    let run = |seed: u64| {
        let config = MiddlewareConfig { seed, ..MiddlewareConfig::default() };
        let (mut interp, d, _, _) = setup(config);
        for i in 0..10 {
            interp.call(d.clone(), "writeBoth", vec![Value::Int(i)]).unwrap();
        }
        (interp.middleware().now_us(), interp.middleware().bus.stats())
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).0, run(8).0);
}

#[test]
fn locks_released_after_rollback_allow_next_transaction() {
    // A transaction that acquires a lock, fails, and rolls back must not
    // leave the lock behind.
    let program = two_store_program();
    let config = MiddlewareConfig { vote_abort_probability: 1.0, ..MiddlewareConfig::default() };
    let mut interp = Interp::with_config(program, config);
    interp.add_node("n1");
    interp.add_node("n2");
    let s1 = interp.create_on("Store", "n1").unwrap();
    let s2 = interp.create_on("Store", "n2").unwrap();
    let d = interp.create("Driver").unwrap();
    interp.set_field(&d, "s1", s1).unwrap();
    interp.set_field(&d, "s2", s2).unwrap();
    assert!(interp.call(d.clone(), "writeBoth", vec![Value::Int(1)]).is_err());
    // No lock is held by the dead transaction.
    assert_eq!(interp.middleware().locks.holder("anything"), None);
    // The next attempt gets a fresh transaction (and fails again only
    // because the abort injection is still at 100%).
    assert!(interp.call(d, "writeBoth", vec![Value::Int(2)]).is_err());
    assert_eq!(interp.middleware().tx.stats().begun, 2);
}
