//! End-to-end test of the persistence concern: mutators save snapshots
//! into the document store, `reload` restores them, and the monolithic
//! baseline produces equivalent store contents.

mod common;

use comet::MdaLifecycle;
use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, Stmt};
use comet_concerns::persistence;
use comet_interp::{Interp, Value};
use comet_model::{ModelBuilder, Primitive};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;

fn pim() -> comet_model::Model {
    ModelBuilder::new("inventory")
        .class("Item", |c| {
            c.attribute("sku", Primitive::Str)?
                .attribute("stock", Primitive::Int)?
                .operation("receive", |o| o.parameter("n", Primitive::Int))?
                .operation("shipOut", |o| o.parameter("n", Primitive::Int))
        })
        .expect("valid model")
        .build()
}

fn bodies() -> BodyProvider {
    let adjust = |sign: i64| {
        Block::of(vec![Stmt::set_this_field(
            "stock",
            Expr::binary(
                IrBinOp::Add,
                Expr::this_field("stock"),
                Expr::binary(IrBinOp::Mul, Expr::int(sign), Expr::var("n")),
            ),
        )])
    };
    BodyProvider::new().provide("Item::receive", adjust(1)).provide("Item::shipOut", adjust(-1))
}

fn si() -> ParamSet {
    ParamSet::new()
        .with("class", ParamValue::from("Item"))
        .with("key_attr", ParamValue::from("sku"))
        .with("mutators", ParamValue::from(vec!["receive".to_owned(), "shipOut".to_owned()]))
        .with("collection", ParamValue::from("items"))
}

fn lifecycle() -> MdaLifecycle {
    let workflow = WorkflowModel::new("persist").step("persistence", false);
    let mut mda = MdaLifecycle::new(pim(), workflow).unwrap();
    mda.apply_concern(&persistence::pair(), si()).unwrap();
    mda
}

fn drive(program: comet_codegen::Program) -> Interp {
    let mut interp = Interp::new(program);
    let item = interp.create("Item").unwrap();
    interp.set_field(&item, "sku", Value::from("SKU-7")).unwrap();
    interp.call(item.clone(), "receive", vec![Value::Int(10)]).unwrap();
    interp.call(item.clone(), "shipOut", vec![Value::Int(3)]).unwrap();
    // Clobber the live object, then reload from the store.
    interp.set_field(&item, "stock", Value::Int(-999)).unwrap();
    interp.call(item.clone(), "reload", vec![]).unwrap();
    assert_eq!(interp.field(&item, "stock").unwrap(), Value::Int(7));
    interp
}

#[test]
fn woven_persistence_saves_and_reloads() {
    let system = lifecycle().generate(&bodies(), comet::Backend::JavaFunctional).unwrap();
    let interp = drive(system.woven);
    let stats = interp.middleware().store.stats();
    assert_eq!(stats.saves, 2, "one save per mutator call");
    assert_eq!(stats.loads, 1);
    assert_eq!(interp.middleware().store.keys(), vec!["items/SKU-7"]);
}

#[test]
fn monolithic_baseline_is_equivalent() {
    let mda = lifecycle();
    let mono = mda.generate_monolithic(&bodies());
    let interp = drive(mono);
    let stats = interp.middleware().store.stats();
    assert_eq!(stats.saves, 2);
    assert_eq!(stats.loads, 1);
    assert_eq!(interp.middleware().store.keys(), vec!["items/SKU-7"]);
}

#[test]
fn functional_program_knows_nothing_about_the_store() {
    let system = lifecycle().generate(&bodies(), comet::Backend::JavaFunctional).unwrap();
    assert!(!system.functional_source.contains("store."));
    let mut interp = Interp::new(system.functional);
    let item = interp.create("Item").unwrap();
    interp.set_field(&item, "sku", Value::from("SKU-7")).unwrap();
    interp.call(item.clone(), "receive", vec![Value::Int(10)]).unwrap();
    assert!(interp.middleware().store.is_empty());
    // reload exists (model op) but is advice-free: a no-op default body.
    interp.call(item.clone(), "reload", vec![]).unwrap();
    assert_eq!(interp.field(&item, "stock").unwrap(), Value::Int(10));
}

#[test]
fn reload_miss_returns_cleanly() {
    let system = lifecycle().generate(&bodies(), comet::Backend::JavaFunctional).unwrap();
    let mut interp = Interp::new(system.woven);
    let item = interp.create("Item").unwrap();
    interp.set_field(&item, "sku", Value::from("NEVER-SAVED")).unwrap();
    interp.set_field(&item, "stock", Value::Int(5)).unwrap();
    interp.call(item.clone(), "reload", vec![]).unwrap();
    // Nothing in the store: the object is untouched.
    assert_eq!(interp.field(&item, "stock").unwrap(), Value::Int(5));
    assert_eq!(interp.middleware().store.stats().misses, 1);
}

#[test]
fn transactional_rollback_undoes_a_reload() {
    // store.load writes go through the transaction log: a rollback after
    // reload restores the pre-reload state.
    let system = lifecycle().generate(&bodies(), comet::Backend::JavaFunctional).unwrap();
    let mut interp = Interp::new(system.woven);
    let item = interp.create("Item").unwrap();
    interp.set_field(&item, "sku", Value::from("SKU-9")).unwrap();
    interp.call(item.clone(), "receive", vec![Value::Int(4)]).unwrap(); // saved
    interp.set_field(&item, "stock", Value::Int(100)).unwrap();
    // Manually drive a transaction around reload.
    interp.middleware_mut().tx.begin("rc").unwrap();
    interp.call(item.clone(), "reload", vec![]).unwrap();
    assert_eq!(interp.field(&item, "stock").unwrap(), Value::Int(4));
    let tx = interp.middleware().tx.current().unwrap();
    let undo = interp.middleware_mut().tx.rollback(tx).unwrap();
    for entry in undo {
        interp.set_field(&Value::Obj(entry.object), &entry.field, entry.old).unwrap();
    }
    assert_eq!(interp.field(&item, "stock").unwrap(), Value::Int(100));
}
