//! E6: the Section-3 repository facilities, driven through the full
//! lifecycle — version management, undo/redo, structural diff, and the
//! per-concern "colors" demarcation.

mod common;

use comet::MdaLifecycle;
use comet_concerns::{distribution, transactions};
use comet_repo::{diff_models, ColorReport, Repository};
use comet_workflow::WorkflowModel;
use common::{dist_si, executable_banking_pim, tx_si};

fn lifecycle() -> MdaLifecycle {
    let workflow = WorkflowModel::new("e6").step("distribution", false).step("transactions", false);
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    mda
}

#[test]
fn every_refinement_step_is_a_version() {
    let mda = lifecycle();
    let log = mda.repository().log();
    assert_eq!(log.len(), 3);
    assert_eq!(log[0].message, "initial PIM");
    assert!(log[1].message.starts_with("distribution<"));
    assert!(log[2].message.starts_with("transactions<"));
    assert_eq!(log[1].concern.as_deref(), Some("distribution"));
    // Hashes form a distinct chain.
    assert_ne!(log[0].hash, log[1].hash);
    assert_ne!(log[1].hash, log[2].hash);
    assert_eq!(log[2].parent, Some(log[1].id));
}

#[test]
fn diff_between_steps_shows_exactly_the_concern_space() {
    let mda = lifecycle();
    let ids: Vec<_> = mda.repository().log().iter().map(|c| c.id).collect();
    // PIM -> distribution: the proxy, register op, params and marks.
    let d1 = mda.repository().diff(ids[0], ids[1]).unwrap();
    assert!(!d1.added.is_empty(), "distribution creates elements");
    assert!(d1.removed.is_empty());
    // distribution -> transactions: only the transfer op is modified.
    let d2 = mda.repository().diff(ids[1], ids[2]).unwrap();
    assert!(d2.added.is_empty());
    assert_eq!(d2.modified.len(), 1);
    // Diffs agree with direct model diffing.
    let m1 = mda.repository().checkout(ids[1]).unwrap();
    let m2 = mda.repository().checkout(ids[2]).unwrap();
    assert_eq!(d2, diff_models(&m1, &m2));
}

#[test]
fn undo_redo_walks_the_refinement() {
    let mut repo = Repository::new("walk");
    let mut model = executable_banking_pim();
    repo.commit(&model, "v1", None).unwrap();
    let (cmt, _) = distribution::pair().specialize(dist_si()).unwrap();
    cmt.apply(&mut model).unwrap();
    repo.commit(&model, "v2", Some("distribution")).unwrap();

    let v1 = repo.undo().unwrap().unwrap();
    assert!(v1.find_class("BankProxy").is_none());
    let v2 = repo.redo().unwrap().unwrap();
    assert!(v2.find_class("BankProxy").is_some());
    assert_eq!(v2, model);
    // Undo/redo depths behave like an editor.
    assert_eq!(repo.undo_depth(), 2);
    assert_eq!(repo.redo_depth(), 0);
}

#[test]
fn colors_attribute_created_elements_to_their_concern() {
    let mda = lifecycle();
    let colors = ColorReport::for_model(mda.model());
    // Everything distribution created is colored distribution.
    let dist_elements = colors.per_concern.get("distribution").unwrap();
    assert!(!dist_elements.is_empty());
    for id in dist_elements {
        assert_eq!(mda.model().concern_of(*id), Some("distribution"));
    }
    // Transactions only modified existing elements; the functional model
    // stays functional-colored (uncolored).
    assert_eq!(colors.count("transactions"), 0);
    assert!(colors.functional.len() > 10);
    // The remaining-concern hint works against a plan.
    assert_eq!(
        colors.remaining(&["distribution", "transactions", "security"]),
        vec!["transactions", "security"],
        "transactions modified but created nothing; security never ran"
    );
}

#[test]
fn branches_isolate_alternative_refinements() {
    let mut mda = lifecycle();
    let main_model = mda.model().clone();
    // Tag the current state, branch off an experiment from one step back.
    mda.repository_mut().tag("fig2-psm").unwrap();
    mda.repository_mut().undo().unwrap().unwrap();
    mda.repository_mut().branch("experiment").unwrap();
    let experiment_head = mda.repository().head_model().unwrap().unwrap();
    assert!(experiment_head.find_class("BankProxy").is_some());
    // Back on main, the tagged PSM is intact.
    mda.repository_mut().switch_branch("main").unwrap();
    assert_eq!(mda.repository().checkout_tag("fig2-psm").unwrap(), main_model);
    assert_eq!(mda.repository().branch_names(), vec!["experiment", "main"]);
}
