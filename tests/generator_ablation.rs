//! E5: the paper's generator architecture — a code generator for the
//! *functional* model plus aspect generators — against the monolithic
//! baseline that consumes the most-specialized PSM and inlines concern
//! code. Both must be behaviourally equivalent; they must differ in
//! modularity (scattering/tangling) and in incremental-regeneration
//! cost.

mod common;

use comet::MdaLifecycle;
use comet_aop::concern_metrics;
use comet_concerns::{distribution, security, transactions};
use comet_interp::{Interp, InterpError, Value};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;
use common::{banking_bodies, dist_si, executable_banking_pim, sec_si, setup_bank, tx_si};

fn lifecycle() -> MdaLifecycle {
    let workflow = WorkflowModel::new("e5")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false);
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).unwrap();
    // For observational equivalence the application order must mirror the
    // baseline's HARD-CODED inlining order (security outermost, then
    // distribution, transactions innermost) — which is itself the paper's
    // point: a monolithic generator cannot follow the developer's
    // intended precedence, while the proposal derives it from the
    // transformation order (see tests/fig2_precedence.rs).
    mda.apply_concern(&security::pair(), sec_si()).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    mda
}

/// Runs the standard scenario and returns the observable outcome tuple.
fn observe(program: comet_codegen::Program) -> (Value, Value, Result<Value, String>, usize, u64) {
    let mut interp = Interp::new(program);
    let (bank, a1, a2) = setup_bank(&mut interp);
    interp.call(bank.clone(), "registerRemote", vec![]).unwrap_or(Value::Null);
    interp.middleware_mut().bus.set_current_node("client").unwrap();
    interp.login("alice").unwrap();
    interp
        .call(
            bank.clone(),
            "transfer",
            vec![Value::from("A-1"), Value::from("A-2"), Value::Int(200)],
        )
        .unwrap();
    let _ = interp.call(
        bank.clone(),
        "transfer",
        vec![Value::from("A-1"), Value::from("A-2"), Value::Int(13)],
    );
    interp.logout();
    interp.login("bob").unwrap();
    let denied = interp
        .call(bank.clone(), "transfer", vec![Value::from("A-1"), Value::from("A-2"), Value::Int(1)])
        .map_err(|e| match e {
            InterpError::Thrown(v) => v.to_string(),
            other => other.to_string(),
        });
    (
        interp.field(&a1, "balance").unwrap(),
        interp.field(&a2, "balance").unwrap(),
        denied,
        interp.middleware().security.denials(),
        interp.middleware().tx.stats().rolled_back,
    )
}

#[test]
fn both_generators_produce_observationally_equivalent_systems() {
    let mda = lifecycle();
    let bodies = banking_bodies();
    let woven = mda.generate(&bodies, comet::Backend::JavaFunctional).unwrap().woven;
    let mono = mda.generate_monolithic(&bodies);

    let (a1_w, a2_w, denied_w, denials_w, rb_w) = observe(woven);
    let (a1_m, a2_m, denied_m, denials_m, rb_m) = observe(mono);
    assert_eq!((&a1_w, &a2_w), (&a1_m, &a2_m), "balances agree");
    assert_eq!(a1_w, Value::Int(800));
    assert_eq!(a2_w, Value::Int(250));
    assert!(denied_w.is_err() && denied_m.is_err());
    assert_eq!(denials_w, denials_m);
    assert_eq!(rb_w, rb_m, "rollback counts agree");
}

#[test]
fn woven_system_localizes_concern_code_baseline_tangles_it() {
    let mda = lifecycle();
    let bodies = banking_bodies();
    let system = mda.generate(&bodies, comet::Backend::JavaFunctional).unwrap();
    let mono = mda.generate_monolithic(&bodies);
    let prefixes = &["tx", "sec", "net", "log"];

    // The functional program contains no concern code at all.
    let functional_metrics = concern_metrics(&system.functional, prefixes);
    let total: usize = functional_metrics.concerns.values().map(|m| m.statements).sum();
    assert_eq!(total, 0, "functional program is concern-free");

    // Both full systems contain concern code; in the baseline it lives
    // tangled in the business methods, in the woven system it lives in
    // weaver-generated layers, leaving every `__functional` body clean.
    let mono_metrics = concern_metrics(&mono, prefixes);
    let woven_metrics = concern_metrics(&system.woven, prefixes);
    assert!(mono_metrics.concerns["tx"].statements > 0);
    assert!(woven_metrics.concerns["tx"].statements > 0);
    let woven_bank = system.woven.find_class("Bank").unwrap();
    let functional_body = &woven_bank.find_method("transfer__functional").unwrap().body;
    let mut probe = comet_codegen::Program::new("probe");
    let mut c = comet_codegen::ClassDecl::new("P");
    let mut m = comet_codegen::MethodDecl::new("m");
    m.body = functional_body.clone();
    c.methods.push(m);
    probe.classes.push(c);
    let probe_metrics = concern_metrics(&probe, prefixes);
    assert!(
        probe_metrics.concerns.values().all(|v| v.statements == 0),
        "the functional body survives weaving concern-free"
    );
}

#[test]
fn changing_one_concern_parameter_regenerates_only_that_aspect() {
    // The paper's incrementality argument: with the monolithic
    // generator, changing the isolation level regenerates (changes) the
    // business classes; with the proposal, the functional program is
    // byte-identical and only the transactions aspect differs.
    let bodies = banking_bodies();
    let build = |isolation: &str| {
        let workflow = WorkflowModel::new("e5").step("transactions", false);
        let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).unwrap();
        mda.apply_concern(
            &transactions::pair(),
            ParamSet::new()
                .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
                .with("isolation", ParamValue::from(isolation)),
        )
        .unwrap();
        let system = mda.generate(&bodies, comet::Backend::JavaFunctional).unwrap();
        let mono = mda.generate_monolithic(&bodies);
        (system, mono)
    };
    let (sys_rc, mono_rc) = build("read-committed");
    let (sys_ser, mono_ser) = build("serializable");

    // Functional artifact identical across the parameter change.
    assert_eq!(sys_rc.functional, sys_ser.functional);
    assert_eq!(sys_rc.functional_source, sys_ser.functional_source);
    // Only the aspect artifact changed.
    assert_ne!(sys_rc.aspect_sources, sys_ser.aspect_sources);
    // The monolithic output changed wholesale.
    assert_ne!(mono_rc, mono_ser);
}

#[test]
fn baseline_marks_are_the_same_marks_the_aspects_consume() {
    // Vocabulary honesty check: the PSM feeding the baseline is the PSM
    // whose marks the concern pairs wrote.
    let mda = lifecycle();
    let bank = mda.model().find_class("Bank").unwrap();
    assert!(mda.model().has_stereotype(bank, comet_codegen::marks::STEREO_REMOTE).unwrap());
    let transfer = mda.model().find_operation(bank, "transfer").unwrap();
    assert!(mda
        .model()
        .has_stereotype(transfer, comet_codegen::marks::STEREO_TRANSACTIONAL)
        .unwrap());
    assert!(mda.model().has_stereotype(transfer, comet_codegen::marks::STEREO_SECURED).unwrap());
}
