//! E8: workflow-guided refinement (Section 3, last bullet) through the
//! lifecycle: allowed sequences, remaining-concern guidance, and the
//! interplay with undo.

mod common;

use comet::{LifecycleError, MdaLifecycle};
use comet_concerns::{distribution, security, transactions};
use comet_workflow::{OrderConstraint, WorkflowModel};
use common::{dist_si, executable_banking_pim, sec_si, tx_si};

fn constrained_workflow() -> WorkflowModel {
    WorkflowModel::new("e8")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false)
        .constraint(OrderConstraint::Before("distribution".into(), "security".into()))
        .constraint(OrderConstraint::Before("distribution".into(), "transactions".into()))
}

#[test]
fn guidance_narrows_as_steps_apply() {
    let mut mda = MdaLifecycle::new(executable_banking_pim(), constrained_workflow()).unwrap();
    assert_eq!(mda.workflow().allowed_next(), vec!["distribution"]);
    assert_eq!(mda.remaining_concerns().len(), 3);

    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    assert_eq!(mda.workflow().allowed_next(), vec!["transactions", "security"]);

    mda.apply_concern(&security::pair(), sec_si()).unwrap();
    assert_eq!(mda.workflow().allowed_next(), vec!["transactions"]);
    assert_eq!(mda.remaining_concerns(), vec!["transactions"]);
    assert!(!mda.workflow().is_complete());

    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    assert!(mda.workflow().is_complete());
    assert!(mda.workflow().allowed_next().is_empty());
}

#[test]
fn out_of_order_application_is_rejected_atomically() {
    let mut mda = MdaLifecycle::new(executable_banking_pim(), constrained_workflow()).unwrap();
    let err = mda.apply_concern(&transactions::pair(), tx_si()).unwrap_err();
    assert!(matches!(err, LifecycleError::Workflow(_)));
    assert!(err.to_string().contains("must be applied before"));
    // Nothing changed anywhere.
    assert_eq!(mda.model(), &executable_banking_pim());
    assert_eq!(mda.repository().log().len(), 1);
    assert!(mda.applied().is_empty());
}

#[test]
fn unplanned_concerns_are_rejected() {
    let workflow = WorkflowModel::new("only-tx").step("transactions", false);
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).unwrap();
    let err = mda.apply_concern(&distribution::pair(), dist_si()).unwrap_err();
    assert!(matches!(err, LifecycleError::Workflow(_)));
}

#[test]
fn undo_reopens_the_workflow_step() {
    let mut mda = MdaLifecycle::new(executable_banking_pim(), constrained_workflow()).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    assert!(!mda.workflow().allowed_next().contains(&"transactions"));
    mda.undo_last().unwrap();
    // Transactions can be applied again (e.g. with different Si).
    assert!(mda.workflow().allowed_next().contains(&"transactions"));
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    assert_eq!(mda.workflow().applied(), &["distribution".to_owned(), "transactions".to_owned()]);
}

#[test]
fn double_application_of_a_concern_is_rejected() {
    let mut mda = MdaLifecycle::new(executable_banking_pim(), constrained_workflow()).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    let err = mda.apply_concern(&distribution::pair(), dist_si()).unwrap_err();
    assert!(matches!(err, LifecycleError::Workflow(_)));
    assert!(err.to_string().contains("already applied"));
}
