//! E2 (Fig. 2): the three-concern pipeline — T1/A1 distribution,
//! T2/A2 transactions, T3/A3 security — and the paper's precedence rule:
//! *"The order in which specialized/concrete aspects will be applied at
//! code level (their precedence) is dictated by the order in which the
//! specialized/concrete model transformations were applied at model
//! level."*

mod common;

use comet::MdaLifecycle;
use comet_aop::Weaver;
use comet_concerns::{distribution, security, transactions};
use comet_interp::{Interp, Value};
use comet_workflow::WorkflowModel;
use common::{banking_bodies, dist_si, executable_banking_pim, sec_si, setup_bank, tx_si};

fn fig2_workflow() -> WorkflowModel {
    WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false)
}

fn full_lifecycle() -> MdaLifecycle {
    let mut mda = MdaLifecycle::new(executable_banking_pim(), fig2_workflow()).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    mda.apply_concern(&security::pair(), sec_si()).unwrap();
    mda
}

#[test]
fn aspect_list_order_equals_transformation_order() {
    let mda = full_lifecycle();
    let aspects = mda.aspects();
    assert_eq!(aspects.len(), 3);
    assert!(aspects[0].name.starts_with("distribution-aspect<"));
    assert!(aspects[1].name.starts_with("transactions-aspect<"));
    assert!(aspects[2].name.starts_with("security-aspect<"));
}

#[test]
fn weave_nesting_follows_precedence() {
    let mda = full_lifecycle();
    let system = mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).unwrap();
    let bank = system.woven.find_class("Bank").unwrap();
    // Layer/around helper suffixes encode the aspect index: aspect 0
    // (distribution) must be the outermost wrapper of `transfer`.
    let public = bank.find_method("transfer").unwrap();
    let delegate = format!("{:?}", public.body);
    assert!(
        delegate.contains("transfer__around_0_0"),
        "public method delegates into the distribution (index 0) layer first: {delegate}"
    );
    // The functional body sits at the innermost position.
    assert!(bank.find_method("transfer__functional").is_some());
    // All three aspects advised transfer.
    let advisors: Vec<&str> = system
        .weave_trace
        .iter()
        .filter(|t| t.method == "transfer")
        .map(|t| t.aspect.as_str())
        .collect();
    assert_eq!(advisors.len(), 3);
}

#[test]
fn end_to_end_behaviour_of_the_three_concerns() {
    let mda = full_lifecycle();
    let system = mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).unwrap();
    let mut interp = Interp::new(system.woven);
    let (bank, a1, a2) = setup_bank(&mut interp);
    interp.call(bank.clone(), "registerRemote", vec![]).unwrap();
    interp.middleware_mut().bus.set_current_node("client").unwrap();

    // C3 security: unauthorized principal denied.
    interp.login("bob").unwrap();
    assert!(interp
        .call(
            bank.clone(),
            "transfer",
            vec![Value::from("A-1"), Value::from("A-2"), Value::Int(10)]
        )
        .is_err());
    interp.logout();

    // C1 distribution + C2 transactions: remote call commits.
    interp.login("alice").unwrap();
    let ok = interp
        .call(
            bank.clone(),
            "transfer",
            vec![Value::from("A-1"), Value::from("A-2"), Value::Int(100)],
        )
        .unwrap();
    assert_eq!(ok, Value::Bool(true));
    assert_eq!(interp.field(&a1, "balance").unwrap(), Value::Int(900));
    assert_eq!(interp.field(&a2, "balance").unwrap(), Value::Int(150));
    assert!(interp.middleware().bus.stats().delivered >= 2, "went over the wire");
    assert_eq!(interp.middleware().tx.stats().committed, 1);
    assert_eq!(interp.middleware().security.denials(), 1);
    assert_eq!(interp.middleware().bus.current_node(), "client");
}

#[test]
fn permuting_precedence_changes_observable_behaviour() {
    // [security, transactions] vs [transactions, security]: when the
    // security check is OUTSIDE the transaction, a denial happens before
    // any transaction starts; when it is INSIDE, the denial aborts a
    // transaction that already began. The trace distinguishes the two —
    // precedence is semantically load-bearing, which is why the paper
    // pins it to the transformation order.
    let run = |aspect_order_sec_first: bool| -> (u64, u64) {
        let mut mda = MdaLifecycle::new(executable_banking_pim(), fig2_workflow()).unwrap();
        mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
        if aspect_order_sec_first {
            mda.apply_concern(&security::pair(), sec_si()).unwrap();
            mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
        } else {
            mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
            mda.apply_concern(&security::pair(), sec_si()).unwrap();
        }
        let system = mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).unwrap();
        let mut interp = Interp::new(system.woven);
        let (bank, _, _) = setup_bank(&mut interp);
        // Execute on the hosting node so the distribution layer proceeds
        // locally and the tx/security interplay is isolated.
        interp.middleware_mut().bus.set_current_node("server").unwrap();
        interp.login("bob").unwrap(); // will be denied
        let _ = interp.call(
            bank,
            "transfer",
            vec![Value::from("A-1"), Value::from("A-2"), Value::Int(10)],
        );
        let stats = interp.middleware().tx.stats();
        (stats.begun, stats.rolled_back)
    };
    let (begun_sec_outside, rb_sec_outside) = run(true);
    let (begun_sec_inside, rb_sec_inside) = run(false);
    // Security outside the transaction: denial prevents the begin.
    assert_eq!((begun_sec_outside, rb_sec_outside), (0, 0));
    // Security inside: a transaction began and had to be rolled back.
    assert_eq!((begun_sec_inside, rb_sec_inside), (1, 1));
}

#[test]
fn runtime_call_trace_shows_the_nesting() {
    // Observe precedence at *run time*: the interpreter's call trace of
    // one transfer shows the layers entered in aspect order, innermost
    // last.
    let mda = full_lifecycle();
    let system = mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).unwrap();
    let mut interp = Interp::new(system.woven);
    let (bank, _, _) = setup_bank(&mut interp);
    interp.middleware_mut().bus.set_current_node("server").unwrap();
    interp.login("alice").unwrap();
    interp.enable_call_trace();
    interp
        .call(bank, "transfer", vec![Value::from("A-1"), Value::from("A-2"), Value::Int(10)])
        .unwrap();
    let trace = interp.take_call_trace();
    let position = |needle: &str| {
        trace
            .iter()
            .position(|line| line.contains(needle))
            .unwrap_or_else(|| panic!("`{needle}` not in trace {trace:?}"))
    };
    let public = position(" Bank.transfer");
    let dist = position("Bank.transfer__around_0_0"); // aspect 0: distribution
    let tx = position("Bank.transfer__around_1_0"); // aspect 1: transactions
    let sec = position("Bank.transfer__layer_2"); // aspect 2: security
    let functional = position("Bank.transfer__functional");
    assert!(public < dist && dist < tx && tx < sec && sec < functional);
    // Depths strictly increase along the chain.
    let depth = |idx: usize| -> usize {
        trace[idx].split_whitespace().next().and_then(|d| d.parse().ok()).expect("depth prefix")
    };
    assert!(depth(public) < depth(dist));
    assert!(depth(dist) < depth(tx));
    assert!(depth(tx) < depth(sec));
    assert!(depth(sec) < depth(functional));
}

#[test]
fn the_weaver_honours_a_manually_permuted_aspect_list() {
    // Same aspects, reversed list, directly on the weaver: the nesting
    // flips, confirming precedence comes from list order alone.
    let mda = full_lifecycle();
    let system_fwd = mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).unwrap();
    let mut aspects = mda.aspects();
    aspects.reverse();
    let functional = system_fwd.functional.clone();
    let reversed = Weaver::new(aspects).weave(&functional).unwrap();
    let bank = reversed.program.find_class("Bank").unwrap();
    let public = bank.find_method("transfer").unwrap();
    let delegate = format!("{:?}", public.body);
    // Security is now index 0 — outermost.
    assert!(
        delegate.contains("transfer__layer_0"),
        "reversed order puts the security layer outermost: {delegate}"
    );
    assert_ne!(reversed.program, system_fwd.woven);
}
