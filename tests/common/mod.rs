//! Shared fixtures for the integration tests: the executable banking
//! system (PIM + functional bodies) that the experiment suite refines,
//! generates, weaves and runs.
//!
//! Each test binary includes this module and uses its own subset, so
//! per-binary dead-code analysis is meaningless here.
#![allow(dead_code)]

use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, IrType, LValue, Stmt};
use comet_model::{Model, ModelBuilder, Primitive, TypeRef};
use comet_transform::{ParamSet, ParamValue};

/// A banking PIM whose `Bank` holds two `Account` references; `transfer`
/// debits, optionally crashes (amount 13), then credits.
pub fn executable_banking_pim() -> Model {
    let mut model = ModelBuilder::new("bank")
        .class("Account", |c| {
            c.attribute("number", Primitive::Str)?.attribute("balance", Primitive::Int)
        })
        .expect("valid model")
        .build();
    let account = model.find_class("Account").expect("just added");
    let root = model.root();
    let bank = model.add_class(root, "Bank").expect("valid");
    model.add_attribute(bank, "a1", TypeRef::Element(account)).expect("valid");
    model.add_attribute(bank, "a2", TypeRef::Element(account)).expect("valid");
    let transfer = model.add_operation(bank, "transfer").expect("valid");
    for p in ["from", "to"] {
        model.add_parameter(transfer, p, Primitive::Str.into()).expect("valid");
    }
    model.add_parameter(transfer, "amount", Primitive::Int.into()).expect("valid");
    model.set_return_type(transfer, Primitive::Bool.into()).expect("valid");
    let get_balance = model.add_operation(bank, "getBalance").expect("valid");
    model.add_parameter(get_balance, "number", Primitive::Str.into()).expect("valid");
    model.set_return_type(get_balance, Primitive::Int.into()).expect("valid");
    model
}

fn select_account(var: &str, number_param: &str) -> Vec<Stmt> {
    vec![
        Stmt::local(var, IrType::Object("Account".into()), Expr::this_field("a1")),
        Stmt::If {
            cond: Expr::binary(
                IrBinOp::Ne,
                Expr::Field { recv: Box::new(Expr::var(var)), name: "number".into() },
                Expr::var(number_param),
            ),
            then_block: Block::of(vec![Stmt::set_var(var, Expr::this_field("a2"))]),
            else_block: None,
        },
    ]
}

/// The functional bodies for [`executable_banking_pim`].
pub fn banking_bodies() -> BodyProvider {
    let field =
        |obj: &str, name: &str| Expr::Field { recv: Box::new(Expr::var(obj)), name: name.into() };
    let mut transfer = Vec::new();
    transfer.extend(select_account("src", "from"));
    transfer.extend(select_account("dst", "to"));
    transfer.extend([
        Stmt::If {
            cond: Expr::binary(IrBinOp::Lt, field("src", "balance"), Expr::var("amount")),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("insufficient funds"))]),
            else_block: None,
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::var("src"), name: "balance".into() },
            value: Expr::binary(IrBinOp::Sub, field("src", "balance"), Expr::var("amount")),
        },
        Stmt::If {
            cond: Expr::binary(IrBinOp::Eq, Expr::var("amount"), Expr::int(13)),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("simulated crash after debit"))]),
            else_block: None,
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::var("dst"), name: "balance".into() },
            value: Expr::binary(IrBinOp::Add, field("dst", "balance"), Expr::var("amount")),
        },
        Stmt::ret(Expr::bool(true)),
    ]);
    let mut get_balance = select_account("acc", "number");
    get_balance.push(Stmt::ret(field("acc", "balance")));
    BodyProvider::new()
        .provide("Bank::transfer", Block::of(transfer))
        .provide("Bank::getBalance", Block::of(get_balance))
}

/// Standard `Si` for the distribution concern on the banking system.
pub fn dist_si() -> ParamSet {
    ParamSet::new()
        .with("server_class", ParamValue::from("Bank"))
        .with("node", ParamValue::from("server"))
        .with("operations", ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]))
}

/// Standard `Si` for the transactions concern on the banking system.
pub fn tx_si() -> ParamSet {
    ParamSet::new()
        .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        .with("isolation", ParamValue::from("serializable"))
}

/// Standard `Si` for the security concern on the banking system.
pub fn sec_si() -> ParamSet {
    ParamSet::new().with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()]))
}

/// Instantiates the banking object graph in an interpreter: a bank on
/// `server` with accounts `A-1` (1000) and `A-2` (50); returns
/// `(bank, a1, a2)`.
pub fn setup_bank(
    interp: &mut comet_interp::Interp,
) -> (comet_interp::Value, comet_interp::Value, comet_interp::Value) {
    use comet_interp::Value;
    interp.add_node("client");
    interp.add_node("server");
    interp.add_principal("alice", &["teller"]);
    interp.add_principal("bob", &["customer"]);
    let bank = interp.create_on("Bank", "server").expect("Bank class generated");
    let a1 = interp.create_on("Account", "server").expect("Account class generated");
    let a2 = interp.create_on("Account", "server").expect("Account class generated");
    interp.set_field(&a1, "number", Value::from("A-1")).expect("field exists");
    interp.set_field(&a1, "balance", Value::Int(1_000)).expect("field exists");
    interp.set_field(&a2, "number", Value::from("A-2")).expect("field exists");
    interp.set_field(&a2, "balance", Value::Int(50)).expect("field exists");
    interp.set_field(&bank, "a1", a1.clone()).expect("field exists");
    interp.set_field(&bank, "a2", a2.clone()).expect("field exists");
    (bank, a1, a2)
}
