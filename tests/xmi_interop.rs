//! E7: XMI import/export (Section 3) — fidelity across the whole
//! refinement, including concern marks, plus property-based round-trip
//! coverage over randomly shaped models.

mod common;

use comet::MdaLifecycle;
use comet_codegen::marks;
use comet_concerns::{distribution, transactions};
use comet_model::{Model, Primitive, TagValue};
use comet_workflow::WorkflowModel;
use comet_xmi::{export_model, import_model};
use common::{dist_si, executable_banking_pim, tx_si};
use proptest::prelude::*;

#[test]
fn refined_psm_round_trips_with_all_marks() {
    let workflow = WorkflowModel::new("e7").step("distribution", false).step("transactions", false);
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).unwrap();
    mda.apply_concern(&distribution::pair(), dist_si()).unwrap();
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();

    let xmi = export_model(mda.model());
    let back = import_model(&xmi).unwrap();
    assert_eq!(&back, mda.model());
    // The marks specifically survive.
    let bank = back.find_class("Bank").unwrap();
    assert!(back.has_stereotype(bank, "Remote").unwrap());
    let transfer = back.find_operation(bank, "transfer").unwrap();
    assert_eq!(
        back.element(transfer).unwrap().core().tag("comet.tx.isolation").unwrap().as_str(),
        Some("serializable")
    );
    assert_eq!(back.concern_of(back.find_class("BankProxy").unwrap()), Some("distribution"));
}

#[test]
fn import_rejects_tampered_snapshots() {
    let xmi = export_model(&executable_banking_pim());
    // Flip an owner reference to a dangling id.
    let tampered = xmi.replacen("owner=\"#1\"", "owner=\"#4242\"", 1);
    assert_ne!(xmi, tampered);
    assert!(import_model(&tampered).is_err());
}

/// Every concern stereotype the standard library can mark a model
/// with, paired with a representative `comet.*` tag from its concern
/// space — including the fault-tolerance triple and its `ft.*` tags.
const ALL_MARKS: [(&str, &str, &str); 9] = [
    (marks::STEREO_REMOTE, marks::TAG_DIST_NODE, "server"),
    (marks::STEREO_TRANSACTIONAL, marks::TAG_TX_ISOLATION, "serializable"),
    (marks::STEREO_SECURED, marks::TAG_SEC_POLICY, "deny"),
    (marks::STEREO_LOGGED, marks::TAG_LOG_LEVEL, "info"),
    (marks::STEREO_SYNCHRONIZED, marks::TAG_SYNC_LOCK, "mutex"),
    (marks::STEREO_PERSISTENT, marks::TAG_PERSIST_STORE, "kv"),
    (marks::STEREO_RETRYABLE, marks::TAG_FT_BACKOFF_US, "250"),
    (marks::STEREO_DEADLINE, marks::TAG_FT_DEADLINE_US, "5000"),
    (marks::STEREO_BREAKER, marks::TAG_FT_BREAKER_THRESHOLD, "3"),
];

/// Strategy: a model carrying every concern stereotype at once, with
/// per-class subsets drawn randomly on top of one fully marked class.
fn arb_fully_marked_model() -> impl Strategy<Value = Model> {
    (2usize..5, prop::collection::vec(0usize..ALL_MARKS.len(), 0..12)).prop_map(
        |(classes, extra)| {
            let mut m = Model::new("marked");
            let root = m.root();
            let mut ids = Vec::new();
            for c in 0..classes {
                let id = m.add_class(root, &format!("C{c}")).expect("unique");
                m.add_operation(id, "op").expect("unique");
                ids.push(id);
            }
            // One class wears every stereotype in the library.
            let full = ids[0];
            for (stereo, tag, value) in ALL_MARKS {
                m.apply_stereotype(full, stereo).expect("class exists");
                m.set_tag(full, tag, TagValue::Str(value.to_owned())).expect("class exists");
            }
            m.set_tag(full, marks::TAG_FT_MAX_ATTEMPTS, TagValue::Int(4)).expect("class exists");
            // Remaining classes get random subsets.
            for (i, pick) in extra.iter().enumerate() {
                let id = ids[1 + i % (ids.len() - 1)];
                let (stereo, tag, value) = ALL_MARKS[*pick];
                let _ = m.apply_stereotype(id, stereo);
                m.set_tag(id, tag, TagValue::Str(value.to_owned())).expect("class exists");
            }
            m
        },
    )
}

/// Strategy: a random small model built through the checked API (so it
/// is well-formed by construction).
fn arb_model() -> impl Strategy<Value = Model> {
    (
        1usize..6,                                  // classes
        0usize..4,                                  // attributes each
        0usize..3,                                  // operations each
        prop::collection::vec(any::<bool>(), 0..5), // generalization picks
        prop::collection::vec("[a-z]{1,8}", 0..4),  // stereotypes
    )
        .prop_map(|(classes, attrs, ops, gens, stereos)| {
            let mut m = Model::new("arb");
            let root = m.root();
            let mut class_ids = Vec::new();
            for c in 0..classes {
                let id = m.add_class(root, &format!("K{c}")).expect("unique");
                for a in 0..attrs {
                    m.add_attribute(id, &format!("f{a}"), Primitive::Int.into()).expect("unique");
                }
                for o in 0..ops {
                    let op = m.add_operation(id, &format!("m{o}")).expect("unique");
                    m.add_parameter(op, "x", Primitive::Str.into()).expect("unique");
                }
                class_ids.push(id);
            }
            for (i, pick) in gens.iter().enumerate() {
                if *pick && i + 1 < class_ids.len() {
                    let _ = m.add_generalization(class_ids[i + 1], class_ids[i]);
                }
            }
            for (i, s) in stereos.iter().enumerate() {
                if let Some(&id) = class_ids.get(i % class_ids.len().max(1)) {
                    m.apply_stereotype(id, s).expect("class exists");
                    m.set_tag(id, &format!("tag.{s}"), TagValue::Int(i as i64))
                        .expect("class exists");
                }
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xmi_round_trip_is_identity(model in arb_model()) {
        let xmi = export_model(&model);
        let back = import_model(&xmi).unwrap();
        prop_assert_eq!(back, model);
    }

    #[test]
    fn exported_documents_always_reparse_as_xml(model in arb_model()) {
        let xmi = export_model(&model);
        prop_assert!(comet_xmi::parse_xml(&xmi).is_ok());
    }

    #[test]
    fn double_export_is_stable(model in arb_model()) {
        let once = export_model(&model);
        let twice = export_model(&import_model(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn fully_marked_models_round_trip_byte_and_model_identically(
        model in arb_fully_marked_model()
    ) {
        let xmi = export_model(&model);
        let back = import_model(&xmi).unwrap();
        // Model-identical: every stereotype and comet.* tag survives.
        prop_assert_eq!(&back, &model);
        let full = back.find_class("C0").unwrap();
        for (stereo, tag, value) in ALL_MARKS {
            prop_assert!(back.has_stereotype(full, stereo).unwrap(), "lost {}", stereo);
            prop_assert_eq!(
                back.element(full).unwrap().core().tag(tag).unwrap().as_str(),
                Some(value),
                "lost {}", tag
            );
        }
        prop_assert_eq!(
            back.element(full).unwrap().core().tag(marks::TAG_FT_MAX_ATTEMPTS),
            Some(&TagValue::Int(4))
        );
        // Byte-identical: re-export reproduces the document exactly.
        prop_assert_eq!(export_model(&back), xmi);
    }
}
