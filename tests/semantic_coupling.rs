//! E3: the semantic-coupling experiment as an automated check (the
//! narrated version lives in `examples/semantic_coupling.rs`).
//!
//! Claim under test (paper §1, answering Kienzle & Guerraoui): a generic
//! transactional aspect without application knowledge either fails to
//! protect state or violates application semantics; the `Si` that
//! specialized the model transformation carries exactly the knowledge
//! the aspect needs.

mod common;

use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, Weaver};
use comet_codegen::{Block, Expr, IrType, Program, Stmt};
use comet_concerns::transactions;
use comet_interp::{Interp, Value};
use comet_transform::{ParamSet, ParamValue};
use common::{banking_bodies, executable_banking_pim, setup_bank};

fn functional() -> Program {
    comet_codegen::FunctionalGenerator::new().generate(&executable_banking_pim(), &banking_bodies())
}

fn crash_transfer(interp: &mut Interp, bank: Value) {
    let _ =
        interp.call(bank, "transfer", vec![Value::from("A-1"), Value::from("A-2"), Value::Int(13)]);
}

#[test]
fn unprotected_functional_code_corrupts_state_on_crash() {
    let mut interp = Interp::new(functional());
    let (bank, a1, a2) = setup_bank(&mut interp);
    crash_transfer(&mut interp, bank);
    assert_eq!(interp.field(&a1, "balance").unwrap(), Value::Int(987));
    assert_eq!(interp.field(&a2, "balance").unwrap(), Value::Int(50));
}

#[test]
fn aspect_with_empty_si_matches_nothing_and_protects_nothing() {
    // The "fully generic" aspect: correct template, but an empty method
    // list because no application knowledge exists to fill it.
    let (_, aspect) = transactions::pair()
        .specialize(ParamSet::new().with("methods", ParamValue::StrList(Vec::new())))
        .unwrap();
    assert!(aspect.advices.is_empty(), "no Si, no join points");
    let woven = Weaver::new(vec![aspect]).weave(&functional()).unwrap();
    assert!(woven.trace.is_empty());
    let mut interp = Interp::new(woven.program);
    let (bank, a1, _) = setup_bank(&mut interp);
    crash_transfer(&mut interp, bank);
    // Still corrupted.
    assert_eq!(interp.field(&a1, "balance").unwrap(), Value::Int(987));
}

#[test]
fn wrap_everything_aspect_overpays_and_misses_nested_semantics() {
    // Indiscriminate wrapping: protects transfer, but drags every query
    // into a transaction.
    let naive = Aspect::new("naive").with_advice(Advice::new(
        AdviceKind::Around,
        parse_pointcut("execution(*.*)").unwrap(),
        Block::of(vec![
            Stmt::If {
                cond: Expr::intrinsic("tx.active", vec![]),
                then_block: Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
                else_block: None,
            },
            Stmt::Expr(Expr::intrinsic("tx.begin", vec![Expr::str("rc")])),
            Stmt::TryCatch {
                body: Block::of(vec![
                    Stmt::Local {
                        name: "__r".into(),
                        ty: IrType::Str,
                        init: Some(Expr::Proceed(vec![])),
                    },
                    Stmt::Expr(Expr::intrinsic("tx.commit", vec![])),
                    Stmt::ret(Expr::var("__r")),
                ]),
                var: "__e".into(),
                handler: Block::of(vec![
                    Stmt::Expr(Expr::intrinsic("tx.rollback", vec![])),
                    Stmt::Throw(Expr::var("__e")),
                ]),
                finally: None,
            },
        ]),
    ));
    let woven = Weaver::new(vec![naive]).weave(&functional()).unwrap();
    let mut interp = Interp::new(woven.program);
    let (bank, a1, _) = setup_bank(&mut interp);
    crash_transfer(&mut interp, bank.clone());
    // State protected...
    assert_eq!(interp.field(&a1, "balance").unwrap(), Value::Int(1_000));
    // ...but queries now pay for transactions too.
    let before = interp.middleware().tx.stats().begun;
    interp.call(bank, "getBalance", vec![Value::from("A-1")]).unwrap();
    assert_eq!(interp.middleware().tx.stats().begun, before + 1);
}

#[test]
fn si_specialized_aspect_protects_exactly_the_declared_boundary() {
    let (_, aspect) = transactions::pair()
        .specialize(
            ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()])),
        )
        .unwrap();
    let woven = Weaver::new(vec![aspect]).weave(&functional()).unwrap();
    let mut interp = Interp::new(woven.program);
    let (bank, a1, a2) = setup_bank(&mut interp);
    crash_transfer(&mut interp, bank.clone());
    assert_eq!(interp.field(&a1, "balance").unwrap(), Value::Int(1_000));
    assert_eq!(interp.field(&a2, "balance").unwrap(), Value::Int(50));
    // Queries stay transaction-free.
    let before = interp.middleware().tx.stats().begun;
    interp.call(bank, "getBalance", vec![Value::from("A-1")]).unwrap();
    assert_eq!(interp.middleware().tx.stats().begun, before);
}
