//! E1 (Fig. 1): the generic→concrete pipeline on one concern dimension.
//!
//! Verifies the figure's structural claims: a GMT is specialized by `Si`
//! into a CMT that acts upon the model elements of concern space *i*;
//! the 1–1 associated GA is specialized by the **same** `Si` into a CA
//! that implements the concern at code level; and the CMT/CA names carry
//! the `T<p1, p2, ...>` parameter signature of the paper's Fig. 2.

mod common;

use comet::MdaLifecycle;
use comet_concerns::transactions;
use comet_interp::{Interp, Value};
use comet_workflow::WorkflowModel;
use common::{banking_bodies, executable_banking_pim, setup_bank, tx_si};

#[test]
fn same_si_specializes_transformation_and_aspect() {
    let pair = transactions::pair();
    let (cmt, ca) = pair.specialize(tx_si()).unwrap();
    // Identical effective parameter signatures on both artifacts.
    let sig = cmt.params().angle_signature();
    assert!(cmt.full_name().ends_with(&sig));
    assert!(ca.name.ends_with(&sig));
    assert!(sig.contains("methods=[Bank.transfer]"));
    assert!(sig.contains("isolation=serializable"));
    // Defaults were filled once and shared.
    assert!(sig.contains("propagation=required"));
}

#[test]
fn cmt_acts_on_the_concern_space_only() {
    let mut model = executable_banking_pim();
    let before = model.clone();
    let (cmt, _) = transactions::pair().specialize(tx_si()).unwrap();
    let report = cmt.apply(&mut model).unwrap();
    // Exactly one element (the transfer operation) was touched.
    assert_eq!(report.created.len(), 0);
    assert_eq!(report.removed.len(), 0);
    assert_eq!(report.modified.len(), 1);
    let bank = model.find_class("Bank").unwrap();
    let transfer = model.find_operation(bank, "transfer").unwrap();
    assert_eq!(report.modified[0], transfer);
    // Everything outside the concern space is untouched.
    let diff = comet_repo::diff_models(&before, &model);
    assert_eq!(diff.modified, vec![transfer]);
    assert!(diff.added.is_empty() && diff.removed.is_empty());
}

#[test]
fn ca_implements_the_concern_at_code_level() {
    let workflow = WorkflowModel::new("e1").step("transactions", false);
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).unwrap();
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    let system = mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).unwrap();

    // The functional program knows nothing about transactions.
    let functional_src = system.functional_source.clone();
    assert!(!functional_src.contains("tx.begin"));
    // The woven program does, via the CA.
    let woven_src = comet_codegen::pretty_print(&system.woven);
    assert!(woven_src.contains("tx.begin"));

    // And the behaviour is observable: the crash at amount 13 rolls the
    // debit back.
    let mut interp = Interp::new(system.woven);
    let (bank, a1, a2) = setup_bank(&mut interp);
    let err = interp
        .call(bank, "transfer", vec![Value::from("A-1"), Value::from("A-2"), Value::Int(13)])
        .unwrap_err();
    assert!(err.to_string().contains("simulated crash"));
    assert_eq!(interp.field(&a1, "balance").unwrap(), Value::Int(1_000));
    assert_eq!(interp.field(&a2, "balance").unwrap(), Value::Int(50));
    assert_eq!(interp.middleware().tx.stats().rolled_back, 1);
}

#[test]
fn without_the_aspect_the_same_crash_corrupts_state() {
    // Control group for the test above: functional program, no weaving.
    let workflow = WorkflowModel::new("e1").step("transactions", false);
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).unwrap();
    mda.apply_concern(&transactions::pair(), tx_si()).unwrap();
    let system = mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).unwrap();
    let mut interp = Interp::new(system.functional);
    let (bank, a1, a2) = setup_bank(&mut interp);
    let _ =
        interp.call(bank, "transfer", vec![Value::from("A-1"), Value::from("A-2"), Value::Int(13)]);
    // Debited but never credited: 13 units destroyed.
    assert_eq!(interp.field(&a1, "balance").unwrap(), Value::Int(987));
    assert_eq!(interp.field(&a2, "balance").unwrap(), Value::Int(50));
}

#[test]
fn invalid_si_is_rejected_before_anything_happens() {
    let pair = transactions::pair();
    // Missing the required `methods` parameter.
    assert!(pair.specialize(comet_transform::ParamSet::new()).is_err());
    // Unknown parameter.
    assert!(pair
        .specialize(
            comet_transform::ParamSet::new()
                .with("methods", comet_transform::ParamValue::from(vec![]))
                .with("warp", comet_transform::ParamValue::from("9"))
        )
        .is_err());
}
