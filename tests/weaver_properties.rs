//! E10: weaver invariants, including property-based coverage — public
//! signatures survive weaving, no `proceed` escapes, no-match weaving is
//! the identity, and the OCL/pointcut parsers round-trip through their
//! pretty printers.

mod common;

use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, Weaver};
use comet_codegen::{
    check_program, Block, ClassDecl, Expr, IrType, MethodDecl, Param, Program, Stmt,
};
use proptest::prelude::*;

/// Strategy: a random program of simple classes and methods.
fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(("[A-Z][a-z]{1,6}", prop::collection::vec("[a-z]{1,6}", 1..4)), 1..4)
        .prop_map(|classes| {
            let mut p = Program::new("arb");
            for (cname, methods) in classes {
                if p.find_class(&cname).is_some() {
                    continue;
                }
                let mut c = ClassDecl::new(&cname);
                for m in methods {
                    if c.find_method(&m).is_some() {
                        continue;
                    }
                    let mut method = MethodDecl::new(&m);
                    method.params.push(Param::new("x", IrType::Int));
                    method.ret = IrType::Int;
                    method.body = Block::of(vec![Stmt::ret(Expr::var("x"))]);
                    c.methods.push(method);
                }
                p.classes.push(c);
            }
            p
        })
}

fn logging_aspect(pointcut: &str) -> Aspect {
    Aspect::new("log").with_advice(Advice::new(
        AdviceKind::Before,
        parse_pointcut(pointcut).expect("valid pointcut"),
        Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "log.emit",
            vec![Expr::str("info"), Expr::var("__jp")],
        ))]),
    ))
}

fn around_aspect(pointcut: &str) -> Aspect {
    Aspect::new("wrap").with_advice(Advice::new(
        AdviceKind::Around,
        parse_pointcut(pointcut).expect("valid pointcut"),
        Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn weaving_preserves_public_signatures(program in arb_program()) {
        let weaver = Weaver::new(vec![logging_aspect("execution(*.*)"), around_aspect("execution(*.*)")]);
        let woven = weaver.weave(&program).unwrap().program;
        for class in &program.classes {
            let wc = woven.find_class(&class.name).unwrap();
            for m in &class.methods {
                let wm = wc.find_method(&m.name).unwrap();
                prop_assert_eq!(&wm.params, &m.params);
                prop_assert_eq!(&wm.ret, &m.ret);
            }
        }
    }

    #[test]
    fn woven_programs_are_always_clean(program in arb_program()) {
        let weaver = Weaver::new(vec![around_aspect("execution(*.*)")]);
        let woven = weaver.weave(&program).unwrap().program;
        prop_assert!(check_program(&woven).is_empty());
    }

    #[test]
    fn no_match_weaving_is_identity(program in arb_program()) {
        let weaver = Weaver::new(vec![logging_aspect("execution(Nothing.matches)")]);
        let result = weaver.weave(&program).unwrap();
        prop_assert_eq!(result.program, program);
        prop_assert!(result.trace.is_empty());
    }

    #[test]
    fn trace_count_equals_matched_methods(program in arb_program()) {
        let weaver = Weaver::new(vec![logging_aspect("execution(*.*)")]);
        let result = weaver.weave(&program).unwrap();
        let method_count: usize = program.classes.iter().map(|c| c.methods.len()).sum();
        prop_assert_eq!(result.trace.len(), method_count);
    }

    #[test]
    fn pointcut_display_reparses(class in "[A-Za-z*]{1,6}", method in "[a-z*]{1,6}") {
        let src = format!("execution({class}.{method}) && !within(Test*) || args(2)");
        let pc = parse_pointcut(&src).unwrap();
        let printed = pc.to_string();
        let re = parse_pointcut(&printed).unwrap();
        prop_assert_eq!(pc, re);
    }

    #[test]
    fn ocl_pretty_print_reparses(a in 0i64..100, b in 1i64..100, name in "[a-z]{1,8}") {
        let src = format!(
            "let {name} = {a} + {b} in if {name} > {b} then {name} * 2 else -{name} endif"
        );
        let e1 = comet_ocl::parse(&src).unwrap();
        let printed = e1.to_string();
        let e2 = comet_ocl::parse(&printed).unwrap();
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn ocl_arithmetic_matches_rust(a in -50i64..50, b in 1i64..50) {
        let m = comet_model::Model::new("m");
        let ctx = comet_ocl::Context::for_model(&m);
        let v = comet_ocl::evaluate(&format!("{a} + {b} * 2 - {a} mod {b}"), &ctx).unwrap();
        prop_assert_eq!(v, comet_ocl::Value::Int(a + b * 2 - a.rem_euclid(b)));
    }

    #[test]
    fn name_pattern_matches_agree_with_naive(pattern in "[ab*]{0,6}", text in "[ab]{0,6}") {
        // Naive reference: dynamic programming glob matcher.
        fn naive(p: &[u8], t: &[u8]) -> bool {
            let (np, nt) = (p.len(), t.len());
            let mut dp = vec![vec![false; nt + 1]; np + 1];
            dp[0][0] = true;
            for i in 1..=np {
                dp[i][0] = dp[i - 1][0] && p[i - 1] == b'*';
            }
            for i in 1..=np {
                for j in 1..=nt {
                    dp[i][j] = if p[i - 1] == b'*' {
                        dp[i - 1][j] || dp[i][j - 1]
                    } else {
                        dp[i - 1][j - 1] && p[i - 1] == t[j - 1]
                    };
                }
            }
            dp[np][nt]
        }
        let fast = comet_aop::NamePattern::new(pattern.clone()).matches(&text);
        prop_assert_eq!(fast, naive(pattern.as_bytes(), text.as_bytes()));
    }
}

#[test]
fn execution_weaving_runs_before_advice_exactly_once_per_call() {
    // Deterministic complement to the property tests: run the woven
    // program and count log records.
    let mut p = Program::new("x");
    let mut c = ClassDecl::new("A");
    let mut m = MethodDecl::new("f");
    m.ret = IrType::Int;
    m.body = Block::of(vec![Stmt::ret(Expr::int(1))]);
    c.methods.push(m);
    p.classes.push(c);
    let woven = Weaver::new(vec![logging_aspect("execution(A.f)")]).weave(&p).unwrap().program;
    let mut interp = comet_interp::Interp::new(woven);
    let a = interp.create("A").unwrap();
    for _ in 0..5 {
        interp.call(a.clone(), "f", vec![]).unwrap();
    }
    assert_eq!(interp.middleware().log.len(), 5);
    assert_eq!(interp.middleware().log.records()[0].message, "A.f");
}
