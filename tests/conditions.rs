//! E4: the pre/postcondition machinery (paper §2): "Each generic
//! transformation may define a set of pre- and postconditions. A
//! configuration of a generic transformation not only specializes the
//! transformation, but also specializes these conditions."

mod common;

use comet_concerns::{distribution, transactions};
use comet_ocl::{evaluate_bool, Context};
use comet_transform::{ParamSet, ParamValue, TransformError};
use common::{dist_si, executable_banking_pim, tx_si};

#[test]
fn conditions_are_specialized_by_the_parameters() {
    let (cmt, _) = transactions::pair().specialize(tx_si()).unwrap();
    let pre = cmt.preconditions();
    assert_eq!(pre.len(), 1);
    assert!(pre[0].contains("'Bank'") && pre[0].contains("'transfer'"));
    let post = cmt.postconditions();
    assert!(post[0].contains("'Transactional'"));

    // Different Si, different conditions — same generic transformation.
    let other =
        ParamSet::new().with("methods", ParamValue::from(vec!["Account.withdraw".to_owned()]));
    let (cmt2, _) = transactions::pair().specialize(other).unwrap();
    assert!(cmt2.preconditions()[0].contains("'Account'"));
    assert_ne!(pre, cmt2.preconditions());
}

#[test]
fn specialized_preconditions_guard_the_initial_state() {
    // "Specialized preconditions are used to check whether the initial
    // state of the model allows the application."
    let (cmt, _) = distribution::pair().specialize(dist_si()).unwrap();
    let mut model = executable_banking_pim();
    // First application: preconditions hold.
    let ctx = Context::for_model(&model);
    for pre in cmt.preconditions() {
        assert!(evaluate_bool(&pre, &ctx).unwrap(), "{pre}");
    }
    cmt.apply(&mut model).unwrap();
    // Second application: the idempotence precondition now fails.
    let ctx = Context::for_model(&model);
    let failing: Vec<String> =
        cmt.preconditions().into_iter().filter(|p| !evaluate_bool(p, &ctx).unwrap()).collect();
    assert_eq!(failing.len(), 1);
    assert!(failing[0].starts_with("not "));
    assert!(matches!(
        cmt.apply(&mut model).unwrap_err(),
        TransformError::PreconditionFailed { .. }
    ));
}

#[test]
fn specialized_postconditions_verify_consistency_and_integrity() {
    // "Specialized postconditions are used to check the consistency and
    // integrity of the obtained model."
    let (cmt, _) = distribution::pair().specialize(dist_si()).unwrap();
    let mut model = executable_banking_pim();
    cmt.apply(&mut model).unwrap();
    let ctx = Context::for_model(&model);
    for post in cmt.postconditions() {
        assert!(evaluate_bool(&post, &ctx).unwrap(), "{post}");
    }
    // The engine also re-validated well-formedness.
    assert!(model.validate().is_ok());
}

#[test]
fn failing_postcondition_rolls_the_model_back() {
    use comet_transform::{specialize, TransformationBuilder};
    let gmt = TransformationBuilder::new("broken", "testing")
        .postconditions_fn(|_| vec!["Class.allInstances()->size() = 9999".to_owned()])
        .body(|model, _| {
            let root = model.root();
            model.add_class(root, "Junk")?;
            Ok(())
        })
        .build();
    let cmt = specialize(gmt, ParamSet::new()).unwrap();
    let mut model = executable_banking_pim();
    let snapshot = model.clone();
    let err = cmt.apply(&mut model).unwrap_err();
    assert!(matches!(err, TransformError::PostconditionFailed { .. }));
    assert_eq!(model, snapshot, "the junk class must be gone");
}

#[test]
fn condition_language_errors_are_reported_not_swallowed() {
    use comet_transform::{specialize, TransformationBuilder};
    let gmt = TransformationBuilder::new("typo", "testing")
        .precondition("Class.allInstances()->slect(c | true)") // typo: slect
        .body(|_, _| Ok(()))
        .build();
    let cmt = specialize(gmt, ParamSet::new()).unwrap();
    let mut model = executable_banking_pim();
    let err = cmt.apply(&mut model).unwrap_err();
    match err {
        TransformError::Condition { condition, .. } => assert!(condition.contains("slect")),
        other => panic!("expected Condition error, got {other}"),
    }
}
