//! Runtime behaviour of `cflow(...)` pointcuts: advice guarded by a
//! control-flow residue fires only inside the declared dynamic context —
//! the AspectJ counter-instrumentation strategy over the COMET weaver.

use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, WeaveError, Weaver};
use comet_codegen::{Block, ClassDecl, Expr, IrType, MethodDecl, Program, Stmt};
use comet_interp::{Interp, Value};

/// `Service.entry` calls `Service.helper`; `helper` is also callable
/// directly.
fn program() -> Program {
    let mut p = Program::new("cf");
    let mut service = ClassDecl::new("Service");
    let mut entry = MethodDecl::new("entry");
    entry.body = Block::of(vec![Stmt::Expr(Expr::call_this("helper", vec![]))]);
    service.methods.push(entry);
    let mut helper = MethodDecl::new("helper");
    helper.ret = IrType::Int;
    helper.body = Block::of(vec![Stmt::ret(Expr::int(7))]);
    service.methods.push(helper);
    p.classes.push(service);
    p
}

fn log_advice(kind: AdviceKind, pointcut: &str) -> Advice {
    Advice::new(
        kind,
        parse_pointcut(pointcut).expect("valid pointcut"),
        Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "log.emit",
            vec![Expr::str("info"), Expr::var("__jp")],
        ))]),
    )
}

#[test]
fn before_advice_fires_only_inside_the_cflow() {
    let aspect = Aspect::new("cf").with_advice(log_advice(
        AdviceKind::Before,
        "execution(Service.helper) && cflow(execution(Service.entry))",
    ));
    let woven = Weaver::new(vec![aspect]).weave(&program()).unwrap();
    let mut interp = Interp::new(woven.program);
    let s = interp.create("Service").unwrap();

    // Direct helper call: outside the cflow, no log record.
    assert_eq!(interp.call(s.clone(), "helper", vec![]).unwrap(), Value::Int(7));
    assert_eq!(interp.middleware().log.len(), 0);

    // Through entry: inside the cflow, the advice fires.
    interp.call(s.clone(), "entry", vec![]).unwrap();
    assert_eq!(interp.middleware().log.len(), 1);
    assert_eq!(interp.middleware().log.records()[0].message, "Service.helper");

    // And direct calls afterwards are clean again (counter exited).
    interp.call(s, "helper", vec![]).unwrap();
    assert_eq!(interp.middleware().log.len(), 1);
}

#[test]
fn around_advice_bypasses_to_proceed_outside_the_cflow() {
    // Around advice that rewrites the helper's result, but only inside
    // `entry`'s control flow.
    let rewrite = Advice::new(
        AdviceKind::Around,
        parse_pointcut("execution(Service.helper) && cflow(execution(Service.entry))").unwrap(),
        Block::of(vec![Stmt::ret(Expr::int(42))]),
    );
    let woven =
        Weaver::new(vec![Aspect::new("cf").with_advice(rewrite)]).weave(&program()).unwrap();
    let mut interp = Interp::new(woven.program);
    let s = interp.create("Service").unwrap();
    assert_eq!(
        interp.call(s.clone(), "helper", vec![]).unwrap(),
        Value::Int(7),
        "outside the cflow: proceed to the original"
    );
    interp.call(s, "entry", vec![]).unwrap(); // inside: returns 42 to entry
}

#[test]
fn cflow_counter_survives_exceptions() {
    // entry throws after calling helper; the instrumentation must still
    // exit the context, so later direct calls are outside the cflow.
    let mut p = program();
    let service = p.find_class_mut("Service").unwrap();
    let entry = service.find_method_mut("entry").unwrap();
    entry.body.stmts.push(Stmt::Throw(Expr::str("boom")));
    let aspect = Aspect::new("cf").with_advice(log_advice(
        AdviceKind::Before,
        "execution(Service.helper) && cflow(execution(Service.entry))",
    ));
    let woven = Weaver::new(vec![aspect]).weave(&p).unwrap();
    let mut interp = Interp::new(woven.program);
    let s = interp.create("Service").unwrap();
    assert!(interp.call(s.clone(), "entry", vec![]).is_err());
    assert_eq!(interp.middleware().log.len(), 1, "fired inside the cflow");
    interp.call(s, "helper", vec![]).unwrap();
    assert_eq!(interp.middleware().log.len(), 1, "context exited despite the throw");
}

#[test]
fn recursive_cflow_counts_nesting() {
    // A recursive entry: the context stays active across nested entries.
    let mut p = Program::new("cf");
    let mut c = ClassDecl::new("R");
    let mut rec = MethodDecl::new("rec");
    rec.params.push(comet_codegen::Param::new("n", IrType::Int));
    rec.body = Block::of(vec![
        Stmt::If {
            cond: Expr::binary(comet_codegen::IrBinOp::Gt, Expr::var("n"), Expr::int(0)),
            then_block: Block::of(vec![
                Stmt::Expr(Expr::call_this("tick", vec![])),
                Stmt::Expr(Expr::call_this(
                    "rec",
                    vec![Expr::binary(comet_codegen::IrBinOp::Sub, Expr::var("n"), Expr::int(1))],
                )),
            ]),
            else_block: None,
        },
        Stmt::Return(None),
    ]);
    c.methods.push(rec);
    c.methods.push(MethodDecl::new("tick"));
    p.classes.push(c);
    let aspect = Aspect::new("cf").with_advice(log_advice(
        AdviceKind::Before,
        "execution(R.tick) && cflow(execution(R.rec))",
    ));
    let woven = Weaver::new(vec![aspect]).weave(&p).unwrap();
    let mut interp = Interp::new(woven.program);
    let r = interp.create("R").unwrap();
    interp.call(r, "rec", vec![Value::Int(4)]).unwrap();
    assert_eq!(interp.middleware().log.len(), 4, "every nested tick was in the cflow");
}

#[test]
fn unsupported_cflow_positions_are_rejected() {
    for bad in [
        "!cflow(execution(A.b))",
        "execution(*.*) || cflow(execution(A.b))",
        "cflow(cflow(execution(A.b)))",
    ] {
        let aspect = Aspect::new("bad").with_advice(log_advice(AdviceKind::Before, bad));
        let err = Weaver::new(vec![aspect]).weave(&program()).unwrap_err();
        assert!(matches!(err, WeaveError::UnsupportedCflow { .. }), "{bad}");
    }
}

#[test]
fn cflow_pointcut_display_reparses() {
    let src = "execution(Service.helper) && cflow(execution(Service.entry))";
    let pc = parse_pointcut(src).unwrap();
    assert_eq!(parse_pointcut(&pc.to_string()).unwrap(), pc);
}
