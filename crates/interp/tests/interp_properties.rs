//! Property tests for the interpreter: arithmetic agrees with native
//! Rust, control flow terminates within its budget, and the call trace
//! nests properly.

use comet_codegen::{Block, ClassDecl, Expr, IrBinOp, IrType, MethodDecl, Param, Program, Stmt};
use comet_interp::{Interp, Value};
use proptest::prelude::*;

fn one_method_program(method: MethodDecl) -> Program {
    let mut p = Program::new("prop");
    let mut c = ClassDecl::new("T");
    c.methods.push(method);
    p.classes.push(c);
    p
}

/// A random arithmetic expression over two variables, paired with a
/// native evaluator.
#[derive(Debug, Clone)]
enum Arith {
    X,
    Y,
    Lit(i64),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_ir(&self) -> Expr {
        match self {
            Arith::X => Expr::var("x"),
            Arith::Y => Expr::var("y"),
            Arith::Lit(i) => Expr::int(*i),
            Arith::Add(a, b) => Expr::binary(IrBinOp::Add, a.to_ir(), b.to_ir()),
            Arith::Sub(a, b) => Expr::binary(IrBinOp::Sub, a.to_ir(), b.to_ir()),
            Arith::Mul(a, b) => Expr::binary(IrBinOp::Mul, a.to_ir(), b.to_ir()),
        }
    }

    fn eval(&self, x: i64, y: i64) -> i64 {
        match self {
            Arith::X => x,
            Arith::Y => y,
            Arith::Lit(i) => *i,
            Arith::Add(a, b) => a.eval(x, y).wrapping_add(b.eval(x, y)),
            Arith::Sub(a, b) => a.eval(x, y).wrapping_sub(b.eval(x, y)),
            Arith::Mul(a, b) => a.eval(x, y).wrapping_mul(b.eval(x, y)),
        }
    }
}

fn arb_arith() -> impl Strategy<Value = Arith> {
    let leaf = prop_oneof![Just(Arith::X), Just(Arith::Y), (-50i64..50).prop_map(Arith::Lit),];
    leaf.prop_recursive(5, 40, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn arithmetic_agrees_with_rust(expr in arb_arith(), x in -100i64..100, y in -100i64..100) {
        let mut method = MethodDecl::new("f");
        method.params.push(Param::new("x", IrType::Int));
        method.params.push(Param::new("y", IrType::Int));
        method.ret = IrType::Int;
        method.body = Block::of(vec![Stmt::ret(expr.to_ir())]);
        let mut interp = Interp::new(one_method_program(method));
        let obj = interp.create("T").expect("class exists");
        let got = interp
            .call(obj, "f", vec![Value::Int(x), Value::Int(y)])
            .expect("pure arithmetic");
        prop_assert_eq!(got, Value::Int(expr.eval(x, y)));
    }

    #[test]
    fn bounded_loops_compute_sums(n in 0i64..200) {
        let mut method = MethodDecl::new("sum");
        method.params.push(Param::new("n", IrType::Int));
        method.ret = IrType::Int;
        method.body = Block::of(vec![
            Stmt::local("acc", IrType::Int, Expr::int(0)),
            Stmt::local("i", IrType::Int, Expr::int(1)),
            Stmt::While {
                cond: Expr::binary(IrBinOp::Le, Expr::var("i"), Expr::var("n")),
                body: Block::of(vec![
                    Stmt::set_var("acc", Expr::binary(IrBinOp::Add, Expr::var("acc"), Expr::var("i"))),
                    Stmt::set_var("i", Expr::binary(IrBinOp::Add, Expr::var("i"), Expr::int(1))),
                ]),
            },
            Stmt::ret(Expr::var("acc")),
        ]);
        let mut interp = Interp::new(one_method_program(method));
        let obj = interp.create("T").expect("class exists");
        let got = interp.call(obj, "sum", vec![Value::Int(n)]).expect("terminates");
        prop_assert_eq!(got, Value::Int(n * (n + 1) / 2));
    }

    #[test]
    fn thrown_values_round_trip_through_catch(payload in "[a-z]{0,12}") {
        // f: try { throw payload } catch e { return e }
        let mut method = MethodDecl::new("f");
        method.ret = IrType::Str;
        method.body = Block::of(vec![Stmt::TryCatch {
            body: Block::of(vec![Stmt::Throw(Expr::str(payload.clone()))]),
            var: "e".into(),
            handler: Block::of(vec![Stmt::ret(Expr::var("e"))]),
            finally: None,
        }]);
        let mut interp = Interp::new(one_method_program(method));
        let obj = interp.create("T").expect("class exists");
        let got = interp.call(obj, "f", vec![]).expect("caught");
        prop_assert_eq!(got, Value::Str(payload));
    }

    #[test]
    fn call_trace_depths_nest_like_a_dyck_word(depth in 1usize..8) {
        // A chain of methods m0 -> m1 -> ... -> m{depth-1}.
        let mut p = Program::new("chain");
        let mut c = ClassDecl::new("T");
        for i in 0..depth {
            let mut m = MethodDecl::new(format!("m{i}"));
            if i + 1 < depth {
                m.body = Block::of(vec![Stmt::Expr(Expr::call_this(format!("m{}", i + 1), vec![]))]);
            }
            c.methods.push(m);
        }
        p.classes.push(c);
        let mut interp = Interp::new(p);
        let obj = interp.create("T").expect("class exists");
        interp.enable_call_trace();
        interp.call(obj, "m0", vec![]).expect("runs");
        let trace = interp.take_call_trace();
        prop_assert_eq!(trace.len(), depth);
        for (i, line) in trace.iter().enumerate() {
            prop_assert_eq!(line, &format!("{i} T.m{i}"));
        }
    }
}
