//! Bindings from IR intrinsics to the simulated middleware. The names
//! are declared in `comet_codegen::marks::intrinsics`; this module gives
//! them behaviour.

use crate::machine::{Interp, InterpError};
use crate::value::Value;
use comet_middleware::MiddlewareError;

fn thrown(e: MiddlewareError) -> InterpError {
    InterpError::Thrown(Value::Str(e.to_string()))
}

fn want_str(args: &[Value], idx: usize, what: &str) -> Result<String, InterpError> {
    args.get(idx).and_then(Value::as_str).map(str::to_owned).ok_or_else(|| {
        InterpError::IntrinsicArgs(format!("{what}: argument {idx} must be a string"))
    })
}

fn want_int(args: &[Value], idx: usize, what: &str) -> Result<i64, InterpError> {
    match args.get(idx) {
        Some(Value::Int(n)) => Ok(*n),
        _ => Err(InterpError::IntrinsicArgs(format!("{what}: argument {idx} must be an int"))),
    }
}

impl Interp {
    /// Dispatches one intrinsic call.
    ///
    /// # Errors
    /// Middleware denials surface as [`InterpError::Thrown`]; malformed
    /// argument lists as [`InterpError::IntrinsicArgs`]; unknown names as
    /// [`InterpError::UnknownIntrinsic`].
    pub(crate) fn call_intrinsic(
        &mut self,
        name: &str,
        args: Vec<Value>,
        this: Option<u64>,
    ) -> Result<Value, InterpError> {
        match name {
            "tx.begin" => {
                let isolation = if args.is_empty() {
                    "read-committed".to_owned()
                } else {
                    want_str(&args, 0, "tx.begin")?
                };
                let id = self.middleware_mut().tx.begin(&isolation).map_err(thrown)?;
                Ok(Value::Int(id as i64))
            }
            "tx.active" => Ok(Value::Bool(self.middleware().tx.current().is_some())),
            "tx.commit" => {
                let tx = self
                    .middleware()
                    .tx
                    .current()
                    .ok_or_else(|| thrown(MiddlewareError::NoActiveTransaction))?;
                // Meter the two-phase-commit traffic: one prepare/vote
                // round trip per participant when the transaction spans
                // several nodes. A lost prepare aborts the transaction.
                let participants: Vec<String> =
                    self.middleware().tx.participants(tx).map_err(thrown)?.to_vec();
                if participants.len() >= 2 {
                    let origin = self.middleware().bus.current_node().to_owned();
                    for p in &participants {
                        if let Err(e) = self.middleware_mut().bus.round_trip(&origin, p, 24, 8) {
                            let undo = self.middleware_mut().tx.rollback(tx).map_err(thrown)?;
                            self.apply_undo(undo);
                            self.middleware_mut().locks.release_all(tx);
                            return Err(InterpError::Thrown(Value::Str(format!(
                                "transaction aborted: prepare failed ({e})"
                            ))));
                        }
                    }
                }
                match self.middleware_mut().tx.commit(tx) {
                    Ok(_) => {
                        // Decision phase: commit messages (best effort;
                        // real coordinators retry these).
                        if participants.len() >= 2 {
                            let origin = self.middleware().bus.current_node().to_owned();
                            for p in &participants {
                                let _ = self.middleware_mut().bus.send(&origin, p, 8);
                            }
                        }
                        self.middleware_mut().locks.release_all(tx);
                        Ok(Value::Null)
                    }
                    Err(
                        e @ (MiddlewareError::VotedAbort { .. }
                        | MiddlewareError::FaultInjected { .. }),
                    ) => {
                        // 2PC vote-abort or injected commit fault: the
                        // transaction is still active — roll back,
                        // restore pre-images, throw a typed error.
                        let undo = self.middleware_mut().tx.rollback(tx).map_err(thrown)?;
                        self.apply_undo(undo);
                        self.middleware_mut().locks.release_all(tx);
                        let msg = match e {
                            MiddlewareError::VotedAbort { node } => {
                                format!("transaction aborted: participant `{node}` voted no")
                            }
                            other => format!("transaction aborted: {other}"),
                        };
                        Err(InterpError::Thrown(Value::Str(msg)))
                    }
                    Err(other) => Err(thrown(other)),
                }
            }
            "tx.rollback" => {
                // Idempotent: rolling back with no active transaction is
                // a no-op, so generic exception handlers in advice can
                // always call it (a failed commit already rolled back).
                let Some(tx) = self.middleware().tx.current() else {
                    return Ok(Value::Null);
                };
                let undo = self.middleware_mut().tx.rollback(tx).map_err(thrown)?;
                self.apply_undo(undo);
                self.middleware_mut().locks.release_all(tx);
                Ok(Value::Null)
            }
            "sec.check" => {
                let role = want_str(&args, 0, "sec.check")?;
                let resource = want_str(&args, 1, "sec.check")?;
                self.middleware_mut().security.check(&role, &resource).map_err(thrown)?;
                Ok(Value::Null)
            }
            "net.is_local" => {
                let node = want_str(&args, 0, "net.is_local")?;
                Ok(Value::Bool(self.middleware().bus.is_local(&node)))
            }
            "net.register" => {
                let node = want_str(&args, 0, "net.register")?;
                let reg_name = want_str(&args, 1, "net.register")?;
                if !self.middleware().bus.has_node(&node) {
                    return Err(thrown(MiddlewareError::UnknownNode(node)));
                }
                let handle = this.ok_or_else(|| {
                    InterpError::IntrinsicArgs("net.register requires an object context".into())
                })?;
                self.middleware_mut().naming.rebind(&reg_name, &node, handle);
                if let Some(o) = self.heap.get_mut(&handle) {
                    o.node = node;
                }
                Ok(Value::Null)
            }
            "net.call" | "net.call_list" => {
                if args.len() < 3 {
                    return Err(InterpError::IntrinsicArgs(
                        "net.call needs (node, registryName, method, args...)".into(),
                    ));
                }
                let _declared_node = want_str(&args, 0, "net.call")?;
                let reg_name = want_str(&args, 1, "net.call")?;
                let method = want_str(&args, 2, "net.call")?;
                // `net.call_list` passes the forwarded arguments as one
                // list value (the weaver-injected `__args`).
                let call_args: Vec<Value> = if name == "net.call_list" {
                    match args.get(3) {
                        Some(Value::List(items)) => items.clone(),
                        Some(other) => {
                            return Err(InterpError::IntrinsicArgs(format!(
                                "net.call_list: argument 3 must be a list, got {}",
                                other.type_name()
                            )))
                        }
                        None => Vec::new(),
                    }
                } else {
                    args[3..].to_vec()
                };
                let registration =
                    self.middleware().naming.lookup(&reg_name).map_err(thrown)?.clone();
                let origin = self.middleware().bus.current_node().to_owned();
                let request_bytes = 8
                    + method.len() as u64
                    + call_args.iter().map(Value::payload_bytes).sum::<u64>();
                self.middleware_mut()
                    .bus
                    .send(&origin, &registration.node, request_bytes)
                    .map_err(thrown)?;
                self.middleware_mut().bus.set_current_node(&registration.node).map_err(thrown)?;
                let outcome = self.invoke(registration.object_key, &method, call_args);
                // Execution returns to the caller node whatever happened.
                self.middleware_mut().bus.set_current_node(&origin).map_err(thrown)?;
                match outcome {
                    Ok(result) => {
                        let response_bytes = result.payload_bytes().max(1);
                        self.middleware_mut()
                            .bus
                            .send(&registration.node, &origin, response_bytes)
                            .map_err(thrown)?;
                        Ok(result)
                    }
                    Err(e) => {
                        // Exception response is small but still a message.
                        let _ = self.middleware_mut().bus.send(&registration.node, &origin, 16);
                        Err(e)
                    }
                }
            }
            "log.emit" => {
                let level = want_str(&args, 0, "log.emit")?;
                let message = want_str(&args, 1, "log.emit")?;
                let at = self.middleware().now_us();
                self.middleware_mut().log.emit(&level, &message, at);
                Ok(Value::Null)
            }
            "lock.acquire" => {
                let lock = want_str(&args, 0, "lock.acquire")?;
                let owner = self.middleware().tx.current().unwrap_or(0);
                self.middleware_mut().locks.try_acquire(&lock, owner).map_err(thrown)?;
                Ok(Value::Null)
            }
            "lock.release" => {
                let lock = want_str(&args, 0, "lock.release")?;
                let owner = self.middleware().tx.current().unwrap_or(0);
                self.middleware_mut().locks.release(&lock, owner).map_err(thrown)?;
                Ok(Value::Null)
            }
            "cflow.enter" => {
                let key = want_str(&args, 0, "cflow.enter")?;
                *self.cflow.entry(key).or_insert(0) += 1;
                Ok(Value::Null)
            }
            "cflow.exit" => {
                let key = want_str(&args, 0, "cflow.exit")?;
                match self.cflow.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        Ok(Value::Null)
                    }
                    _ => Err(InterpError::IntrinsicArgs(format!(
                        "cflow.exit without matching enter for `{key}`"
                    ))),
                }
            }
            "cflow.active" => {
                let key = want_str(&args, 0, "cflow.active")?;
                Ok(Value::Bool(self.cflow.get(&key).copied().unwrap_or(0) > 0))
            }
            "store.save" => {
                let key = want_str(&args, 0, "store.save")?;
                let handle = this.ok_or_else(|| {
                    InterpError::IntrinsicArgs("store.save requires an object context".into())
                })?;
                let snapshot = self.snapshot_object(handle)?;
                self.middleware_mut().store.save(&key, snapshot).map_err(thrown)?;
                Ok(Value::Null)
            }
            "store.load" => {
                let key = want_str(&args, 0, "store.load")?;
                let handle = this.ok_or_else(|| {
                    InterpError::IntrinsicArgs("store.load requires an object context".into())
                })?;
                match self.middleware_mut().store.load(&key).map_err(thrown)? {
                    Some(snapshot) => {
                        self.restore_object(handle, &snapshot)?;
                        Ok(Value::Bool(true))
                    }
                    None => Ok(Value::Bool(false)),
                }
            }
            "ft.now_us" => Ok(Value::Int(self.middleware().now_us() as i64)),
            "ft.backoff" => {
                // Exponential backoff with deterministic jitter: sleeps
                // (advances the sim clock) for base * 2^(attempt-1) plus
                // a jitter draw from the injector's seeded RNG. Returns
                // the total sim-µs waited.
                let attempt = want_int(&args, 0, "ft.backoff")?.max(1) as u64;
                let base_us = want_int(&args, 1, "ft.backoff")?.max(0) as u64;
                let exp = (attempt - 1).min(20);
                let delay = base_us.saturating_mul(1 << exp);
                let total = {
                    let mw = self.middleware_mut();
                    let jitter = mw.faults.borrow_mut().jitter_us(delay / 2);
                    delay.saturating_add(jitter)
                };
                self.middleware_mut().bus.advance_clock_us(total);
                Ok(Value::Int(total as i64))
            }
            "ft.breaker.allow" => {
                // Throws a typed circuit-open error when the breaker for
                // `callee` rejects the call; half-open probes pass.
                let callee = want_str(&args, 0, "ft.breaker.allow")?;
                let allowed = {
                    let mw = self.middleware_mut();
                    let allowed = mw.faults.borrow_mut().breaker_allow(&callee);
                    allowed
                };
                if allowed {
                    Ok(Value::Null)
                } else {
                    Err(thrown(MiddlewareError::CircuitOpen { callee }))
                }
            }
            "ft.breaker.record" => {
                let callee = want_str(&args, 0, "ft.breaker.record")?;
                let ok = match args.get(1) {
                    Some(Value::Bool(b)) => *b,
                    _ => {
                        return Err(InterpError::IntrinsicArgs(
                            "ft.breaker.record: argument 1 must be a bool".into(),
                        ))
                    }
                };
                let threshold = want_int(&args, 2, "ft.breaker.record")?.max(0) as u64;
                let cooldown_us = want_int(&args, 3, "ft.breaker.record")?.max(0) as u64;
                let mw = self.middleware_mut();
                mw.faults.borrow_mut().breaker_record(&callee, ok, threshold, cooldown_us);
                Ok(Value::Null)
            }
            "ft.deadline.check" => {
                // Throws a typed deadline error when `elapsed >= limit`
                // (a limit of 0 disables the deadline).
                let callee = want_str(&args, 0, "ft.deadline.check")?;
                let start_us = want_int(&args, 1, "ft.deadline.check")?.max(0) as u64;
                let deadline_us = want_int(&args, 2, "ft.deadline.check")?.max(0) as u64;
                let elapsed_us = self.middleware().now_us().saturating_sub(start_us);
                if deadline_us > 0 && elapsed_us >= deadline_us {
                    Err(thrown(MiddlewareError::DeadlineExceeded {
                        callee,
                        elapsed_us,
                        deadline_us,
                    }))
                } else {
                    Ok(Value::Null)
                }
            }
            other => Err(InterpError::UnknownIntrinsic(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Interp;
    use comet_codegen::{
        Block, ClassDecl, Expr, FieldDecl, IrBinOp, IrType, MethodDecl, Param, Program, Stmt,
    };
    use comet_middleware::MiddlewareConfig;

    /// An Account class whose `deposit` runs inside explicit tx
    /// intrinsics and whose `fail_deposit` writes then throws.
    fn tx_program() -> Program {
        let mut p = Program::new("t");
        let mut acc = ClassDecl::new("Account");
        acc.fields.push(FieldDecl::new("balance", IrType::Int));
        let mut deposit = MethodDecl::new("deposit");
        deposit.params.push(Param::new("amount", IrType::Int));
        deposit.body = Block::of(vec![
            Stmt::Expr(Expr::intrinsic("tx.begin", vec![Expr::str("rc")])),
            Stmt::set_this_field(
                "balance",
                Expr::binary(IrBinOp::Add, Expr::this_field("balance"), Expr::var("amount")),
            ),
            Stmt::Expr(Expr::intrinsic("tx.commit", vec![])),
        ]);
        acc.methods.push(deposit);
        let mut fail = MethodDecl::new("fail_deposit");
        fail.params.push(Param::new("amount", IrType::Int));
        fail.body = Block::of(vec![
            Stmt::Expr(Expr::intrinsic("tx.begin", vec![])),
            Stmt::set_this_field(
                "balance",
                Expr::binary(IrBinOp::Add, Expr::this_field("balance"), Expr::var("amount")),
            ),
            Stmt::TryCatch {
                body: Block::of(vec![Stmt::Throw(Expr::str("boom"))]),
                var: "e".into(),
                handler: Block::of(vec![
                    Stmt::Expr(Expr::intrinsic("tx.rollback", vec![])),
                    Stmt::Throw(Expr::var("e")),
                ]),
                finally: None,
            },
        ]);
        acc.methods.push(fail);
        p.classes.push(acc);
        p
    }

    #[test]
    fn transaction_commit_keeps_write() {
        let mut i = Interp::new(tx_program());
        let o = i.create("Account").unwrap();
        i.call(o.clone(), "deposit", vec![Value::Int(50)]).unwrap();
        assert_eq!(i.field(&o, "balance").unwrap(), Value::Int(50));
        assert_eq!(i.middleware().tx.stats().committed, 1);
    }

    #[test]
    fn transaction_rollback_restores_preimage() {
        let mut i = Interp::new(tx_program());
        let o = i.create("Account").unwrap();
        i.call(o.clone(), "deposit", vec![Value::Int(50)]).unwrap();
        let err = i.call(o.clone(), "fail_deposit", vec![Value::Int(999)]).unwrap_err();
        assert!(matches!(err, InterpError::Thrown(Value::Str(s)) if s == "boom"));
        // The write inside the failed transaction was undone.
        assert_eq!(i.field(&o, "balance").unwrap(), Value::Int(50));
        assert_eq!(i.middleware().tx.stats().rolled_back, 1);
    }

    #[test]
    fn security_check_grants_and_denies() {
        let mut p = Program::new("t");
        let mut c = ClassDecl::new("S");
        let mut m = MethodDecl::new("secured");
        m.body = Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "sec.check",
            vec![Expr::str("teller"), Expr::str("S.secured")],
        ))]);
        c.methods.push(m);
        p.classes.push(c);
        let mut i = Interp::new(p);
        i.add_principal("alice", &["teller"]);
        i.add_principal("bob", &["customer"]);
        let o = i.create("S").unwrap();
        // Unauthenticated: thrown.
        assert!(matches!(i.call(o.clone(), "secured", vec![]), Err(InterpError::Thrown(_))));
        i.login("alice").unwrap();
        assert!(i.call(o.clone(), "secured", vec![]).is_ok());
        i.logout();
        i.login("bob").unwrap();
        assert!(matches!(i.call(o, "secured", vec![]), Err(InterpError::Thrown(_))));
        assert_eq!(i.middleware().security.denials(), 2);
    }

    #[test]
    fn rpc_moves_execution_and_meters_traffic() {
        let mut p = Program::new("t");
        let mut server = ClassDecl::new("Server");
        server.fields.push(FieldDecl::new("hits", IrType::Int));
        let mut ping = MethodDecl::new("ping");
        ping.ret = IrType::Str;
        ping.body = Block::of(vec![
            Stmt::set_this_field(
                "hits",
                Expr::binary(IrBinOp::Add, Expr::this_field("hits"), Expr::int(1)),
            ),
            Stmt::ret(Expr::str("pong")),
        ]);
        server.methods.push(ping);
        let mut reg = MethodDecl::new("register");
        reg.body = Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "net.register",
            vec![Expr::str("server-node"), Expr::str("svc")],
        ))]);
        server.methods.push(reg);
        let mut client = ClassDecl::new("Client");
        let mut call = MethodDecl::new("call");
        call.ret = IrType::Str;
        call.body = Block::of(vec![Stmt::ret(Expr::intrinsic(
            "net.call",
            vec![Expr::str("server-node"), Expr::str("svc"), Expr::str("ping")],
        ))]);
        client.methods.push(call);
        p.classes.push(server);
        p.classes.push(client);

        let mut i = Interp::new(p);
        i.add_node("client-node");
        i.add_node("server-node");
        i.middleware_mut().bus.set_current_node("client-node").unwrap();
        let s = i.create_on("Server", "server-node").unwrap();
        i.call(s.clone(), "register", vec![]).unwrap();
        let c = i.create("Client").unwrap();
        let r = i.call(c, "call", vec![]).unwrap();
        assert_eq!(r, Value::Str("pong".into()));
        assert_eq!(i.field(&s, "hits").unwrap(), Value::Int(1));
        // Request + response were metered.
        assert_eq!(i.middleware().bus.stats().delivered, 2);
        // Execution returned to the client node.
        assert_eq!(i.middleware().bus.current_node(), "client-node");
    }

    #[test]
    fn rpc_to_unbound_name_throws() {
        let mut p = Program::new("t");
        let mut c = ClassDecl::new("C");
        let mut m = MethodDecl::new("go");
        m.body = Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "net.call",
            vec![Expr::str("n"), Expr::str("ghost"), Expr::str("ping")],
        ))]);
        c.methods.push(m);
        p.classes.push(c);
        let mut i = Interp::new(p);
        let o = i.create("C").unwrap();
        assert!(matches!(i.call(o, "go", vec![]), Err(InterpError::Thrown(_))));
    }

    #[test]
    fn locks_acquire_release_and_conflict() {
        let mut p = Program::new("t");
        let mut c = ClassDecl::new("C");
        let mut m = MethodDecl::new("locked");
        m.body = Block::of(vec![
            Stmt::Expr(Expr::intrinsic("lock.acquire", vec![Expr::str("L")])),
            Stmt::Expr(Expr::intrinsic("lock.release", vec![Expr::str("L")])),
        ]);
        c.methods.push(m);
        p.classes.push(c);
        let mut i = Interp::new(p);
        let o = i.create("C").unwrap();
        i.call(o, "locked", vec![]).unwrap();
        assert_eq!(i.middleware().locks.stats().acquired, 1);
    }

    #[test]
    fn log_emit_records_with_time() {
        let mut p = Program::new("t");
        let mut c = ClassDecl::new("C");
        let mut m = MethodDecl::new("go");
        m.body = Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "log.emit",
            vec![Expr::str("info"), Expr::str("hello")],
        ))]);
        c.methods.push(m);
        p.classes.push(c);
        let mut i = Interp::new(p);
        let o = i.create("C").unwrap();
        i.call(o, "go", vec![]).unwrap();
        assert_eq!(i.middleware().log.len(), 1);
        assert_eq!(i.middleware().log.records()[0].message, "hello");
        assert_eq!(i.stats().intrinsic_calls, 1);
    }

    #[test]
    fn two_phase_abort_restores_state_across_nodes() {
        // Write to objects on two nodes in one tx with certain abort vote.
        let mut p = Program::new("t");
        let mut c = ClassDecl::new("Store");
        c.fields.push(FieldDecl::new("v", IrType::Int));
        let mut set = MethodDecl::new("set");
        set.params.push(Param::new("x", IrType::Int));
        set.body = Block::of(vec![Stmt::set_this_field("v", Expr::var("x"))]);
        c.methods.push(set);
        p.classes.push(c);
        let mut driver = ClassDecl::new("Driver");
        let mut m = MethodDecl::new("both");
        m.params.push(Param::new("a", IrType::Object("Store".into())));
        m.params.push(Param::new("b", IrType::Object("Store".into())));
        m.body = Block::of(vec![
            Stmt::Expr(Expr::intrinsic("tx.begin", vec![])),
            Stmt::Expr(Expr::call(Expr::var("a"), "set", vec![Expr::int(7)])),
            Stmt::Expr(Expr::call(Expr::var("b"), "set", vec![Expr::int(8)])),
            Stmt::Expr(Expr::intrinsic("tx.commit", vec![])),
        ]);
        driver.methods.push(m);
        p.classes.push(driver);

        let config =
            MiddlewareConfig { vote_abort_probability: 1.0, ..MiddlewareConfig::default() };
        let mut i = Interp::with_config(p, config);
        i.add_node("n1");
        i.add_node("n2");
        let a = i.create_on("Store", "n1").unwrap();
        let b = i.create_on("Store", "n2").unwrap();
        let d = i.create("Driver").unwrap();
        let err = i.call(d, "both", vec![a.clone(), b.clone()]).unwrap_err();
        assert!(matches!(err, InterpError::Thrown(Value::Str(s)) if s.contains("voted no")));
        assert_eq!(i.field(&a, "v").unwrap(), Value::Int(0));
        assert_eq!(i.field(&b, "v").unwrap(), Value::Int(0));
        assert_eq!(i.middleware().tx.stats().two_phase_aborts, 1);
    }

    #[test]
    fn unknown_intrinsic_and_bad_args() {
        let mut p = Program::new("t");
        let mut c = ClassDecl::new("C");
        let mut m = MethodDecl::new("bad");
        m.body = Block::of(vec![Stmt::Expr(Expr::intrinsic("warp.drive", vec![]))]);
        c.methods.push(m);
        let mut m2 = MethodDecl::new("badargs");
        m2.body = Block::of(vec![Stmt::Expr(Expr::intrinsic("sec.check", vec![Expr::int(3)]))]);
        c.methods.push(m2);
        p.classes.push(c);
        let mut i = Interp::new(p);
        let o = i.create("C").unwrap();
        assert!(matches!(i.call(o.clone(), "bad", vec![]), Err(InterpError::UnknownIntrinsic(_))));
        assert!(matches!(i.call(o, "badargs", vec![]), Err(InterpError::IntrinsicArgs(_))));
    }
}
