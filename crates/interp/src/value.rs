//! Runtime values of the interpreter.

use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Null reference.
    Null,
    /// Reference to a heap object by handle.
    Obj(u64),
    /// List of values.
    List(Vec<Value>),
}

impl Value {
    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "long",
            Value::Real(_) => "double",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "String",
            Value::Null => "null",
            Value::Obj(_) => "object",
            Value::List(_) => "List",
        }
    }

    /// Integer payload.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object handle payload.
    pub fn as_obj(&self) -> Option<u64> {
        match self {
            Value::Obj(h) => Some(*h),
            _ => None,
        }
    }

    /// Numeric payload widened to f64.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes, used to meter RPC payloads.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Value::Int(_) | Value::Real(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len() as u64,
            Value::Null => 1,
            Value::Obj(_) => 8,
            Value::List(items) => 4 + items.iter().map(Value::payload_bytes).sum::<u64>(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "null"),
            Value::Obj(h) => write!(f, "<obj {h}>"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Obj(9).as_obj(), Some(9));
        assert_eq!(Value::Real(1.5).as_number(), Some(1.5));
        assert_eq!(Value::Int(2).as_number(), Some(2.0));
        assert_eq!(Value::List(vec![Value::Int(1)]).to_string(), "[1]");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn payload_bytes_reasonable() {
        assert_eq!(Value::Int(1).payload_bytes(), 8);
        assert_eq!(Value::Str("abcd".into()).payload_bytes(), 4);
        assert_eq!(Value::List(vec![Value::Int(1), Value::Bool(true)]).payload_bytes(), 13);
    }
}
