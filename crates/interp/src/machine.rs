//! The interpreter core: heap, frames, statement/expression execution.

use crate::value::Value;
use comet_codegen::{Block, Expr, IrBinOp, IrType, IrUnOp, LValue, Literal, Program, Stmt};
use comet_middleware::{Middleware, MiddlewareConfig, UndoEntry};
use std::collections::BTreeMap;
use std::fmt;

/// Execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpStats {
    /// Method invocations (including helper/advice layers).
    pub calls: u64,
    /// Intrinsic invocations.
    pub intrinsic_calls: u64,
    /// Statements plus expressions evaluated.
    pub steps: u64,
}

/// Interpreter failures. [`InterpError::Thrown`] carries an IR-level
/// exception (catchable by `try/catch`); all other variants are hard
/// errors that propagate to the caller uncaught, like JVM linkage errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// An exception value thrown by IR code or the middleware bindings.
    Thrown(Value),
    /// `new X` or dispatch on an undeclared class.
    UnknownClass(String),
    /// Dispatch to an undeclared method.
    UnknownMethod {
        /// The class searched.
        class: String,
        /// The missing method.
        method: String,
    },
    /// Access to an undeclared field.
    UnknownField {
        /// The class searched.
        class: String,
        /// The missing field.
        field: String,
    },
    /// Reference to an unbound local.
    UnknownVariable(String),
    /// A non-object receiver where an object was required.
    NotAnObject(String),
    /// Operand/operation type mismatch.
    TypeError(String),
    /// Wrong argument count.
    Arity {
        /// The class.
        class: String,
        /// The method.
        method: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        found: usize,
    },
    /// The configured step budget was exhausted (runaway loop guard).
    StepBudgetExhausted(u64),
    /// An intrinsic name the runtime does not know.
    UnknownIntrinsic(String),
    /// Malformed intrinsic arguments.
    IntrinsicArgs(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Thrown(v) => write!(f, "uncaught exception: {v}"),
            InterpError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            InterpError::UnknownMethod { class, method } => {
                write!(f, "unknown method `{method}` on class `{class}`")
            }
            InterpError::UnknownField { class, field } => {
                write!(f, "unknown field `{field}` on class `{class}`")
            }
            InterpError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            InterpError::NotAnObject(ctx) => write!(f, "receiver is not an object in {ctx}"),
            InterpError::TypeError(m) => write!(f, "type error: {m}"),
            InterpError::Arity { class, method, expected, found } => {
                write!(f, "`{class}.{method}` expects {expected} argument(s), found {found}")
            }
            InterpError::StepBudgetExhausted(n) => {
                write!(f, "step budget of {n} exhausted (possible infinite loop)")
            }
            InterpError::UnknownIntrinsic(n) => write!(f, "unknown intrinsic `{n}`"),
            InterpError::IntrinsicArgs(m) => write!(f, "bad intrinsic arguments: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// A heap object.
#[derive(Debug, Clone)]
pub(crate) struct Object {
    pub(crate) class: String,
    pub(crate) fields: BTreeMap<String, Value>,
    pub(crate) node: String,
}

/// How a block finished.
pub(crate) enum Exit {
    /// Fell off the end.
    Fallthrough,
    /// `return` (value is `Null` for void returns).
    Return(Value),
}

pub(crate) struct Frame {
    pub(crate) this: Option<u64>,
    scopes: Vec<BTreeMap<String, Value>>,
}

impl Frame {
    fn new(this: Option<u64>) -> Self {
        Frame { this, scopes: vec![BTreeMap::new()] }
    }

    fn push_scope(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn define(&mut self, name: &str, value: Value) {
        self.scopes.last_mut().expect("frame always has a scope").insert(name.to_owned(), value);
    }

    fn get(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn set(&mut self, name: &str, value: Value) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return true;
            }
        }
        false
    }
}

/// The interpreter: a program, a heap, and the simulated middleware.
#[derive(Debug)]
pub struct Interp {
    program: Program,
    pub(crate) heap: BTreeMap<u64, Object>,
    next_handle: u64,
    middleware: Middleware<Value>,
    stats: InterpStats,
    step_budget: u64,
    call_trace: Option<Vec<String>>,
    call_depth: usize,
    pub(crate) cflow: BTreeMap<String, u64>,
    obs: comet_obs::Collector,
}

impl Interp {
    /// Creates an interpreter with default middleware configuration.
    pub fn new(program: Program) -> Self {
        Self::with_config(program, MiddlewareConfig::default())
    }

    /// Creates an interpreter with explicit middleware configuration.
    pub fn with_config(program: Program, config: MiddlewareConfig) -> Self {
        let mut middleware = Middleware::new(config);
        middleware.bus.add_node("local");
        Interp {
            program,
            heap: BTreeMap::new(),
            next_handle: 1,
            middleware,
            stats: InterpStats::default(),
            step_budget: 50_000_000,
            call_trace: None,
            call_depth: 0,
            cflow: BTreeMap::new(),
            obs: comet_obs::Collector::disabled(),
        }
    }

    /// Attaches a trace collector. The interpreter counts every
    /// intrinsic call per service prefix (`intrinsic.tx`,
    /// `intrinsic.sec`, ...) and the middleware's fault injector mirrors
    /// its log into the same trace. Disabled collectors cost one branch
    /// per intrinsic.
    pub fn set_collector(&mut self, obs: comet_obs::Collector) {
        self.middleware.attach_collector(obs.clone());
        self.obs = obs;
    }

    /// The attached collector (disabled unless [`Interp::set_collector`]
    /// was called) — callers use it to open runtime call spans around
    /// [`Interp::call`].
    pub fn collector(&self) -> &comet_obs::Collector {
        &self.obs
    }

    /// Starts recording a call trace: one `"<depth> Class.method"` line
    /// per method entry (weaver helpers included), until
    /// [`Interp::take_call_trace`] is called. Used to observe advice
    /// nesting at runtime.
    pub fn enable_call_trace(&mut self) {
        self.call_trace = Some(Vec::new());
    }

    /// Stops tracing and returns the recorded entries.
    pub fn take_call_trace(&mut self) -> Vec<String> {
        self.call_trace.take().unwrap_or_default()
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Immutable access to the middleware (stats, logs, audit).
    pub fn middleware(&self) -> &Middleware<Value> {
        &self.middleware
    }

    /// Mutable access to the middleware (principal setup, node admin).
    pub fn middleware_mut(&mut self) -> &mut Middleware<Value> {
        &mut self.middleware
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// Replaces the runaway-loop step budget (default 50M).
    pub fn set_step_budget(&mut self, steps: u64) {
        self.step_budget = steps;
    }

    /// Registers a simulation node.
    pub fn add_node(&mut self, name: &str) {
        self.middleware.bus.add_node(name);
    }

    /// Declares a principal and its roles.
    pub fn add_principal(&mut self, name: &str, roles: &[&str]) {
        self.middleware.security.add_principal(name, roles);
    }

    /// Logs a principal in (pushes the identity).
    ///
    /// # Errors
    /// Fails when the principal is unknown.
    pub fn login(&mut self, principal: &str) -> Result<(), InterpError> {
        self.middleware
            .security
            .login(principal)
            .map_err(|e| InterpError::Thrown(Value::Str(e.to_string())))
    }

    /// Logs the current principal out.
    pub fn logout(&mut self) {
        self.middleware.security.logout();
    }

    /// Instantiates `class` on the current node; returns the object value.
    ///
    /// # Errors
    /// Fails when the class is undeclared.
    pub fn create(&mut self, class: &str) -> Result<Value, InterpError> {
        let node = self.middleware.bus.current_node().to_owned();
        self.create_on(class, &node)
    }

    /// Instantiates `class` placed on `node`.
    ///
    /// # Errors
    /// Fails when the class is undeclared.
    pub fn create_on(&mut self, class: &str, node: &str) -> Result<Value, InterpError> {
        let decl = self
            .program
            .find_class(class)
            .ok_or_else(|| InterpError::UnknownClass(class.to_owned()))?;
        let mut fields = BTreeMap::new();
        for f in &decl.fields {
            fields.insert(f.name.clone(), default_of(&f.ty));
        }
        // Field initializers are constant expressions by construction.
        let inits: Vec<(String, Expr)> = decl
            .fields
            .iter()
            .filter_map(|f| f.init.clone().map(|e| (f.name.clone(), e)))
            .collect();
        let handle = self.next_handle;
        self.next_handle += 1;
        self.heap.insert(handle, Object { class: class.to_owned(), fields, node: node.to_owned() });
        let mut frame = Frame::new(None);
        for (name, init) in inits {
            let v = self.eval(&init, &mut frame)?;
            self.heap.get_mut(&handle).expect("just inserted").fields.insert(name, v);
        }
        Ok(Value::Obj(handle))
    }

    /// Reads a field of an object value.
    ///
    /// # Errors
    /// Fails on non-objects and unknown fields.
    pub fn field(&self, obj: &Value, field: &str) -> Result<Value, InterpError> {
        let handle = obj
            .as_obj()
            .ok_or_else(|| InterpError::NotAnObject(format!("field read `{field}`")))?;
        let o = self
            .heap
            .get(&handle)
            .ok_or_else(|| InterpError::NotAnObject(format!("dangling handle {handle}")))?;
        o.fields.get(field).cloned().ok_or_else(|| InterpError::UnknownField {
            class: o.class.clone(),
            field: field.to_owned(),
        })
    }

    /// Writes a field of an object value (bypasses transaction logging —
    /// test/bench setup only).
    ///
    /// # Errors
    /// Fails on non-objects and unknown classes.
    pub fn set_field(&mut self, obj: &Value, field: &str, value: Value) -> Result<(), InterpError> {
        let handle = obj
            .as_obj()
            .ok_or_else(|| InterpError::NotAnObject(format!("field write `{field}`")))?;
        let o = self
            .heap
            .get_mut(&handle)
            .ok_or_else(|| InterpError::NotAnObject(format!("dangling handle {handle}")))?;
        o.fields.insert(field.to_owned(), value);
        Ok(())
    }

    /// Invokes `method` on an object with `args`; the public entry point.
    ///
    /// # Errors
    /// [`InterpError::Thrown`] carries uncaught IR exceptions; other
    /// variants are hard faults.
    pub fn call(
        &mut self,
        obj: Value,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, InterpError> {
        let handle =
            obj.as_obj().ok_or_else(|| InterpError::NotAnObject(format!("call to `{method}`")))?;
        self.invoke(handle, method, args)
    }

    pub(crate) fn invoke(
        &mut self,
        handle: u64,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, InterpError> {
        let class_name = self
            .heap
            .get(&handle)
            .ok_or_else(|| InterpError::NotAnObject(format!("dangling handle {handle}")))?
            .class
            .clone();
        let decl = self
            .program
            .find_method(&class_name, method)
            .ok_or_else(|| InterpError::UnknownMethod {
                class: class_name.clone(),
                method: method.to_owned(),
            })?
            .clone();
        if decl.params.len() != args.len() {
            return Err(InterpError::Arity {
                class: class_name,
                method: method.to_owned(),
                expected: decl.params.len(),
                found: args.len(),
            });
        }
        self.stats.calls += 1;
        if let Some(trace) = &mut self.call_trace {
            trace.push(format!("{} {}.{}", self.call_depth, class_name, method));
        }
        self.call_depth += 1;
        let mut frame = Frame::new(Some(handle));
        for (p, a) in decl.params.iter().zip(args) {
            frame.define(&p.name, a);
        }
        let outcome = self.exec_block(&decl.body, &mut frame);
        self.call_depth -= 1;
        match outcome? {
            Exit::Return(v) => Ok(v),
            Exit::Fallthrough => Ok(Value::Null),
        }
    }

    fn step(&mut self) -> Result<(), InterpError> {
        self.stats.steps += 1;
        if self.stats.steps > self.step_budget {
            Err(InterpError::StepBudgetExhausted(self.step_budget))
        } else {
            Ok(())
        }
    }

    pub(crate) fn exec_block(
        &mut self,
        block: &Block,
        frame: &mut Frame,
    ) -> Result<Exit, InterpError> {
        for stmt in &block.stmts {
            if let Exit::Return(v) = self.exec_stmt(stmt, frame)? {
                return Ok(Exit::Return(v));
            }
        }
        Ok(Exit::Fallthrough)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<Exit, InterpError> {
        self.step()?;
        match stmt {
            Stmt::Local { name, ty, init } => {
                let v = match init {
                    Some(e) => self.eval(e, frame)?,
                    None => default_of(ty),
                };
                frame.define(name, v);
                Ok(Exit::Fallthrough)
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(value, frame)?;
                match target {
                    LValue::Var(name) => {
                        if !frame.set(name, v) {
                            return Err(InterpError::UnknownVariable(name.clone()));
                        }
                    }
                    LValue::Field { recv, name } => {
                        let r = self.eval(recv, frame)?;
                        self.write_field(&r, name, v)?;
                    }
                }
                Ok(Exit::Fallthrough)
            }
            Stmt::Expr(e) => {
                self.eval(e, frame)?;
                Ok(Exit::Fallthrough)
            }
            Stmt::If { cond, then_block, else_block } => {
                let c = self.truthy(cond, frame)?;
                frame.push_scope();
                let exit = if c {
                    self.exec_block(then_block, frame)
                } else if let Some(eb) = else_block {
                    self.exec_block(eb, frame)
                } else {
                    Ok(Exit::Fallthrough)
                };
                frame.pop_scope();
                exit
            }
            Stmt::While { cond, body } => {
                loop {
                    self.step()?;
                    if !self.truthy(cond, frame)? {
                        break;
                    }
                    frame.push_scope();
                    let exit = self.exec_block(body, frame);
                    frame.pop_scope();
                    if let Exit::Return(v) = exit? {
                        return Ok(Exit::Return(v));
                    }
                }
                Ok(Exit::Fallthrough)
            }
            Stmt::Return(v) => {
                let value = match v {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Null,
                };
                Ok(Exit::Return(value))
            }
            Stmt::Throw(e) => {
                let v = self.eval(e, frame)?;
                Err(InterpError::Thrown(v))
            }
            Stmt::TryCatch { body, var, handler, finally } => {
                frame.push_scope();
                let body_outcome = self.exec_block(body, frame);
                frame.pop_scope();
                let after_handler = match body_outcome {
                    Err(InterpError::Thrown(exn)) => {
                        frame.push_scope();
                        frame.define(var, exn);
                        let h = self.exec_block(handler, frame);
                        frame.pop_scope();
                        h
                    }
                    other => other,
                };
                if let Some(fin) = finally {
                    frame.push_scope();
                    let fin_outcome = self.exec_block(fin, frame);
                    frame.pop_scope();
                    match fin_outcome {
                        // finally overrides with its own return/exception.
                        Ok(Exit::Return(v)) => return Ok(Exit::Return(v)),
                        Err(e) => return Err(e),
                        Ok(Exit::Fallthrough) => {}
                    }
                }
                after_handler
            }
            Stmt::Block(b) => {
                frame.push_scope();
                let exit = self.exec_block(b, frame);
                frame.pop_scope();
                exit
            }
        }
    }

    fn truthy(&mut self, cond: &Expr, frame: &mut Frame) -> Result<bool, InterpError> {
        let v = self.eval(cond, frame)?;
        v.as_bool().ok_or_else(|| {
            InterpError::TypeError(format!("condition must be boolean, got {}", v.type_name()))
        })
    }

    /// Writes `recv.field = value`, logging the pre-image into the active
    /// transaction and registering the object's node as a participant.
    pub(crate) fn write_field(
        &mut self,
        recv: &Value,
        field: &str,
        value: Value,
    ) -> Result<(), InterpError> {
        let handle = recv
            .as_obj()
            .ok_or_else(|| InterpError::NotAnObject(format!("field write `{field}`")))?;
        let (old, node, class) = {
            let o = self
                .heap
                .get(&handle)
                .ok_or_else(|| InterpError::NotAnObject(format!("dangling handle {handle}")))?;
            let old = o.fields.get(field).cloned().ok_or_else(|| InterpError::UnknownField {
                class: o.class.clone(),
                field: field.to_owned(),
            })?;
            (old, o.node.clone(), o.class.clone())
        };
        let _ = class;
        if let Some(tx) = self.middleware.tx.current() {
            self.middleware
                .tx
                .log_write(tx, handle, field, old)
                .map_err(|e| InterpError::Thrown(Value::Str(e.to_string())))?;
            self.middleware
                .tx
                .touch_node(tx, &node)
                .map_err(|e| InterpError::Thrown(Value::Str(e.to_string())))?;
        }
        self.heap.get_mut(&handle).expect("checked above").fields.insert(field.to_owned(), value);
        Ok(())
    }

    /// Serializes an object's fields into a store snapshot: a list of
    /// `[class, [field, value], ...]`. Field values that are themselves
    /// object references are stored as references (handles); deep
    /// persistence is the application's responsibility.
    pub(crate) fn snapshot_object(&self, handle: u64) -> Result<Value, InterpError> {
        let o = self
            .heap
            .get(&handle)
            .ok_or_else(|| InterpError::NotAnObject(format!("dangling handle {handle}")))?;
        let mut items = vec![Value::Str(o.class.clone())];
        for (field, value) in &o.fields {
            items.push(Value::List(vec![Value::Str(field.clone()), value.clone()]));
        }
        Ok(Value::List(items))
    }

    /// Restores a snapshot produced by [`Interp::snapshot_object`] into
    /// the object's fields (transaction logging applies, so a rollback
    /// undoes a restore too).
    pub(crate) fn restore_object(
        &mut self,
        handle: u64,
        snapshot: &Value,
    ) -> Result<(), InterpError> {
        let Value::List(items) = snapshot else {
            return Err(InterpError::TypeError("malformed store snapshot".into()));
        };
        for item in items.iter().skip(1) {
            let Value::List(pair) = item else {
                return Err(InterpError::TypeError("malformed snapshot entry".into()));
            };
            let (Some(Value::Str(field)), Some(value)) = (pair.first(), pair.get(1)) else {
                return Err(InterpError::TypeError("malformed snapshot pair".into()));
            };
            self.write_field(&Value::Obj(handle), field, value.clone())?;
        }
        Ok(())
    }

    pub(crate) fn apply_undo(&mut self, entries: Vec<UndoEntry<Value>>) {
        for e in entries {
            if let Some(o) = self.heap.get_mut(&e.object) {
                o.fields.insert(e.field, e.old);
            }
        }
    }

    pub(crate) fn eval(&mut self, expr: &Expr, frame: &mut Frame) -> Result<Value, InterpError> {
        self.step()?;
        match expr {
            Expr::Lit(l) => Ok(match l {
                Literal::Int(i) => Value::Int(*i),
                Literal::Real(r) => Value::Real(*r),
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Str(s) => Value::Str(s.clone()),
                Literal::Null => Value::Null,
            }),
            Expr::Var(name) => {
                frame.get(name).cloned().ok_or_else(|| InterpError::UnknownVariable(name.clone()))
            }
            Expr::This => frame
                .this
                .map(Value::Obj)
                .ok_or_else(|| InterpError::NotAnObject("`this` in static context".into())),
            Expr::Field { recv, name } => {
                let r = self.eval(recv, frame)?;
                self.field(&r, name)
            }
            Expr::Call { recv, method, args } => {
                let target = match recv {
                    Some(r) => self.eval(r, frame)?,
                    None => frame
                        .this
                        .map(Value::Obj)
                        .ok_or_else(|| InterpError::NotAnObject("self-call without this".into()))?,
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, frame)?);
                }
                let handle = target
                    .as_obj()
                    .ok_or_else(|| InterpError::NotAnObject(format!("call to `{method}`")))?;
                self.invoke(handle, method, argv)
            }
            Expr::New { class, args } => {
                let obj = self.create(class)?;
                // Positional field initialization in declaration order.
                let field_names: Vec<String> = self
                    .program
                    .find_class(class)
                    .map(|c| c.fields.iter().map(|f| f.name.clone()).collect())
                    .unwrap_or_default();
                for (i, a) in args.iter().enumerate() {
                    let v = self.eval(a, frame)?;
                    let Some(fname) = field_names.get(i) else {
                        return Err(InterpError::TypeError(format!(
                            "constructor of `{class}` takes at most {} argument(s)",
                            field_names.len()
                        )));
                    };
                    self.set_field(&obj, fname, v)?;
                }
                Ok(obj)
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit booleans.
                if matches!(op, IrBinOp::And | IrBinOp::Or) {
                    let l = self.eval(lhs, frame)?;
                    let lb = l.as_bool().ok_or_else(|| {
                        InterpError::TypeError(format!(
                            "`&&`/`||` needs boolean, got {}",
                            l.type_name()
                        ))
                    })?;
                    return match (op, lb) {
                        (IrBinOp::And, false) => Ok(Value::Bool(false)),
                        (IrBinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let r = self.eval(rhs, frame)?;
                            r.as_bool().map(Value::Bool).ok_or_else(|| {
                                InterpError::TypeError(format!(
                                    "`&&`/`||` needs boolean, got {}",
                                    r.type_name()
                                ))
                            })
                        }
                    };
                }
                let l = self.eval(lhs, frame)?;
                let r = self.eval(rhs, frame)?;
                binary_op(*op, l, r)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, frame)?;
                match op {
                    IrUnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Real(r) => Ok(Value::Real(-r)),
                        other => Err(InterpError::TypeError(format!(
                            "cannot negate {}",
                            other.type_name()
                        ))),
                    },
                    IrUnOp::Not => v.as_bool().map(|b| Value::Bool(!b)).ok_or_else(|| {
                        InterpError::TypeError(format!("cannot `!` {}", v.type_name()))
                    }),
                }
            }
            Expr::Intrinsic { name, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, frame)?);
                }
                self.stats.intrinsic_calls += 1;
                if self.obs.is_enabled() {
                    // Static keys for the standard prefixes keep the
                    // enabled hot path allocation-free.
                    match name.split('.').next().unwrap_or(name) {
                        "tx" => self.obs.incr("intrinsic.tx", 1),
                        "sec" => self.obs.incr("intrinsic.sec", 1),
                        "net" => self.obs.incr("intrinsic.net", 1),
                        "log" => self.obs.incr("intrinsic.log", 1),
                        "lock" => self.obs.incr("intrinsic.lock", 1),
                        "cflow" => self.obs.incr("intrinsic.cflow", 1),
                        "store" => self.obs.incr("intrinsic.store", 1),
                        "ft" => self.obs.incr("intrinsic.ft", 1),
                        other => self.obs.incr(&format!("intrinsic.{other}"), 1),
                    }
                }
                self.call_intrinsic(name, argv, frame.this)
            }
            Expr::Proceed(_) => Err(InterpError::TypeError(
                "`proceed` escaped weaving; run the weaver before executing".into(),
            )),
            Expr::ListLit(items) => {
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(self.eval(i, frame)?);
                }
                Ok(Value::List(out))
            }
        }
    }
}

fn default_of(ty: &IrType) -> Value {
    match ty {
        IrType::Int => Value::Int(0),
        IrType::Real => Value::Real(0.0),
        IrType::Bool => Value::Bool(false),
        IrType::Str => Value::Str(String::new()),
        IrType::Void | IrType::Object(_) => Value::Null,
        IrType::List(_) => Value::List(Vec::new()),
    }
}

fn binary_op(op: IrBinOp, l: Value, r: Value) -> Result<Value, InterpError> {
    use IrBinOp::*;
    match op {
        Eq => return Ok(Value::Bool(l == r)),
        Ne => return Ok(Value::Bool(l != r)),
        _ => {}
    }
    // String concatenation via `+`.
    if op == Add {
        if let (Value::Str(a), b) = (&l, &r) {
            return Ok(Value::Str(format!("{a}{b}")));
        }
        if let (a, Value::Str(b)) = (&l, &r) {
            return Ok(Value::Str(format!("{a}{b}")));
        }
    }
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            Ok(match op {
                Add => Value::Int(a.wrapping_add(b)),
                Sub => Value::Int(a.wrapping_sub(b)),
                Mul => Value::Int(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err(InterpError::Thrown(Value::Str("division by zero".into())));
                    }
                    Value::Int(a / b)
                }
                Rem => {
                    if b == 0 {
                        return Err(InterpError::Thrown(Value::Str("division by zero".into())));
                    }
                    Value::Int(a % b)
                }
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                Gt => Value::Bool(a > b),
                Ge => Value::Bool(a >= b),
                _ => return Err(InterpError::TypeError(format!("bad int op {op:?}"))),
            })
        }
        (Value::Str(a), Value::Str(b)) => Ok(match op {
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            _ => {
                return Err(InterpError::TypeError(format!(
                    "operator {:?} not defined on strings",
                    op
                )))
            }
        }),
        _ => {
            let (a, b) = match (l.as_number(), r.as_number()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(InterpError::TypeError(format!(
                        "operator {:?} not defined on {} and {}",
                        op,
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            Ok(match op {
                Add => Value::Real(a + b),
                Sub => Value::Real(a - b),
                Mul => Value::Real(a * b),
                Div => {
                    if b == 0.0 {
                        return Err(InterpError::Thrown(Value::Str("division by zero".into())));
                    }
                    Value::Real(a / b)
                }
                Rem => Value::Real(a % b),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                Gt => Value::Bool(a > b),
                Ge => Value::Bool(a >= b),
                _ => return Err(InterpError::TypeError(format!("bad real op {op:?}"))),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_codegen::{ClassDecl, FieldDecl, MethodDecl, Param};

    fn program_one_class(methods: Vec<MethodDecl>, fields: Vec<FieldDecl>) -> Program {
        let mut p = Program::new("t");
        let mut c = ClassDecl::new("T");
        c.fields = fields;
        c.methods = methods;
        p.classes.push(c);
        p
    }

    fn method(name: &str, params: Vec<Param>, ret: IrType, body: Vec<Stmt>) -> MethodDecl {
        let mut m = MethodDecl::new(name);
        m.params = params;
        m.ret = ret;
        m.body = Block::of(body);
        m
    }

    #[test]
    fn intrinsic_counters_accumulate_per_prefix() {
        let p = program_one_class(
            vec![method(
                "f",
                vec![],
                IrType::Void,
                vec![
                    Stmt::Expr(Expr::intrinsic(
                        "log.emit",
                        vec![Expr::str("info"), Expr::str("x")],
                    )),
                    Stmt::Expr(Expr::intrinsic(
                        "log.emit",
                        vec![Expr::str("info"), Expr::str("y")],
                    )),
                    Stmt::Expr(Expr::intrinsic("net.is_local", vec![Expr::str("local")])),
                ],
            )],
            vec![],
        );
        let mut i = Interp::new(p);
        let obs = comet_obs::Collector::enabled();
        i.set_collector(obs.clone());
        let o = i.create("T").unwrap();
        i.call(o, "f", vec![]).unwrap();
        let trace = obs.take();
        assert_eq!(trace.counters["intrinsic.log"], 2);
        assert_eq!(trace.counters["intrinsic.net"], 1);
        assert_eq!(
            trace.counters.values().sum::<u64>(),
            i.stats().intrinsic_calls,
            "prefix counters partition the total intrinsic count"
        );
    }

    #[test]
    fn arithmetic_and_locals() {
        let p = program_one_class(
            vec![method(
                "f",
                vec![Param::new("x", IrType::Int)],
                IrType::Int,
                vec![
                    Stmt::local(
                        "y",
                        IrType::Int,
                        Expr::binary(IrBinOp::Mul, Expr::var("x"), Expr::int(3)),
                    ),
                    Stmt::set_var("y", Expr::binary(IrBinOp::Add, Expr::var("y"), Expr::int(1))),
                    Stmt::ret(Expr::var("y")),
                ],
            )],
            vec![],
        );
        let mut i = Interp::new(p);
        let o = i.create("T").unwrap();
        assert_eq!(i.call(o, "f", vec![Value::Int(5)]).unwrap(), Value::Int(16));
        assert!(i.stats().calls == 1 && i.stats().steps > 0);
    }

    #[test]
    fn fields_and_methods() {
        let p = program_one_class(
            vec![
                method(
                    "bump",
                    vec![],
                    IrType::Void,
                    vec![Stmt::set_this_field(
                        "n",
                        Expr::binary(IrBinOp::Add, Expr::this_field("n"), Expr::int(1)),
                    )],
                ),
                method(
                    "twice",
                    vec![],
                    IrType::Void,
                    vec![
                        Stmt::Expr(Expr::call_this("bump", vec![])),
                        Stmt::Expr(Expr::call_this("bump", vec![])),
                    ],
                ),
            ],
            vec![FieldDecl::new("n", IrType::Int)],
        );
        let mut i = Interp::new(p);
        let o = i.create("T").unwrap();
        i.call(o.clone(), "twice", vec![]).unwrap();
        assert_eq!(i.field(&o, "n").unwrap(), Value::Int(2));
    }

    #[test]
    fn control_flow_if_while() {
        let p = program_one_class(
            vec![method(
                "sum_to",
                vec![Param::new("n", IrType::Int)],
                IrType::Int,
                vec![
                    Stmt::local("acc", IrType::Int, Expr::int(0)),
                    Stmt::local("i", IrType::Int, Expr::int(0)),
                    Stmt::While {
                        cond: Expr::binary(IrBinOp::Le, Expr::var("i"), Expr::var("n")),
                        body: Block::of(vec![
                            Stmt::set_var(
                                "acc",
                                Expr::binary(IrBinOp::Add, Expr::var("acc"), Expr::var("i")),
                            ),
                            Stmt::set_var(
                                "i",
                                Expr::binary(IrBinOp::Add, Expr::var("i"), Expr::int(1)),
                            ),
                        ]),
                    },
                    Stmt::If {
                        cond: Expr::binary(IrBinOp::Gt, Expr::var("acc"), Expr::int(100)),
                        then_block: Block::of(vec![Stmt::ret(Expr::int(-1))]),
                        else_block: Some(Block::of(vec![Stmt::ret(Expr::var("acc"))])),
                    },
                ],
            )],
            vec![],
        );
        let mut i = Interp::new(p);
        let o = i.create("T").unwrap();
        assert_eq!(i.call(o.clone(), "sum_to", vec![Value::Int(4)]).unwrap(), Value::Int(10));
        assert_eq!(i.call(o, "sum_to", vec![Value::Int(100)]).unwrap(), Value::Int(-1));
    }

    #[test]
    fn try_catch_finally_on_throw_return_and_fallthrough() {
        // f(mode): try { if mode==1 throw "boom"; if mode==2 return 2; }
        //          catch e { this.caught = 1 } finally { this.fin = this.fin + 1 }
        //          return 0
        let body = vec![
            Stmt::TryCatch {
                body: Block::of(vec![
                    Stmt::If {
                        cond: Expr::binary(IrBinOp::Eq, Expr::var("mode"), Expr::int(1)),
                        then_block: Block::of(vec![Stmt::Throw(Expr::str("boom"))]),
                        else_block: None,
                    },
                    Stmt::If {
                        cond: Expr::binary(IrBinOp::Eq, Expr::var("mode"), Expr::int(2)),
                        then_block: Block::of(vec![Stmt::ret(Expr::int(2))]),
                        else_block: None,
                    },
                ]),
                var: "e".into(),
                handler: Block::of(vec![Stmt::set_this_field("caught", Expr::int(1))]),
                finally: Some(Block::of(vec![Stmt::set_this_field(
                    "fin",
                    Expr::binary(IrBinOp::Add, Expr::this_field("fin"), Expr::int(1)),
                )])),
            },
            Stmt::ret(Expr::int(0)),
        ];
        let p = program_one_class(
            vec![method("f", vec![Param::new("mode", IrType::Int)], IrType::Int, body)],
            vec![FieldDecl::new("caught", IrType::Int), FieldDecl::new("fin", IrType::Int)],
        );
        let mut i = Interp::new(p);
        let o = i.create("T").unwrap();
        // Fallthrough: finally runs.
        assert_eq!(i.call(o.clone(), "f", vec![Value::Int(0)]).unwrap(), Value::Int(0));
        assert_eq!(i.field(&o, "fin").unwrap(), Value::Int(1));
        // Throw: caught, finally runs, method returns 0.
        assert_eq!(i.call(o.clone(), "f", vec![Value::Int(1)]).unwrap(), Value::Int(0));
        assert_eq!(i.field(&o, "caught").unwrap(), Value::Int(1));
        assert_eq!(i.field(&o, "fin").unwrap(), Value::Int(2));
        // Return inside try: finally still runs, return value preserved.
        assert_eq!(i.call(o.clone(), "f", vec![Value::Int(2)]).unwrap(), Value::Int(2));
        assert_eq!(i.field(&o, "fin").unwrap(), Value::Int(3));
    }

    #[test]
    fn uncaught_exception_propagates() {
        let p = program_one_class(
            vec![method("f", vec![], IrType::Void, vec![Stmt::Throw(Expr::str("oops"))])],
            vec![],
        );
        let mut i = Interp::new(p);
        let o = i.create("T").unwrap();
        assert_eq!(
            i.call(o, "f", vec![]).unwrap_err(),
            InterpError::Thrown(Value::Str("oops".into()))
        );
    }

    #[test]
    fn division_by_zero_is_catchable() {
        let p = program_one_class(
            vec![method(
                "f",
                vec![],
                IrType::Int,
                vec![Stmt::TryCatch {
                    body: Block::of(vec![Stmt::ret(Expr::binary(
                        IrBinOp::Div,
                        Expr::int(1),
                        Expr::int(0),
                    ))]),
                    var: "e".into(),
                    handler: Block::of(vec![Stmt::ret(Expr::int(-1))]),
                    finally: None,
                }],
            )],
            vec![],
        );
        let mut i = Interp::new(p);
        let o = i.create("T").unwrap();
        assert_eq!(i.call(o, "f", vec![]).unwrap(), Value::Int(-1));
    }

    #[test]
    fn new_with_positional_args() {
        let mut p = program_one_class(vec![], vec![]);
        let mut acc = ClassDecl::new("Acc");
        acc.fields.push(FieldDecl::new("id", IrType::Str));
        acc.fields.push(FieldDecl::new("balance", IrType::Int));
        p.classes.push(acc);
        let mut maker = MethodDecl::new("make");
        maker.ret = IrType::Object("Acc".into());
        maker.body = Block::of(vec![Stmt::ret(Expr::New {
            class: "Acc".into(),
            args: vec![Expr::str("a-1"), Expr::int(100)],
        })]);
        p.classes[0].methods.push(maker);
        let mut i = Interp::new(p);
        let t = i.create("T").unwrap();
        let acc = i.call(t, "make", vec![]).unwrap();
        assert_eq!(i.field(&acc, "id").unwrap(), Value::Str("a-1".into()));
        assert_eq!(i.field(&acc, "balance").unwrap(), Value::Int(100));
    }

    #[test]
    fn step_budget_stops_infinite_loop() {
        let p = program_one_class(
            vec![method(
                "spin",
                vec![],
                IrType::Void,
                vec![Stmt::While { cond: Expr::bool(true), body: Block::default() }],
            )],
            vec![],
        );
        let mut i = Interp::new(p);
        i.set_step_budget(10_000);
        let o = i.create("T").unwrap();
        assert!(matches!(i.call(o, "spin", vec![]), Err(InterpError::StepBudgetExhausted(_))));
    }

    #[test]
    fn errors_for_unknown_things() {
        let p = program_one_class(vec![], vec![]);
        let mut i = Interp::new(p);
        assert!(matches!(i.create("Ghost"), Err(InterpError::UnknownClass(_))));
        let o = i.create("T").unwrap();
        assert!(matches!(
            i.call(o.clone(), "nope", vec![]),
            Err(InterpError::UnknownMethod { .. })
        ));
        assert!(matches!(i.field(&o, "nope"), Err(InterpError::UnknownField { .. })));
        assert!(matches!(i.call(Value::Int(1), "m", vec![]), Err(InterpError::NotAnObject(_))));
    }

    #[test]
    fn arity_checked() {
        let p = program_one_class(
            vec![method("f", vec![Param::new("x", IrType::Int)], IrType::Void, vec![])],
            vec![],
        );
        let mut i = Interp::new(p);
        let o = i.create("T").unwrap();
        assert!(matches!(
            i.call(o, "f", vec![]),
            Err(InterpError::Arity { expected: 1, found: 0, .. })
        ));
    }

    #[test]
    fn string_concat_and_comparison() {
        let p = program_one_class(
            vec![method(
                "f",
                vec![],
                IrType::Str,
                vec![Stmt::ret(Expr::binary(
                    IrBinOp::Add,
                    Expr::str("a"),
                    Expr::binary(IrBinOp::Add, Expr::int(1), Expr::str("b")),
                ))],
            )],
            vec![],
        );
        let mut i = Interp::new(p);
        let o = i.create("T").unwrap();
        assert_eq!(i.call(o, "f", vec![]).unwrap(), Value::Str("a1b".into()));
    }
}
