//! # comet-interp — executing generated (and woven) programs
//!
//! The paper assumes a JVM underneath AspectJ; this crate is the COMET
//! equivalent: a deterministic tree-walking interpreter for the
//! `comet-codegen` IR whose [`Expr::Intrinsic`](comet_codegen::Expr)
//! calls are bound to the simulated middleware (`comet-middleware`).
//! It is what makes woven concerns *observable*: a transactional aspect
//! really rolls fields back, a security aspect really denies calls, a
//! distribution aspect really moves execution between simulated nodes.
//!
//! ## Semantics highlights
//!
//! * `try/catch/finally` runs the finally block on normal completion,
//!   on `return`-unwinding and on exception-unwinding (required by the
//!   weaver's after-advice encoding).
//! * Field writes are logged to the active transaction (pre-image,
//!   first-write-wins) so `tx.rollback` restores object state; writes
//!   also register the object's node as a 2PC participant.
//! * `net.call` performs a simulated RPC: request message, execution
//!   switches to the target node, the registered object's method runs
//!   there, a response message returns — all metered by the bus.
//! * Middleware failures (access denied, 2PC abort, lock conflicts)
//!   surface as IR-level exceptions, catchable by `try/catch`.
//!
//! ## Example
//!
//! ```
//! use comet_codegen::{Block, ClassDecl, Expr, IrBinOp, IrType, MethodDecl, Param, Program, Stmt};
//! use comet_interp::{Interp, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = Program::new("demo");
//! let mut c = ClassDecl::new("Calc");
//! let mut m = MethodDecl::new("double");
//! m.params.push(Param::new("x", IrType::Int));
//! m.ret = IrType::Int;
//! m.body = Block::of(vec![Stmt::ret(Expr::binary(
//!     IrBinOp::Mul,
//!     Expr::var("x"),
//!     Expr::int(2),
//! ))]);
//! c.methods.push(m);
//! program.classes.push(c);
//!
//! let mut interp = Interp::new(program);
//! let calc = interp.create("Calc")?;
//! assert_eq!(interp.call(calc, "double", vec![Value::Int(21)])?, Value::Int(42));
//! # Ok(())
//! # }
//! ```

mod intrinsics;
mod machine;
mod value;

pub use machine::{Interp, InterpError, InterpStats};
pub use value::Value;
