//! Property tests for the OCL-like language: pretty-print/reparse over
//! randomly generated ASTs, evaluation determinism, and collection-law
//! checks over model-derived collections.

use comet_ocl::{evaluate, parse, Context, Expr, Value};
use proptest::prelude::*;

/// A random *well-formed* expression tree (boolean-typed leaves kept
/// separate from numeric ones so evaluation also succeeds often).
fn arb_expr() -> impl Strategy<Value = Expr> {
    // Int leaves are non-negative: the lexer has no negative literals
    // (`-1` parses as `Neg(1)`), and Neg nodes cover negatives anyway.
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        "[a-z ]{0,8}".prop_map(Expr::Str),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary {
                op: comet_ocl::BinOp::Add,
                lhs: Box::new(a),
                rhs: Box::new(b),
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary {
                op: comet_ocl::BinOp::Eq,
                lhs: Box::new(a),
                rhs: Box::new(b),
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::If {
                cond: Box::new(c),
                then_branch: Box::new(t),
                else_branch: Box::new(e),
            }),
            ("v[a-z]{0,4}", inner.clone(), inner.clone()).prop_map(|(v, val, body)| Expr::Let {
                var: v,
                value: Box::new(val),
                body: Box::new(body),
            }),
            inner
                .clone()
                .prop_map(|e| Expr::Unary { op: comet_ocl::UnOp::Neg, operand: Box::new(e) }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pretty_print_reparses_to_same_ast(expr in arb_expr()) {
        let printed = expr.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("`{printed}` failed to reparse: {e}"));
        prop_assert_eq!(expr, reparsed);
    }

    #[test]
    fn evaluation_is_deterministic(expr in arb_expr()) {
        let m = comet_model::Model::new("m");
        let ctx = Context::for_model(&m);
        let r1 = comet_ocl::evaluate(&expr.to_string(), &ctx);
        let r2 = comet_ocl::evaluate(&expr.to_string(), &ctx);
        prop_assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }

    #[test]
    fn integer_arithmetic_matches_i64(a in -1000i64..1000, b in -1000i64..1000, c in 1i64..100) {
        let m = comet_model::Model::new("m");
        let ctx = Context::for_model(&m);
        let src = format!("({a} + {b}) * {c} - {a}");
        let v = evaluate(&src, &ctx).expect("valid arithmetic");
        prop_assert_eq!(v, Value::Int((a + b) * c - a));
    }

    #[test]
    fn comparison_trichotomy(a in -100i64..100, b in -100i64..100) {
        let m = comet_model::Model::new("m");
        let ctx = Context::for_model(&m);
        let lt = evaluate(&format!("{a} < {b}"), &ctx).expect("valid");
        let eq = evaluate(&format!("{a} = {b}"), &ctx).expect("valid");
        let gt = evaluate(&format!("{a} > {b}"), &ctx).expect("valid");
        let truths = [lt, eq, gt]
            .iter()
            .filter(|v| **v == Value::Bool(true))
            .count();
        prop_assert_eq!(truths, 1);
    }

    #[test]
    fn select_reject_partition(classes in 1usize..20) {
        // select(p) ++ reject(p) is a permutation of the whole collection.
        let model = comet_model::sample::synthetic(classes, 1, 1);
        let ctx = Context::for_model(&model);
        let selected = evaluate(
            "Class.allInstances()->select(c | c.attributes->notEmpty())->size()",
            &ctx,
        )
        .expect("valid");
        let rejected = evaluate(
            "Class.allInstances()->reject(c | c.attributes->notEmpty())->size()",
            &ctx,
        )
        .expect("valid");
        let total = evaluate("Class.allInstances()->size()", &ctx).expect("valid");
        let (Value::Int(s), Value::Int(r), Value::Int(t)) = (selected, rejected, total) else {
            panic!("sizes are integers");
        };
        prop_assert_eq!(s + r, t);
    }

    #[test]
    fn forall_is_negation_of_exists_not(classes in 1usize..20) {
        let model = comet_model::sample::synthetic(classes, 2, 1);
        let ctx = Context::for_model(&model);
        let forall = evaluate(
            "Class.allInstances()->forAll(c | c.attributes->size() = 2)",
            &ctx,
        )
        .expect("valid");
        let not_exists_not = evaluate(
            "not Class.allInstances()->exists(c | not (c.attributes->size() = 2))",
            &ctx,
        )
        .expect("valid");
        prop_assert_eq!(forall, not_exists_not);
    }

    #[test]
    fn including_grows_size_by_one(classes in 1usize..15, x in -50i64..50) {
        let model = comet_model::sample::synthetic(classes, 1, 0);
        let ctx = Context::for_model(&model);
        let grown = evaluate(
            &format!("Class.allInstances()->collect(c | 1)->including({x})->size()"),
            &ctx,
        )
        .expect("valid");
        prop_assert_eq!(grown, Value::Int(classes as i64 + 1));
    }
}
