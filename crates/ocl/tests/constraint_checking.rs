//! Tests for [`comet_ocl::check_model_constraints`]: attached model
//! constraints are evaluated against their constrained element.

use comet_model::Model;
use comet_ocl::{check_model_constraints, ConstraintOutcome};

#[test]
fn metamodel_level_constraints_are_decided() {
    let mut m = Model::new("m");
    let a = m.add_class(m.root(), "A").unwrap();
    m.add_operation(a, "f").unwrap();
    m.add_constraint(a, "hasOps", "self.operations->notEmpty()").unwrap();
    m.add_constraint(a, "isAbstractCheck", "self.isAbstract").unwrap();
    let results = check_model_constraints(&m);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].1, "hasOps");
    assert_eq!(results[0].2, ConstraintOutcome::Holds);
    assert_eq!(results[1].2, ConstraintOutcome::Violated);
}

#[test]
fn instance_level_constraints_are_undecidable_with_reason() {
    let m = comet_model::sample::banking_pim();
    let results = check_model_constraints(&m);
    // The banking sample carries `self.balance >= 0` on Account — an
    // instance-level invariant with no model-level slot.
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1, "nonNegativeBalance");
    match &results[0].2 {
        ConstraintOutcome::Undecidable(reason) => {
            assert!(reason.contains("balance"), "{reason}");
        }
        other => panic!("expected undecidable, got {other:?}"),
    }
}

#[test]
fn non_boolean_constraints_are_flagged() {
    let mut m = Model::new("m");
    let a = m.add_class(m.root(), "A").unwrap();
    m.add_constraint(a, "oops", "self.name").unwrap();
    let results = check_model_constraints(&m);
    match &results[0].2 {
        ConstraintOutcome::Undecidable(reason) => assert!(reason.contains("String")),
        other => panic!("expected undecidable, got {other:?}"),
    }
}

#[test]
fn constraint_free_model_yields_empty_report() {
    let m = Model::new("empty");
    assert!(check_model_constraints(&m).is_empty());
}
