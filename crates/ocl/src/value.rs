//! Runtime values of the OCL-like language.

use comet_model::ElementId;
use std::fmt;

/// A value produced by evaluating an OCL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// A model element.
    Element(ElementId),
    /// An ordered collection.
    Collection(Vec<Value>),
    /// `OclUndefined`: the result of navigating something absent.
    Undefined,
}

impl Value {
    /// OCL-facing type name used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "Integer",
            Value::Real(_) => "Real",
            Value::Bool(_) => "Boolean",
            Value::Str(_) => "String",
            Value::Element(_) => "Element",
            Value::Collection(_) => "Collection",
            Value::Undefined => "OclUndefined",
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element payload, if this is an element.
    pub fn as_element(&self) -> Option<ElementId> {
        match self {
            Value::Element(id) => Some(*id),
            _ => None,
        }
    }

    /// Collection payload, if this is a collection.
    pub fn as_collection(&self) -> Option<&[Value]> {
        match self {
            Value::Collection(c) => Some(c),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, for mixed arithmetic.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// True when this is [`Value::Undefined`].
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Element(id) => write!(f, "{id}"),
            Value::Collection(items) => {
                write!(f, "Sequence{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Undefined => write!(f, "OclUndefined"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<ElementId> for Value {
    fn from(id: ElementId) -> Self {
        Value::Element(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_number(), Some(3.0));
        assert_eq!(Value::Real(1.5).as_number(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::Undefined.is_undefined());
        assert_eq!(Value::Str("s".into()).as_int(), None);
    }

    #[test]
    fn display() {
        assert_eq!(
            Value::Collection(vec![Value::Int(1), Value::from("a")]).to_string(),
            "Sequence{1, 'a'}"
        );
        assert_eq!(Value::Undefined.to_string(), "OclUndefined");
        assert_eq!(Value::Element(ElementId::from_raw(2)).to_string(), "#2");
    }
}
