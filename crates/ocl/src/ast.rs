//! Abstract syntax tree of the OCL-like language, plus a pretty-printer
//! whose output reparses to the same tree (property-tested).

use std::fmt;

/// Binary operators, in OCL surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `xor`
    Xor,
    /// `implies`
    Implies,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "mod",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Implies => "implies",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation (`not`).
    Not,
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The context element, `self`.
    SelfRef,
    /// A variable (let binding, iterator variable) or bare type name.
    Var(String),
    /// `lhs <op> rhs`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `<op> operand`.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Property navigation `recv.prop`.
    Property {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Property name.
        prop: String,
    },
    /// Method call `recv.method(args)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Collection operation `recv->op(args)` with positional arguments.
    CollectionCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Operation name (`size`, `includes`, ...).
        op: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Collection iterator `recv->op(var | body)`.
    Iterate {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Iterator name (`forAll`, `select`, ...).
        op: String,
        /// Bound variable name.
        var: String,
        /// Body evaluated per element.
        body: Box<Expr>,
    },
    /// `let var = value in body`.
    Let {
        /// Bound variable name.
        var: String,
        /// Bound value.
        value: Box<Expr>,
        /// Body with the binding in scope.
        body: Box<Expr>,
    },
    /// `if cond then then_branch else else_branch endif`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Taken when the condition holds.
        then_branch: Box<Expr>,
        /// Taken otherwise.
        else_branch: Box<Expr>,
    },
}

impl Expr {
    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => match op {
                BinOp::Implies => 1,
                BinOp::Or | BinOp::Xor => 2,
                BinOp::And => 3,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
                BinOp::Add | BinOp::Sub => 5,
                BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
            },
            Expr::Unary { .. } => 7,
            Expr::Let { .. } | Expr::If { .. } => 0,
            _ => 8,
        }
    }

    /// Writes `child`, parenthesizing when its precedence is lower than
    /// this node's, or equal when `strict` (the non-associative side of a
    /// binary operator).
    fn fmt_child(&self, child: &Expr, strict: bool, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `if`/`let` parse only at expression level, so as operands they
        // always need parentheses, like any lower-precedence child.
        let needs = if strict {
            child.precedence() <= self.precedence()
        } else {
            child.precedence() < self.precedence()
        };
        if needs {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Real(r) => {
                if r.fract() == 0.0 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Expr::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::SelfRef => write!(f, "self"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Binary { op, lhs, rhs } => {
                // `implies` is right-associative, comparisons are
                // non-associative, everything else is left-associative.
                let (lhs_strict, rhs_strict) = match op {
                    BinOp::Implies => (true, false),
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        (true, true)
                    }
                    _ => (false, true),
                };
                self.fmt_child(lhs, lhs_strict, f)?;
                write!(f, " {} ", op.symbol())?;
                self.fmt_child(rhs, rhs_strict, f)
            }
            Expr::Unary { op, operand } => {
                match op {
                    UnOp::Neg => write!(f, "-")?,
                    UnOp::Not => write!(f, "not ")?,
                }
                // Strict: `--x` would lex as a comment, so a nested
                // unary operand is always parenthesized.
                self.fmt_child(operand, true, f)
            }
            Expr::Property { recv, prop } => {
                self.fmt_child(recv, false, f)?;
                write!(f, ".{prop}")
            }
            Expr::MethodCall { recv, method, args } => {
                self.fmt_child(recv, false, f)?;
                write!(f, ".{method}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::CollectionCall { recv, op, args } => {
                self.fmt_child(recv, false, f)?;
                write!(f, "->{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Iterate { recv, op, var, body } => {
                self.fmt_child(recv, false, f)?;
                write!(f, "->{op}({var} | {body})")
            }
            Expr::Let { var, value, body } => write!(f, "let {var} = {value} in {body}"),
            Expr::If { cond, then_branch, else_branch } => {
                write!(f, "if {cond} then {then_branch} else {else_branch} endif")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parenthesizes_by_precedence() {
        // (1 + 2) * 3
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Int(1)),
                rhs: Box::new(Expr::Int(2)),
            }),
            rhs: Box::new(Expr::Int(3)),
        };
        assert_eq!(e.to_string(), "(1 + 2) * 3");
    }

    #[test]
    fn display_iterate_and_let() {
        let e = Expr::Iterate {
            recv: Box::new(Expr::Property {
                recv: Box::new(Expr::SelfRef),
                prop: "operations".into(),
            }),
            op: "forAll".into(),
            var: "o".into(),
            body: Box::new(Expr::Bool(true)),
        };
        assert_eq!(e.to_string(), "self.operations->forAll(o | true)");
        let l = Expr::Let {
            var: "x".into(),
            value: Box::new(Expr::Int(1)),
            body: Box::new(Expr::Var("x".into())),
        };
        assert_eq!(l.to_string(), "let x = 1 in x");
    }

    #[test]
    fn display_escapes_strings() {
        assert_eq!(Expr::Str("it's".into()).to_string(), "'it''s'");
    }
}
