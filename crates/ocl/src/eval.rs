//! Evaluator for the OCL-like language over a `comet-model` model.

use crate::ast::{BinOp, Expr, UnOp};
use crate::value::Value;
use comet_model::{Element, ElementId, ElementKind, Model, TagValue, TypeRef};
use std::collections::BTreeMap;
use std::fmt;

/// Evaluation context: the model, the optional `self` element, and
/// variable bindings.
#[derive(Debug, Clone)]
pub struct Context<'m> {
    model: &'m Model,
    self_value: Value,
    bindings: BTreeMap<String, Value>,
}

impl<'m> Context<'m> {
    /// Context with no `self`; suitable for model-level constraints that
    /// only use `X.allInstances()` style queries.
    pub fn for_model(model: &'m Model) -> Self {
        Context { model, self_value: Value::Undefined, bindings: BTreeMap::new() }
    }

    /// Context whose `self` is the given element.
    pub fn for_element(model: &'m Model, element: ElementId) -> Self {
        Context { model, self_value: Value::Element(element), bindings: BTreeMap::new() }
    }

    /// Returns a context extended with one more variable binding.
    pub fn with_binding(&self, name: impl Into<String>, value: Value) -> Self {
        let mut bindings = self.bindings.clone();
        bindings.insert(name.into(), value);
        Context { model: self.model, self_value: self.self_value.clone(), bindings }
    }

    /// The model this context evaluates against.
    pub fn model(&self) -> &'m Model {
        self.model
    }
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A variable is not bound and is not a metamodel type name.
    UnknownVariable(String),
    /// A property is not defined on the receiver.
    UnknownProperty {
        /// Property name.
        prop: String,
        /// Receiver type name.
        on: &'static str,
    },
    /// A method is not defined on the receiver.
    UnknownMethod {
        /// Method name.
        method: String,
        /// Receiver type name.
        on: &'static str,
    },
    /// A collection operation/iterator is not known.
    UnknownCollectionOp(String),
    /// An operand had the wrong type.
    TypeMismatch {
        /// Expected type name.
        expected: &'static str,
        /// Found type name.
        found: &'static str,
        /// Where it happened.
        context: String,
    },
    /// Division or modulo by zero.
    DivisionByZero,
    /// A metamodel type name was not recognized.
    UnknownType(String),
    /// Wrong number of arguments for a method.
    ArgCount {
        /// Method name.
        method: String,
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// `->at(i)` or `substring` out of bounds.
    IndexOutOfBounds {
        /// The requested index.
        index: i64,
        /// Size of the receiver.
        size: usize,
    },
    /// `->one(...)` matched a number of elements different from one.
    NotExactlyOne(usize),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            EvalError::UnknownProperty { prop, on } => {
                write!(f, "unknown property `{prop}` on {on}")
            }
            EvalError::UnknownMethod { method, on } => {
                write!(f, "unknown method `{method}` on {on}")
            }
            EvalError::UnknownCollectionOp(op) => write!(f, "unknown collection operation `{op}`"),
            EvalError::TypeMismatch { expected, found, context } => {
                write!(f, "expected {expected}, found {found} in {context}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::UnknownType(t) => write!(f, "unknown metamodel type `{t}`"),
            EvalError::ArgCount { method, expected, found } => {
                write!(f, "`{method}` expects {expected} argument(s), found {found}")
            }
            EvalError::IndexOutOfBounds { index, size } => {
                write!(f, "index {index} out of bounds for size {size}")
            }
            EvalError::NotExactlyOne(n) => write!(f, "`one` iterator matched {n} elements"),
        }
    }
}

impl std::error::Error for EvalError {}

const KIND_NAMES: &[&str] = &[
    "Package",
    "Class",
    "Interface",
    "DataType",
    "Enumeration",
    "Attribute",
    "Operation",
    "Parameter",
    "Association",
    "Generalization",
    "Dependency",
    "Constraint",
];

/// Evaluates a parsed expression in the given context.
///
/// # Errors
/// Returns an [`EvalError`] describing the first failure.
pub fn evaluate(expr: &Expr, ctx: &Context<'_>) -> Result<Value, EvalError> {
    match expr {
        Expr::Int(i) => Ok(Value::Int(*i)),
        Expr::Real(r) => Ok(Value::Real(*r)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::SelfRef => Ok(ctx.self_value.clone()),
        Expr::Var(name) => {
            if let Some(v) = ctx.bindings.get(name) {
                Ok(v.clone())
            } else if KIND_NAMES.contains(&name.as_str()) {
                // Bare type literal; only meaningful as allInstances()
                // receiver or oclIsKindOf argument, both handled by their
                // callers. Represent as the type-name string.
                Ok(Value::Str(name.clone()))
            } else {
                Err(EvalError::UnknownVariable(name.clone()))
            }
        }
        Expr::Unary { op, operand } => {
            let v = evaluate(operand, ctx)?;
            match op {
                UnOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Real(r) => Ok(Value::Real(-r)),
                    other => Err(type_mismatch("Integer or Real", &other, "unary `-`")),
                },
                UnOp::Not => match v {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(type_mismatch("Boolean", &other, "`not`")),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, ctx),
        Expr::Let { var, value, body } => {
            let v = evaluate(value, ctx)?;
            evaluate(body, &ctx.with_binding(var.clone(), v))
        }
        Expr::If { cond, then_branch, else_branch } => {
            let c = evaluate(cond, ctx)?;
            match c {
                Value::Bool(true) => evaluate(then_branch, ctx),
                Value::Bool(false) => evaluate(else_branch, ctx),
                other => Err(type_mismatch("Boolean", &other, "`if` condition")),
            }
        }
        Expr::Property { recv, prop } => {
            let r = evaluate(recv, ctx)?;
            eval_property(&r, prop, ctx)
        }
        Expr::MethodCall { recv, method, args } => {
            // `TypeName.allInstances()` needs the unevaluated receiver.
            if method == "allInstances" {
                if let Expr::Var(type_name) = recv.as_ref() {
                    if !ctx.bindings.contains_key(type_name) {
                        return all_instances(type_name, ctx);
                    }
                }
            }
            let r = evaluate(recv, ctx)?;
            eval_method(&r, method, args, ctx)
        }
        Expr::CollectionCall { recv, op, args } => {
            let r = evaluate(recv, ctx)?;
            let argv: Vec<Value> =
                args.iter().map(|a| evaluate(a, ctx)).collect::<Result<_, _>>()?;
            eval_collection_op(&r, op, &argv)
        }
        Expr::Iterate { recv, op, var, body } => {
            let r = evaluate(recv, ctx)?;
            let items = match r {
                Value::Collection(items) => items,
                other => {
                    return Err(type_mismatch("Collection", &other, &format!("`->{op}`")));
                }
            };
            eval_iterator(op, &items, var, body, ctx)
        }
    }
}

fn type_mismatch(expected: &'static str, found: &Value, context: &str) -> EvalError {
    EvalError::TypeMismatch { expected, found: found.type_name(), context: context.to_owned() }
}

fn eval_binary(op: BinOp, lhs: &Expr, rhs: &Expr, ctx: &Context<'_>) -> Result<Value, EvalError> {
    // Short-circuit boolean operators first.
    match op {
        BinOp::And => {
            let l = expect_bool(evaluate(lhs, ctx)?, "`and`")?;
            if !l {
                return Ok(Value::Bool(false));
            }
            return Ok(Value::Bool(expect_bool(evaluate(rhs, ctx)?, "`and`")?));
        }
        BinOp::Or => {
            let l = expect_bool(evaluate(lhs, ctx)?, "`or`")?;
            if l {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(expect_bool(evaluate(rhs, ctx)?, "`or`")?));
        }
        BinOp::Implies => {
            let l = expect_bool(evaluate(lhs, ctx)?, "`implies`")?;
            if !l {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(expect_bool(evaluate(rhs, ctx)?, "`implies`")?));
        }
        _ => {}
    }
    let l = evaluate(lhs, ctx)?;
    let r = evaluate(rhs, ctx)?;
    match op {
        BinOp::Xor => Ok(Value::Bool(expect_bool(l, "`xor`")? ^ expect_bool(r, "`xor`")?)),
        BinOp::Eq => Ok(Value::Bool(l == r)),
        BinOp::Ne => Ok(Value::Bool(l != r)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => {
                    let a = l.as_number().ok_or_else(|| {
                        type_mismatch("Integer, Real or String", &l, "comparison")
                    })?;
                    let b = r.as_number().ok_or_else(|| {
                        type_mismatch("Integer, Real or String", &r, "comparison")
                    })?;
                    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
                }
            };
            let b = match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!("guarded above"),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Add => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
            (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
            _ => numeric(l, r, "`+`", |a, b| a + b),
        },
        BinOp::Sub => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a - b)),
            _ => numeric(l, r, "`-`", |a, b| a - b),
        },
        BinOp::Mul => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a * b)),
            _ => numeric(l, r, "`*`", |a, b| a * b),
        },
        BinOp::Div => {
            let b = r.as_number().ok_or_else(|| type_mismatch("Integer or Real", &r, "`/`"))?;
            if b == 0.0 {
                return Err(EvalError::DivisionByZero);
            }
            let a = l.as_number().ok_or_else(|| type_mismatch("Integer or Real", &l, "`/`"))?;
            Ok(Value::Real(a / b))
        }
        BinOp::Mod => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(Value::Int(a.rem_euclid(*b)))
                }
            }
            _ => Err(type_mismatch("Integer", if l.as_int().is_some() { &r } else { &l }, "`mod`")),
        },
        BinOp::And | BinOp::Or | BinOp::Implies => unreachable!("short-circuited above"),
    }
}

fn numeric(
    l: Value,
    r: Value,
    what: &str,
    f: impl FnOnce(f64, f64) -> f64,
) -> Result<Value, EvalError> {
    let a = l.as_number().ok_or_else(|| type_mismatch("Integer or Real", &l, what))?;
    let b = r.as_number().ok_or_else(|| type_mismatch("Integer or Real", &r, what))?;
    Ok(Value::Real(f(a, b)))
}

fn expect_bool(v: Value, what: &str) -> Result<bool, EvalError> {
    v.as_bool().ok_or_else(|| type_mismatch("Boolean", &v, what))
}

fn type_ref_value(ty: TypeRef) -> Value {
    match ty {
        TypeRef::Primitive(p) => Value::Str(p.name().to_owned()),
        TypeRef::Element(id) => Value::Element(id),
    }
}

fn element<'m>(ctx: &Context<'m>, id: ElementId) -> Result<&'m Element, EvalError> {
    ctx.model()
        .element(id)
        .map_err(|_| EvalError::UnknownProperty { prop: "<resolution>".into(), on: "Element" })
}

fn ids(items: Vec<ElementId>) -> Value {
    Value::Collection(items.into_iter().map(Value::Element).collect())
}

fn eval_property(recv: &Value, prop: &str, ctx: &Context<'_>) -> Result<Value, EvalError> {
    let id = match recv {
        Value::Element(id) => *id,
        Value::Undefined => return Ok(Value::Undefined),
        other => {
            return Err(EvalError::UnknownProperty { prop: prop.to_owned(), on: other.type_name() })
        }
    };
    let m = ctx.model();
    let e = element(ctx, id)?;
    match prop {
        "name" => Ok(Value::Str(e.name().to_owned())),
        "qualifiedName" => Ok(Value::Str(m.qualified_name(id).unwrap_or_default())),
        "owner" => Ok(e.owner().map(Value::Element).unwrap_or(Value::Undefined)),
        "kind" => Ok(Value::Str(e.kind().kind_name().to_owned())),
        "stereotypes" => Ok(Value::Collection(
            e.core().stereotypes.iter().map(|s| Value::Str(s.clone())).collect(),
        )),
        "ownedElements" => Ok(ids(m.children(id))),
        "attributes" => Ok(ids(m.attributes_of(id))),
        "operations" => Ok(ids(m.operations_of(id))),
        "parameters" => Ok(ids(m.parameters_of(id))),
        "constraints" => Ok(ids(m.constraints_on(id))),
        "parents" => Ok(ids(m.parents_of(id))),
        "ancestors" => Ok(ids(m.ancestors_of(id))),
        "concern" => {
            Ok(m.concern_of(id).map(|s| Value::Str(s.to_owned())).unwrap_or(Value::Undefined))
        }
        "visibility" => Ok(Value::Str(format!("{:?}", e.core().visibility).to_lowercase())),
        "isAbstract" => match e.kind() {
            ElementKind::Class(c) => Ok(Value::Bool(c.is_abstract)),
            ElementKind::Operation(o) => Ok(Value::Bool(o.is_abstract)),
            _ => Ok(Value::Bool(false)),
        },
        "isStatic" => match e.kind() {
            ElementKind::Operation(o) => Ok(Value::Bool(o.is_static)),
            ElementKind::Attribute(a) => Ok(Value::Bool(a.is_static)),
            _ => Ok(Value::Bool(false)),
        },
        "isQuery" => match e.kind() {
            ElementKind::Operation(o) => Ok(Value::Bool(o.is_query)),
            _ => Ok(Value::Bool(false)),
        },
        "returnType" => match e.kind() {
            ElementKind::Operation(o) => Ok(type_ref_value(o.return_type)),
            _ => Err(EvalError::UnknownProperty { prop: prop.to_owned(), on: "Element" }),
        },
        "type" => match e.kind() {
            ElementKind::Attribute(a) => Ok(type_ref_value(a.ty)),
            ElementKind::Parameter(p) => Ok(type_ref_value(p.ty)),
            _ => Err(EvalError::UnknownProperty { prop: prop.to_owned(), on: "Element" }),
        },
        "body" => match e.kind() {
            ElementKind::Constraint(c) => Ok(Value::Str(c.body.clone())),
            _ => Err(EvalError::UnknownProperty { prop: prop.to_owned(), on: "Element" }),
        },
        "constrained" => match e.kind() {
            ElementKind::Constraint(c) => Ok(Value::Element(c.constrained)),
            _ => Err(EvalError::UnknownProperty { prop: prop.to_owned(), on: "Element" }),
        },
        "literals" => match e.kind() {
            ElementKind::Enumeration(en) => {
                Ok(Value::Collection(en.literals.iter().map(|l| Value::Str(l.clone())).collect()))
            }
            _ => Err(EvalError::UnknownProperty { prop: prop.to_owned(), on: "Element" }),
        },
        "participants" => match e.kind() {
            ElementKind::Association(a) => Ok(Value::Collection(vec![
                Value::Element(a.ends[0].class),
                Value::Element(a.ends[1].class),
            ])),
            ElementKind::Generalization(g) => {
                Ok(Value::Collection(vec![Value::Element(g.child), Value::Element(g.parent)]))
            }
            _ => Err(EvalError::UnknownProperty { prop: prop.to_owned(), on: "Element" }),
        },
        _ => Err(EvalError::UnknownProperty { prop: prop.to_owned(), on: "Element" }),
    }
}

fn all_instances(type_name: &str, ctx: &Context<'_>) -> Result<Value, EvalError> {
    if !KIND_NAMES.contains(&type_name) {
        return Err(EvalError::UnknownType(type_name.to_owned()));
    }
    // Indexed kind lookup: transformation pre/postconditions evaluate
    // many `T.allInstances()` expressions against the same model
    // generation, so this is a cache hit after the first.
    let items: Vec<Value> =
        ctx.model().elements_of_kind(type_name).into_iter().map(Value::Element).collect();
    Ok(Value::Collection(items))
}

fn want_args(method: &str, args: &[Expr], n: usize) -> Result<(), EvalError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(EvalError::ArgCount { method: method.to_owned(), expected: n, found: args.len() })
    }
}

fn eval_method(
    recv: &Value,
    method: &str,
    args: &[Expr],
    ctx: &Context<'_>,
) -> Result<Value, EvalError> {
    // Universally available methods.
    match method {
        "oclIsUndefined" => {
            want_args(method, args, 0)?;
            return Ok(Value::Bool(recv.is_undefined()));
        }
        "oclIsKindOf" | "oclIsTypeOf" => {
            want_args(method, args, 1)?;
            let type_name = match &args[0] {
                Expr::Var(n) => n.clone(),
                Expr::Str(s) => s.clone(),
                other => {
                    return Err(EvalError::TypeMismatch {
                        expected: "type name",
                        found: "expression",
                        context: format!("{other:?}"),
                    })
                }
            };
            if !KIND_NAMES.contains(&type_name.as_str()) {
                return Err(EvalError::UnknownType(type_name));
            }
            return Ok(match recv {
                Value::Element(id) => {
                    let e = element(ctx, *id)?;
                    Value::Bool(e.kind().kind_name() == type_name)
                }
                _ => Value::Bool(false),
            });
        }
        _ => {}
    }
    match recv {
        Value::Element(id) => {
            let m = ctx.model();
            let e = element(ctx, *id)?;
            match method {
                "hasStereotype" => {
                    want_args(method, args, 1)?;
                    let s = evaluate(&args[0], ctx)?;
                    let name =
                        s.as_str().ok_or_else(|| type_mismatch("String", &s, "hasStereotype"))?;
                    Ok(Value::Bool(e.core().has_stereotype(name)))
                }
                "taggedValue" => {
                    want_args(method, args, 1)?;
                    let k = evaluate(&args[0], ctx)?;
                    let key =
                        k.as_str().ok_or_else(|| type_mismatch("String", &k, "taggedValue"))?;
                    Ok(match e.core().tag(key) {
                        Some(v) => tag_to_value(v),
                        None => Value::Undefined,
                    })
                }
                "operation" => {
                    want_args(method, args, 1)?;
                    let n = evaluate(&args[0], ctx)?;
                    let name =
                        n.as_str().ok_or_else(|| type_mismatch("String", &n, "operation"))?;
                    Ok(m.find_operation(*id, name).map(Value::Element).unwrap_or(Value::Undefined))
                }
                "attribute" => {
                    want_args(method, args, 1)?;
                    let n = evaluate(&args[0], ctx)?;
                    let name =
                        n.as_str().ok_or_else(|| type_mismatch("String", &n, "attribute"))?;
                    Ok(m.find_attribute(*id, name).map(Value::Element).unwrap_or(Value::Undefined))
                }
                _ => Err(EvalError::UnknownMethod { method: method.to_owned(), on: "Element" }),
            }
        }
        Value::Str(s) => match method {
            "size" => {
                want_args(method, args, 0)?;
                Ok(Value::Int(s.chars().count() as i64))
            }
            "concat" => {
                let mut out = s.clone();
                for a in args {
                    let v = evaluate(a, ctx)?;
                    match v {
                        Value::Str(x) => out.push_str(&x),
                        other => return Err(type_mismatch("String", &other, "concat")),
                    }
                }
                Ok(Value::Str(out))
            }
            "toUpper" => {
                want_args(method, args, 0)?;
                Ok(Value::Str(s.to_uppercase()))
            }
            "toLower" => {
                want_args(method, args, 0)?;
                Ok(Value::Str(s.to_lowercase()))
            }
            "contains" => {
                want_args(method, args, 1)?;
                let v = evaluate(&args[0], ctx)?;
                let needle = v.as_str().ok_or_else(|| type_mismatch("String", &v, "contains"))?;
                Ok(Value::Bool(s.contains(needle)))
            }
            "startsWith" => {
                want_args(method, args, 1)?;
                let v = evaluate(&args[0], ctx)?;
                let p = v.as_str().ok_or_else(|| type_mismatch("String", &v, "startsWith"))?;
                Ok(Value::Bool(s.starts_with(p)))
            }
            "endsWith" => {
                want_args(method, args, 1)?;
                let v = evaluate(&args[0], ctx)?;
                let p = v.as_str().ok_or_else(|| type_mismatch("String", &v, "endsWith"))?;
                Ok(Value::Bool(s.ends_with(p)))
            }
            "substring" => {
                want_args(method, args, 2)?;
                let lo = evaluate(&args[0], ctx)?;
                let hi = evaluate(&args[1], ctx)?;
                let (lo, hi) = match (lo.as_int(), hi.as_int()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(EvalError::TypeMismatch {
                            expected: "Integer",
                            found: "non-integer",
                            context: "substring".into(),
                        })
                    }
                };
                let chars: Vec<char> = s.chars().collect();
                if lo < 1 || hi < lo || hi as usize > chars.len() {
                    return Err(EvalError::IndexOutOfBounds { index: hi, size: chars.len() });
                }
                Ok(Value::Str(chars[(lo - 1) as usize..hi as usize].iter().collect()))
            }
            "allInstances" => all_instances(s, ctx),
            _ => Err(EvalError::UnknownMethod { method: method.to_owned(), on: "String" }),
        },
        Value::Int(i) => match method {
            "abs" => {
                want_args(method, args, 0)?;
                Ok(Value::Int(i.abs()))
            }
            "max" | "min" => {
                want_args(method, args, 1)?;
                let v = evaluate(&args[0], ctx)?;
                let j = v.as_int().ok_or_else(|| type_mismatch("Integer", &v, method))?;
                Ok(Value::Int(if method == "max" { (*i).max(j) } else { (*i).min(j) }))
            }
            _ => Err(EvalError::UnknownMethod { method: method.to_owned(), on: "Integer" }),
        },
        Value::Real(r) => match method {
            "abs" => {
                want_args(method, args, 0)?;
                Ok(Value::Real(r.abs()))
            }
            "floor" => {
                want_args(method, args, 0)?;
                Ok(Value::Int(r.floor() as i64))
            }
            "round" => {
                want_args(method, args, 0)?;
                Ok(Value::Int(r.round() as i64))
            }
            _ => Err(EvalError::UnknownMethod { method: method.to_owned(), on: "Real" }),
        },
        other => Err(EvalError::UnknownMethod { method: method.to_owned(), on: other.type_name() }),
    }
}

fn tag_to_value(tag: &TagValue) -> Value {
    match tag {
        TagValue::Str(s) => Value::Str(s.clone()),
        TagValue::Int(i) => Value::Int(*i),
        TagValue::Bool(b) => Value::Bool(*b),
        TagValue::Real(r) => Value::Real(*r),
        TagValue::List(l) => Value::Collection(l.iter().map(tag_to_value).collect()),
    }
}

fn eval_collection_op(recv: &Value, op: &str, args: &[Value]) -> Result<Value, EvalError> {
    let items = match recv {
        Value::Collection(items) => items.clone(),
        Value::Undefined => Vec::new(),
        other => return Err(type_mismatch("Collection", other, &format!("`->{op}`"))),
    };
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::ArgCount { method: op.to_owned(), expected: n, found: args.len() })
        }
    };
    match op {
        "size" => {
            arity(0)?;
            Ok(Value::Int(items.len() as i64))
        }
        "isEmpty" => {
            arity(0)?;
            Ok(Value::Bool(items.is_empty()))
        }
        "notEmpty" => {
            arity(0)?;
            Ok(Value::Bool(!items.is_empty()))
        }
        "includes" => {
            arity(1)?;
            Ok(Value::Bool(items.contains(&args[0])))
        }
        "excludes" => {
            arity(1)?;
            Ok(Value::Bool(!items.contains(&args[0])))
        }
        "including" => {
            arity(1)?;
            let mut out = items;
            out.push(args[0].clone());
            Ok(Value::Collection(out))
        }
        "excluding" => {
            arity(1)?;
            Ok(Value::Collection(items.into_iter().filter(|v| v != &args[0]).collect()))
        }
        "count" => {
            arity(1)?;
            Ok(Value::Int(items.iter().filter(|v| *v == &args[0]).count() as i64))
        }
        "sum" => {
            arity(0)?;
            let mut int_sum = 0i64;
            let mut real_sum = 0f64;
            let mut any_real = false;
            for v in &items {
                match v {
                    Value::Int(i) => int_sum += i,
                    Value::Real(r) => {
                        any_real = true;
                        real_sum += r;
                    }
                    other => return Err(type_mismatch("Integer or Real", other, "`->sum`")),
                }
            }
            if any_real {
                Ok(Value::Real(real_sum + int_sum as f64))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        "first" => {
            arity(0)?;
            Ok(items.first().cloned().unwrap_or(Value::Undefined))
        }
        "last" => {
            arity(0)?;
            Ok(items.last().cloned().unwrap_or(Value::Undefined))
        }
        "at" => {
            arity(1)?;
            let i = args[0].as_int().ok_or_else(|| type_mismatch("Integer", &args[0], "`->at`"))?;
            if i < 1 || i as usize > items.len() {
                return Err(EvalError::IndexOutOfBounds { index: i, size: items.len() });
            }
            Ok(items[(i - 1) as usize].clone())
        }
        "indexOf" => {
            arity(1)?;
            Ok(items
                .iter()
                .position(|v| v == &args[0])
                .map(|p| Value::Int(p as i64 + 1))
                .unwrap_or(Value::Undefined))
        }
        "asSet" => {
            arity(0)?;
            let mut out: Vec<Value> = Vec::new();
            for v in items {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            Ok(Value::Collection(out))
        }
        "union" => {
            arity(1)?;
            let other = args[0]
                .as_collection()
                .ok_or_else(|| type_mismatch("Collection", &args[0], "`->union`"))?;
            let mut out = items;
            out.extend(other.iter().cloned());
            Ok(Value::Collection(out))
        }
        "intersection" => {
            arity(1)?;
            let other = args[0]
                .as_collection()
                .ok_or_else(|| type_mismatch("Collection", &args[0], "`->intersection`"))?;
            Ok(Value::Collection(items.into_iter().filter(|v| other.contains(v)).collect()))
        }
        "flatten" => {
            arity(0)?;
            let mut out = Vec::new();
            for v in items {
                match v {
                    Value::Collection(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            Ok(Value::Collection(out))
        }
        "reverse" => {
            arity(0)?;
            let mut out = items;
            out.reverse();
            Ok(Value::Collection(out))
        }
        _ => Err(EvalError::UnknownCollectionOp(op.to_owned())),
    }
}

fn eval_iterator(
    op: &str,
    items: &[Value],
    var: &str,
    body: &Expr,
    ctx: &Context<'_>,
) -> Result<Value, EvalError> {
    let eval_body = |item: &Value| -> Result<Value, EvalError> {
        evaluate(body, &ctx.with_binding(var.to_owned(), item.clone()))
    };
    match op {
        "forAll" => {
            for item in items {
                if !expect_bool(eval_body(item)?, "`->forAll` body")? {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        "exists" => {
            for item in items {
                if expect_bool(eval_body(item)?, "`->exists` body")? {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        "select" => {
            let mut out = Vec::new();
            for item in items {
                if expect_bool(eval_body(item)?, "`->select` body")? {
                    out.push(item.clone());
                }
            }
            Ok(Value::Collection(out))
        }
        "reject" => {
            let mut out = Vec::new();
            for item in items {
                if !expect_bool(eval_body(item)?, "`->reject` body")? {
                    out.push(item.clone());
                }
            }
            Ok(Value::Collection(out))
        }
        "collect" => {
            let mut out = Vec::new();
            for item in items {
                out.push(eval_body(item)?);
            }
            Ok(Value::Collection(out))
        }
        "any" => {
            for item in items {
                if expect_bool(eval_body(item)?, "`->any` body")? {
                    return Ok(item.clone());
                }
            }
            Ok(Value::Undefined)
        }
        "one" => {
            let mut n = 0usize;
            for item in items {
                if expect_bool(eval_body(item)?, "`->one` body")? {
                    n += 1;
                }
            }
            if n == 1 {
                Ok(Value::Bool(true))
            } else {
                Err(EvalError::NotExactlyOne(n))
            }
        }
        "isUnique" => {
            let mut seen: Vec<Value> = Vec::new();
            for item in items {
                let key = eval_body(item)?;
                if seen.contains(&key) {
                    return Ok(Value::Bool(false));
                }
                seen.push(key);
            }
            Ok(Value::Bool(true))
        }
        "sortedBy" => {
            let mut keyed: Vec<(Value, Value)> = Vec::new();
            for item in items {
                keyed.push((eval_body(item)?, item.clone()));
            }
            keyed.sort_by(|(a, _), (b, _)| match (a, b) {
                (Value::Str(x), Value::Str(y)) => x.cmp(y),
                _ => a.as_number().partial_cmp(&b.as_number()).unwrap_or(std::cmp::Ordering::Equal),
            });
            Ok(Value::Collection(keyed.into_iter().map(|(_, v)| v).collect()))
        }
        _ => Err(EvalError::UnknownCollectionOp(op.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use comet_model::sample::banking_pim;
    use comet_model::Model;

    fn eval_str(src: &str, ctx: &Context<'_>) -> Value {
        evaluate(&parse(src).unwrap(), ctx).unwrap()
    }

    fn err_str(src: &str, ctx: &Context<'_>) -> EvalError {
        evaluate(&parse(src).unwrap(), ctx).unwrap_err()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let m = Model::new("m");
        let ctx = Context::for_model(&m);
        assert_eq!(eval_str("1 + 2 * 3", &ctx), Value::Int(7));
        assert_eq!(eval_str("7 mod 3", &ctx), Value::Int(1));
        assert_eq!(eval_str("7 / 2", &ctx), Value::Real(3.5));
        assert_eq!(eval_str("1.5 + 1", &ctx), Value::Real(2.5));
        assert_eq!(eval_str("'a' + 'b'", &ctx), Value::Str("ab".into()));
        assert_eq!(eval_str("3 > 2 and 2 >= 2 and 1 < 2 and 1 <= 1", &ctx), Value::Bool(true));
        assert_eq!(eval_str("'abc' < 'abd'", &ctx), Value::Bool(true));
        assert_eq!(eval_str("-3.abs()", &ctx), Value::Int(-3)); // unary binds looser than postfix
        assert_eq!(eval_str("(-3).abs()", &ctx), Value::Int(3));
        assert_eq!(err_str("1 / 0", &ctx), EvalError::DivisionByZero);
        assert_eq!(err_str("1 mod 0", &ctx), EvalError::DivisionByZero);
    }

    #[test]
    fn boolean_logic_short_circuits() {
        let m = Model::new("m");
        let ctx = Context::for_model(&m);
        // Rhs would error (unknown var) but is never evaluated.
        assert_eq!(eval_str("false and nope", &ctx), Value::Bool(false));
        assert_eq!(eval_str("true or nope", &ctx), Value::Bool(true));
        assert_eq!(eval_str("false implies nope", &ctx), Value::Bool(true));
        assert_eq!(eval_str("true xor false", &ctx), Value::Bool(true));
        assert_eq!(eval_str("not false", &ctx), Value::Bool(true));
    }

    #[test]
    fn let_and_if() {
        let m = Model::new("m");
        let ctx = Context::for_model(&m);
        assert_eq!(eval_str("let x = 2 in x * x", &ctx), Value::Int(4));
        assert_eq!(eval_str("if 1 < 2 then 'a' else 'b' endif", &ctx), Value::Str("a".into()));
        assert_eq!(err_str("unbound", &ctx), EvalError::UnknownVariable("unbound".into()));
    }

    #[test]
    fn navigation_on_banking_model() {
        let m = banking_pim();
        let bank = m.find_class("Bank").unwrap();
        let ctx = Context::for_element(&m, bank);
        assert_eq!(eval_str("self.name", &ctx), Value::Str("Bank".into()));
        assert_eq!(eval_str("self.kind", &ctx), Value::Str("Class".into()));
        assert_eq!(eval_str("self.qualifiedName", &ctx), Value::Str("bank::Bank".into()));
        assert_eq!(eval_str("self.operations->size()", &ctx), Value::Int(3));
        assert_eq!(eval_str("self.operation('transfer').parameters->size()", &ctx), Value::Int(3));
        assert_eq!(eval_str("self.owner.name", &ctx), Value::Str("bank".into()));
        assert_eq!(eval_str("self.owner.owner.oclIsUndefined()", &ctx), Value::Bool(true));
        assert_eq!(eval_str("self.oclIsKindOf(Class)", &ctx), Value::Bool(true));
        assert_eq!(eval_str("self.oclIsKindOf(Package)", &ctx), Value::Bool(false));
    }

    #[test]
    fn all_instances_and_iterators() {
        let m = banking_pim();
        let ctx = Context::for_model(&m);
        assert_eq!(eval_str("Class.allInstances()->size()", &ctx), Value::Int(3));
        assert!(eval_str("Class.allInstances()->exists(c | c.name = 'Account')", &ctx)
            .as_bool()
            .unwrap());
        assert!(eval_str("Class.allInstances()->forAll(c | c.attributes->notEmpty())", &ctx)
            .as_bool()
            .unwrap());
        assert_eq!(
            eval_str(
                "Class.allInstances()->select(c | c.operations->isEmpty())->collect(x | x.name)",
                &ctx
            ),
            Value::Collection(vec![Value::Str("Customer".into())])
        );
        assert!(eval_str("Class.allInstances()->isUnique(c | c.name)", &ctx).as_bool().unwrap());
        assert_eq!(
            eval_str("Class.allInstances()->any(c | c.name = 'Bank').name", &ctx),
            Value::Str("Bank".into())
        );
        assert!(eval_str("Operation.allInstances()->one(o | o.name = 'transfer')", &ctx)
            .as_bool()
            .unwrap());
        assert_eq!(
            eval_str("Class.allInstances()->sortedBy(c | c.name)->first().name", &ctx),
            Value::Str("Account".into())
        );
    }

    #[test]
    fn collection_ops() {
        let m = banking_pim();
        let ctx = Context::for_model(&m);
        assert_eq!(eval_str("Class.allInstances()->collect(c | 1)->sum()", &ctx), Value::Int(3));
        assert_eq!(
            eval_str("Class.allInstances()->collect(c | c.name)->includes('Bank')", &ctx),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("Class.allInstances()->collect(c | c.name)->including('X')->count('X')", &ctx),
            Value::Int(1)
        );
        assert_eq!(
            eval_str("Class.allInstances()->collect(c | c.owner.name)->asSet()->size()", &ctx),
            Value::Int(1)
        );
        assert_eq!(
            eval_str("Class.allInstances()->collect(c | c.name)->at(1)", &ctx),
            Value::Str("Account".into())
        );
        assert!(matches!(
            err_str("Class.allInstances()->at(99)", &ctx),
            EvalError::IndexOutOfBounds { .. }
        ));
        assert_eq!(
            eval_str("Class.allInstances()->collect(c | c.attributes)->flatten()->size()", &ctx),
            Value::Int(5)
        );
    }

    #[test]
    fn string_methods() {
        let m = Model::new("m");
        let ctx = Context::for_model(&m);
        assert_eq!(eval_str("'hello'.size()", &ctx), Value::Int(5));
        assert_eq!(eval_str("'he'.concat('llo')", &ctx), Value::Str("hello".into()));
        assert_eq!(eval_str("'Ab'.toUpper()", &ctx), Value::Str("AB".into()));
        assert_eq!(eval_str("'Ab'.toLower()", &ctx), Value::Str("ab".into()));
        assert_eq!(eval_str("'hello'.contains('ell')", &ctx), Value::Bool(true));
        assert_eq!(eval_str("'hello'.startsWith('he')", &ctx), Value::Bool(true));
        assert_eq!(eval_str("'hello'.endsWith('lo')", &ctx), Value::Bool(true));
        assert_eq!(eval_str("'hello'.substring(2, 4)", &ctx), Value::Str("ell".into()));
        assert!(matches!(
            err_str("'hi'.substring(0, 1)", &ctx),
            EvalError::IndexOutOfBounds { .. }
        ));
    }

    #[test]
    fn stereotypes_and_tags() {
        let mut m = banking_pim();
        let bank = m.find_class("Bank").unwrap();
        m.apply_stereotype(bank, "Remote").unwrap();
        m.set_tag(bank, "node", "server-1").unwrap();
        let ctx = Context::for_element(&m, bank);
        assert_eq!(eval_str("self.hasStereotype('Remote')", &ctx), Value::Bool(true));
        assert_eq!(eval_str("self.hasStereotype('Nope')", &ctx), Value::Bool(false));
        assert_eq!(eval_str("self.taggedValue('node')", &ctx), Value::Str("server-1".into()));
        assert_eq!(eval_str("self.taggedValue('gone').oclIsUndefined()", &ctx), Value::Bool(true));
        assert_eq!(eval_str("self.stereotypes->includes('Remote')", &ctx), Value::Bool(true));
    }

    #[test]
    fn error_reporting() {
        let m = banking_pim();
        let bank = m.find_class("Bank").unwrap();
        let ctx = Context::for_element(&m, bank);
        assert!(matches!(err_str("self.noSuchProp", &ctx), EvalError::UnknownProperty { .. }));
        assert!(matches!(err_str("self.noSuchMethod()", &ctx), EvalError::UnknownMethod { .. }));
        assert!(matches!(err_str("1->size()", &ctx), EvalError::TypeMismatch { .. }));
        assert!(matches!(err_str("Gadget.allInstances()", &ctx), EvalError::UnknownType(_)));
        assert!(matches!(
            err_str("self.operations->bogus(x | true)", &ctx),
            EvalError::UnknownCollectionOp(_)
        ));
        assert!(matches!(err_str("'x'.substring(1)", &ctx), EvalError::ArgCount { .. }));
    }

    #[test]
    fn undefined_propagates_through_navigation() {
        let m = banking_pim();
        let bank = m.find_class("Bank").unwrap();
        let ctx = Context::for_element(&m, bank);
        // owner.owner is undefined; further navigation stays undefined.
        assert_eq!(eval_str("self.owner.owner.name.oclIsUndefined()", &ctx), Value::Bool(true));
    }

    #[test]
    fn iterator_variable_shadows_binding() {
        let m = banking_pim();
        let ctx = Context::for_model(&m).with_binding("c", Value::Int(99));
        // The iterator variable `c` shadows the outer binding inside the body.
        assert!(eval_str("Class.allInstances()->forAll(c | c.kind = 'Class')", &ctx)
            .as_bool()
            .unwrap());
        assert_eq!(eval_str("c", &ctx), Value::Int(99));
    }
}
