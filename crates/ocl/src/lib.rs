//! # comet-ocl — OCL-like constraint language over COMET models
//!
//! The paper requires pre- and postconditions on model transformations,
//! "expressed in a dedicated constraint language appropriate for the
//! models (in the case of UML, OCL is the obvious choice)". This crate
//! implements a pragmatic OCL subset evaluated over `comet-model` models:
//!
//! * literals, arithmetic, comparison, boolean logic (`and`, `or`, `xor`,
//!   `not`, `implies`)
//! * `let ... in ...`, `if ... then ... else ... endif`
//! * metamodel navigation on elements (`self.name`, `self.operations`,
//!   `self.owner`, ...)
//! * collection iterators via arrow syntax: `->forAll(x | ...)`,
//!   `->exists`, `->select`, `->reject`, `->collect`, `->size`,
//!   `->isEmpty`, `->notEmpty`, `->includes`, `->including`, `->count`,
//!   `->sum`, `->first`, `->at`, `->asSet`, `->any`, `->one`,
//!   `->isUnique`
//! * type-level queries: `Class.allInstances()`,
//!   `self.oclIsKindOf(Class)`, `hasStereotype('Remote')`,
//!   `taggedValue('key')`
//!
//! ## Example
//!
//! ```
//! use comet_model::sample::banking_pim;
//! use comet_ocl::{evaluate_bool, Context};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = banking_pim();
//! let ctx = Context::for_model(&model);
//! assert!(evaluate_bool("Class.allInstances()->exists(c | c.name = 'Bank')", &ctx)?);
//! assert!(evaluate_bool(
//!     "Class.allInstances()->forAll(c | c.attributes->size() >= 0)",
//!     &ctx,
//! )?);
//! # Ok(())
//! # }
//! ```

mod ast;
mod eval;
mod lexer;
mod parser;
mod value;

pub use ast::{BinOp, Expr, UnOp};
pub use eval::{evaluate as evaluate_expr, Context, EvalError};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse, ParseError};
pub use value::Value;

/// Parses and evaluates an expression in the given context.
///
/// # Errors
/// Returns [`OclError`] on lexing, parsing or evaluation failure.
pub fn evaluate(source: &str, ctx: &Context<'_>) -> Result<Value, OclError> {
    let expr = parse(source)?;
    Ok(eval::evaluate(&expr, ctx)?)
}

/// Parses and evaluates an expression, requiring a boolean result.
///
/// # Errors
/// Returns [`OclError`] on failure or when the result is not a boolean.
pub fn evaluate_bool(source: &str, ctx: &Context<'_>) -> Result<bool, OclError> {
    match evaluate(source, ctx)? {
        Value::Bool(b) => Ok(b),
        other => Err(OclError::Eval(EvalError::TypeMismatch {
            expected: "Boolean",
            found: other.type_name(),
            context: "top-level constraint".into(),
        })),
    }
}

/// Outcome of checking one attached model constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintOutcome {
    /// The constraint evaluated to `true`.
    Holds,
    /// The constraint evaluated to `false`.
    Violated,
    /// The constraint could not be decided at model level — typically an
    /// instance-level invariant (e.g. `self.balance >= 0`) whose slots
    /// only exist at run time. The message explains why.
    Undecidable(String),
}

/// Evaluates every [`Constraint`](comet_model::ElementKind::Constraint)
/// element attached anywhere in the model, with `self` bound to the
/// constrained element. Returns `(constraint id, constraint name,
/// outcome)` triples in id order.
pub fn check_model_constraints(
    model: &comet_model::Model,
) -> Vec<(comet_model::ElementId, String, ConstraintOutcome)> {
    let mut out = Vec::new();
    for element in model.iter() {
        let Some(data) = element.as_constraint() else { continue };
        let ctx = Context::for_element(model, data.constrained);
        let outcome = match evaluate(&data.body, &ctx) {
            Ok(Value::Bool(true)) => ConstraintOutcome::Holds,
            Ok(Value::Bool(false)) => ConstraintOutcome::Violated,
            Ok(other) => ConstraintOutcome::Undecidable(format!(
                "evaluated to {} instead of a boolean",
                other.type_name()
            )),
            Err(e) => ConstraintOutcome::Undecidable(e.to_string()),
        };
        out.push((element.id(), element.name().to_owned(), outcome));
    }
    out
}

/// Umbrella error for the full parse-and-evaluate pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OclError {
    /// Lexing failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Evaluation failed.
    Eval(EvalError),
}

impl std::fmt::Display for OclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OclError::Lex(e) => write!(f, "lex error: {e}"),
            OclError::Parse(e) => write!(f, "parse error: {e}"),
            OclError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for OclError {}

impl From<LexError> for OclError {
    fn from(e: LexError) -> Self {
        OclError::Lex(e)
    }
}

impl From<ParseError> for OclError {
    fn from(e: ParseError) -> Self {
        match e {
            ParseError::Lex(l) => OclError::Lex(l),
            other => OclError::Parse(other),
        }
    }
}

impl From<EvalError> for OclError {
    fn from(e: EvalError) -> Self {
        OclError::Eval(e)
    }
}
