//! Recursive-descent parser for the OCL-like language.

use crate::ast::{BinOp, Expr, UnOp};
use crate::lexer::{lex, LexError, Token, TokenKind};
use std::fmt;

/// Parsing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The lexer failed first.
    Lex(LexError),
    /// An unexpected token was found.
    Unexpected {
        /// What was found.
        found: String,
        /// What the parser wanted.
        expected: String,
        /// Byte offset of the offending token.
        offset: usize,
    },
    /// Input continued after a complete expression.
    TrailingInput {
        /// Byte offset of the first extra token.
        offset: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { found, expected, offset } => {
                write!(f, "expected {expected}, found `{found}` at offset {offset}")
            }
            ParseError::TrailingInput { offset } => {
                write!(f, "trailing input at offset {offset}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses a complete expression.
///
/// # Errors
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expression()?;
    if !matches!(p.peek().kind, TokenKind::Eof) {
        return Err(ParseError::TrailingInput { offset: p.peek().offset });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().kind.to_string(),
            expected: expected.to_owned(),
            offset: self.peek().offset,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let n = name.clone();
                self.bump();
                Ok(n)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind {
            TokenKind::Let => {
                self.bump();
                let var = self.ident("let variable name")?;
                self.expect(&TokenKind::Eq, "`=` in let binding")?;
                let value = self.expression()?;
                self.expect(&TokenKind::In, "`in` after let binding")?;
                let body = self.expression()?;
                Ok(Expr::Let { var, value: Box::new(value), body: Box::new(body) })
            }
            TokenKind::If => {
                self.bump();
                let cond = self.expression()?;
                self.expect(&TokenKind::Then, "`then`")?;
                let then_branch = self.expression()?;
                self.expect(&TokenKind::Else, "`else`")?;
                let else_branch = self.expression()?;
                self.expect(&TokenKind::Endif, "`endif`")?;
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                })
            }
            _ => self.implies(),
        }
    }

    fn implies(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.or_expr()?;
        // `implies` is right-associative.
        if matches!(self.peek().kind, TokenKind::Implies) {
            self.bump();
            let rhs = self.implies()?;
            return Ok(Expr::Binary { op: BinOp::Implies, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Or => BinOp::Or,
                TokenKind::Xor => BinOp::Xor,
                _ => break,
            };
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.comparison()?;
        while matches!(self.peek().kind, TokenKind::And) {
            self.bump();
            let rhs = self.comparison()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary { op: UnOp::Neg, operand: Box::new(operand) })
            }
            TokenKind::Not => {
                self.bump();
                let operand = self.unary()?;
                Ok(Expr::Unary { op: UnOp::Not, operand: Box::new(operand) })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek().kind {
                TokenKind::Dot => {
                    self.bump();
                    let name = self.ident("property or method name")?;
                    if matches!(self.peek().kind, TokenKind::LParen) {
                        self.bump();
                        let args = self.arguments()?;
                        expr = Expr::MethodCall { recv: Box::new(expr), method: name, args };
                    } else {
                        expr = Expr::Property { recv: Box::new(expr), prop: name };
                    }
                }
                TokenKind::Arrow => {
                    self.bump();
                    let name = self.ident("collection operation name")?;
                    self.expect(&TokenKind::LParen, "`(` after collection operation")?;
                    // Iterator form: `ident |` lookahead.
                    let is_iter = matches!(self.peek().kind, TokenKind::Ident(_))
                        && matches!(
                            self.tokens.get(self.pos + 1).map(|t| &t.kind),
                            Some(TokenKind::Pipe)
                        );
                    if is_iter {
                        let var = self.ident("iterator variable")?;
                        self.expect(&TokenKind::Pipe, "`|`")?;
                        let body = self.expression()?;
                        self.expect(&TokenKind::RParen, "`)`")?;
                        expr = Expr::Iterate {
                            recv: Box::new(expr),
                            op: name,
                            var,
                            body: Box::new(body),
                        };
                    } else {
                        let args = self.arguments()?;
                        expr = Expr::CollectionCall { recv: Box::new(expr), op: name, args };
                    }
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn arguments(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if matches!(self.peek().kind, TokenKind::RParen) {
            self.bump();
            return Ok(args);
        }
        loop {
            args.push(self.expression()?);
            match self.peek().kind {
                TokenKind::Comma => {
                    self.bump();
                }
                TokenKind::RParen => {
                    self.bump();
                    break;
                }
                _ => return Err(self.unexpected("`,` or `)`")),
            }
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Int(i))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(Expr::Real(r))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::Bool(b) => {
                self.bump();
                Ok(Expr::Bool(b))
            }
            TokenKind::SelfKw => {
                self.bump();
                Ok(Expr::SelfRef)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_precedence() {
        let e = parse("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
        let e = parse("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e = parse("not a and b").unwrap();
        // `not` binds tighter than `and`.
        assert_eq!(e.to_string(), "not a and b");
    }

    #[test]
    fn parses_implies_right_assoc() {
        let e = parse("a implies b implies c").unwrap();
        match e {
            Expr::Binary { op: BinOp::Implies, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Implies, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_navigation_chain() {
        let e = parse("self.owner.name").unwrap();
        assert_eq!(e.to_string(), "self.owner.name");
    }

    #[test]
    fn parses_iterators_and_calls() {
        let e = parse("self.operations->forAll(o | o.parameters->size() <= 4)").unwrap();
        assert_eq!(e.to_string(), "self.operations->forAll(o | o.parameters->size() <= 4)");
        let e = parse("Class.allInstances()->select(c | c.name = 'Bank')->size() = 1").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn parses_let_and_if() {
        let e = parse("let n = self.name in if n = 'x' then 1 else 2 endif").unwrap();
        assert_eq!(e.to_string(), "let n = self.name in if n = 'x' then 1 else 2 endif");
    }

    #[test]
    fn parses_method_calls_with_args() {
        let e = parse("self.taggedValue('key')").unwrap();
        assert!(matches!(e, Expr::MethodCall { .. }));
        let e = parse("s.concat('a', 'b')").unwrap();
        match e {
            Expr::MethodCall { args, .. } => assert_eq!(args.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_input_and_bad_tokens() {
        assert!(matches!(parse("1 2"), Err(ParseError::TrailingInput { .. })));
        assert!(matches!(parse("1 +"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("let = 3 in x"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("if a then b else c"), Err(ParseError::Unexpected { .. })));
        assert!(matches!(parse("#"), Err(ParseError::Lex(_))));
    }

    #[test]
    fn pretty_print_reparses_identically() {
        for src in [
            "1 + 2 * 3 - 4 / 5 mod 6",
            "self.operations->forAll(o | o.name <> '' and o.parameters->size() >= 0)",
            "a implies b or c and not d",
            "let x = 1 + 1 in x * x",
            "if a = b then 'yes' else 'no' endif",
            "self.taggedValue('k') = 'v'",
            "-3 + -x",
        ] {
            let e1 = parse(src).unwrap();
            let printed = e1.to_string();
            let e2 = parse(&printed).unwrap();
            assert_eq!(e1, e2, "round-trip failed for `{src}` -> `{printed}`");
        }
    }
}
