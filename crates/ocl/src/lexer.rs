//! Hand-written lexer for the OCL-like language.

use std::fmt;

/// Kinds of token produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (single-quoted in source).
    Str(String),
    /// `true` or `false`.
    Bool(bool),
    /// Identifier or keyword-like word that is not reserved.
    Ident(String),
    /// `self`.
    SelfKw,
    /// `let`.
    Let,
    /// `in`.
    In,
    /// `if` / `then` / `else` / `endif`.
    If,
    /// `then`.
    Then,
    /// `else`.
    Else,
    /// `endif`.
    Endif,
    /// `and`.
    And,
    /// `or`.
    Or,
    /// `xor`.
    Xor,
    /// `not`.
    Not,
    /// `implies`.
    Implies,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `.`.
    Dot,
    /// `->`.
    Arrow,
    /// `,`.
    Comma,
    /// `|`.
    Pipe,
    /// `=`.
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `mod`.
    Mod,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Real(r) => write!(f, "{r}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Bool(b) => write!(f, "{b}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::SelfKw => write!(f, "self"),
            TokenKind::Let => write!(f, "let"),
            TokenKind::In => write!(f, "in"),
            TokenKind::If => write!(f, "if"),
            TokenKind::Then => write!(f, "then"),
            TokenKind::Else => write!(f, "else"),
            TokenKind::Endif => write!(f, "endif"),
            TokenKind::And => write!(f, "and"),
            TokenKind::Or => write!(f, "or"),
            TokenKind::Xor => write!(f, "xor"),
            TokenKind::Not => write!(f, "not"),
            TokenKind::Implies => write!(f, "implies"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Mod => write!(f, "mod"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its byte offset in the source, for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A character that cannot start any token.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Byte offset.
        offset: usize,
    },
    /// A string literal missing its closing quote.
    UnterminatedString {
        /// Byte offset of the opening quote.
        offset: usize,
    },
    /// A numeric literal that does not parse.
    BadNumber {
        /// The offending text.
        text: String,
        /// Byte offset.
        offset: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { ch, offset } => {
                write!(f, "unexpected character `{ch}` at offset {offset}")
            }
            LexError::UnterminatedString { offset } => {
                write!(f, "unterminated string literal starting at offset {offset}")
            }
            LexError::BadNumber { text, offset } => {
                write!(f, "malformed number `{text}` at offset {offset}")
            }
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the whole input, appending an [`TokenKind::Eof`] sentinel.
///
/// # Errors
/// Returns the first [`LexError`] encountered.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: `--` to end of line, OCL style.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let kind = match c {
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            '.' => {
                i += 1;
                TokenKind::Dot
            }
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '|' => {
                i += 1;
                TokenKind::Pipe
            }
            '+' => {
                i += 1;
                TokenKind::Plus
            }
            '*' => {
                i += 1;
                TokenKind::Star
            }
            '/' => {
                i += 1;
                TokenKind::Slash
            }
            '=' => {
                i += 1;
                TokenKind::Eq
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    TokenKind::Arrow
                } else {
                    i += 1;
                    TokenKind::Minus
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    TokenKind::Ne
                } else if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Le
                } else {
                    i += 1;
                    TokenKind::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    i += 1;
                    TokenKind::Gt
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(LexError::UnterminatedString { offset: start }),
                        Some(b'\'') => {
                            // Doubled quote escapes a quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                    end += 1;
                }
                let mut is_real = false;
                if end < bytes.len()
                    && bytes[end] == b'.'
                    && end + 1 < bytes.len()
                    && (bytes[end + 1] as char).is_ascii_digit()
                {
                    is_real = true;
                    end += 1;
                    while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                        end += 1;
                    }
                }
                let text = &source[i..end];
                i = end;
                if is_real {
                    match text.parse::<f64>() {
                        Ok(r) => TokenKind::Real(r),
                        Err(_) => {
                            return Err(LexError::BadNumber { text: text.into(), offset: start })
                        }
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(n) => TokenKind::Int(n),
                        Err(_) => {
                            return Err(LexError::BadNumber { text: text.into(), offset: start })
                        }
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let ch = bytes[end] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let word = &source[i..end];
                i = end;
                match word {
                    "self" => TokenKind::SelfKw,
                    "let" => TokenKind::Let,
                    "in" => TokenKind::In,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "endif" => TokenKind::Endif,
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "xor" => TokenKind::Xor,
                    "not" => TokenKind::Not,
                    "implies" => TokenKind::Implies,
                    "mod" => TokenKind::Mod,
                    "true" => TokenKind::Bool(true),
                    "false" => TokenKind::Bool(false),
                    _ => TokenKind::Ident(word.to_owned()),
                }
            }
            other => return Err(LexError::UnexpectedChar { ch: other, offset: start }),
        };
        tokens.push(Token { kind, offset: start });
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: source.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators_and_keywords() {
        assert_eq!(
            kinds("a -> b <= c <> d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Le,
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
        assert_eq!(
            kinds("self and not true implies false"),
            vec![
                TokenKind::SelfKw,
                TokenKind::And,
                TokenKind::Not,
                TokenKind::Bool(true),
                TokenKind::Implies,
                TokenKind::Bool(false),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1 23 4.5"),
            vec![TokenKind::Int(1), TokenKind::Int(23), TokenKind::Real(4.5), TokenKind::Eof,]
        );
        // `1.x` is Int Dot Ident (navigation), not a real.
        assert_eq!(kinds("1.abs")[0], TokenKind::Int(1));
        assert_eq!(kinds("1.abs")[1], TokenKind::Dot);
    }

    #[test]
    fn lexes_strings_with_escaped_quotes() {
        assert_eq!(kinds("'hi'")[0], TokenKind::Str("hi".into()));
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert!(matches!(lex("'oops"), Err(LexError::UnterminatedString { .. })));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- a comment\n+ 2"),
            vec![TokenKind::Int(1), TokenKind::Plus, TokenKind::Int(2), TokenKind::Eof,]
        );
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(kinds("a - b")[1], TokenKind::Minus);
        assert_eq!(kinds("a ->b")[1], TokenKind::Arrow);
        assert_eq!(kinds("-- only comment"), vec![TokenKind::Eof]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(lex("a # b"), Err(LexError::UnexpectedChar { ch: '#', .. })));
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
