//! The naming service: binds logical names to (node, object key) pairs,
//! the way a CORBA naming service or RMI registry would.

use crate::error::MiddlewareError;
use crate::faults::{FaultInjector, FaultOp};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One name binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    /// Node hosting the object.
    pub node: String,
    /// Opaque object key on that node (interpreter object handle).
    pub object_key: u64,
}

/// The naming service.
#[derive(Debug, Clone, Default)]
pub struct NamingService {
    bindings: BTreeMap<String, Registration>,
    faults: Option<Rc<RefCell<FaultInjector>>>,
}

impl NamingService {
    /// Creates an empty naming service.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn attach_faults(&mut self, faults: Rc<RefCell<FaultInjector>>) {
        self.faults = Some(faults);
    }

    /// Binds `name` to an object. Rebinding an existing name fails; use
    /// [`NamingService::rebind`] for that.
    ///
    /// # Errors
    /// Fails when the name is already bound.
    pub fn bind(&mut self, name: &str, node: &str, object_key: u64) -> Result<(), MiddlewareError> {
        if self.bindings.contains_key(name) {
            return Err(MiddlewareError::NameAlreadyBound(name.to_owned()));
        }
        self.bindings.insert(name.to_owned(), Registration { node: node.to_owned(), object_key });
        Ok(())
    }

    /// Binds or replaces `name`.
    pub fn rebind(&mut self, name: &str, node: &str, object_key: u64) {
        self.bindings.insert(name.to_owned(), Registration { node: node.to_owned(), object_key });
    }

    /// Resolves a name.
    ///
    /// # Errors
    /// Fails when the name is not bound, or with a typed injected fault
    /// when the fault injector perturbs `naming.lookup`.
    pub fn lookup(&self, name: &str) -> Result<&Registration, MiddlewareError> {
        if let Some(faults) = &self.faults {
            faults.borrow_mut().check(FaultOp::NamingLookup, &[])?;
        }
        self.bindings.get(name).ok_or_else(|| MiddlewareError::NameNotBound(name.to_owned()))
    }

    /// Removes a binding; returns whether it existed.
    pub fn unbind(&mut self, name: &str) -> bool {
        self.bindings.remove(name).is_some()
    }

    /// All bound names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.bindings.keys().map(String::as_str).collect()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let mut n = NamingService::new();
        assert!(n.is_empty());
        n.bind("bank", "server", 7).unwrap();
        assert_eq!(
            n.lookup("bank").unwrap(),
            &Registration { node: "server".into(), object_key: 7 }
        );
        assert_eq!(n.len(), 1);
        assert!(n.unbind("bank"));
        assert!(!n.unbind("bank"));
        assert!(matches!(n.lookup("bank"), Err(MiddlewareError::NameNotBound(_))));
    }

    #[test]
    fn double_bind_rejected_rebind_allowed() {
        let mut n = NamingService::new();
        n.bind("x", "a", 1).unwrap();
        assert!(matches!(n.bind("x", "b", 2), Err(MiddlewareError::NameAlreadyBound(_))));
        n.rebind("x", "b", 2);
        assert_eq!(n.lookup("x").unwrap().node, "b");
        assert_eq!(n.names(), vec!["x"]);
    }
}
