//! The log service: levelled records, counters, and query helpers.

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Level, e.g. `info`.
    pub level: String,
    /// Message text.
    pub message: String,
    /// Logical timestamp (microseconds) when emitted.
    pub at_us: u64,
}

/// The log service.
#[derive(Debug, Clone, Default)]
pub struct LogService {
    records: Vec<LogRecord>,
}

impl LogService {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn emit(&mut self, level: &str, message: &str, at_us: u64) {
        self.records.push(LogRecord {
            level: level.to_owned(),
            message: message.to_owned(),
            at_us,
        });
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records at `level`.
    pub fn count_level(&self, level: &str) -> usize {
        self.records.iter().filter(|r| r.level == level).count()
    }

    /// Records whose message contains `needle`.
    pub fn matching(&self, needle: &str) -> Vec<&LogRecord> {
        self.records.iter().filter(|r| r.message.contains(needle)).collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Clears the log (bench warm-up hygiene).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_count_match() {
        let mut l = LogService::new();
        assert!(l.is_empty());
        l.emit("info", "enter Bank.transfer", 10);
        l.emit("debug", "exit Bank.transfer", 20);
        l.emit("info", "enter Bank.audit", 30);
        assert_eq!(l.len(), 3);
        assert_eq!(l.count_level("info"), 2);
        assert_eq!(l.matching("transfer").len(), 2);
        assert_eq!(l.records()[0].at_us, 10);
        l.clear();
        assert!(l.is_empty());
    }
}
