//! Principals, roles, ACL checks and an audit log.

use crate::error::MiddlewareError;
use std::collections::BTreeMap;

/// One audit record: an access decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// The principal (empty when unauthenticated).
    pub principal: String,
    /// Required role.
    pub role: String,
    /// Resource accessed.
    pub resource: String,
    /// Whether access was granted.
    pub granted: bool,
}

/// The security manager: principal database, a login stack (so remote
/// calls can run as a different principal and restore the caller), and
/// role checks.
#[derive(Debug, Clone, Default)]
pub struct SecurityManager {
    principals: BTreeMap<String, Vec<String>>,
    login_stack: Vec<String>,
    audit: Vec<AuditEntry>,
}

impl SecurityManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a principal with roles (replaces previous roles).
    pub fn add_principal(&mut self, name: &str, roles: &[&str]) {
        self.principals.insert(name.to_owned(), roles.iter().map(|r| (*r).to_owned()).collect());
    }

    /// Pushes `principal` as the current identity.
    ///
    /// # Errors
    /// Fails when the principal is unknown.
    pub fn login(&mut self, principal: &str) -> Result<(), MiddlewareError> {
        if !self.principals.contains_key(principal) {
            return Err(MiddlewareError::UnknownPrincipal(principal.to_owned()));
        }
        self.login_stack.push(principal.to_owned());
        Ok(())
    }

    /// Pops the current identity; returns it if one was logged in.
    pub fn logout(&mut self) -> Option<String> {
        self.login_stack.pop()
    }

    /// The current principal, if any.
    pub fn current_principal(&self) -> Option<&str> {
        self.login_stack.last().map(String::as_str)
    }

    /// True when `principal` holds `role`.
    pub fn has_role(&self, principal: &str, role: &str) -> bool {
        self.principals.get(principal).map(|roles| roles.iter().any(|r| r == role)).unwrap_or(false)
    }

    /// Checks that the current principal holds `role`; records an audit
    /// entry either way.
    ///
    /// # Errors
    /// [`MiddlewareError::NotAuthenticated`] with no login;
    /// [`MiddlewareError::AccessDenied`] when the role is missing.
    pub fn check(&mut self, role: &str, resource: &str) -> Result<(), MiddlewareError> {
        let principal = match self.current_principal() {
            Some(p) => p.to_owned(),
            None => {
                self.audit.push(AuditEntry {
                    principal: String::new(),
                    role: role.to_owned(),
                    resource: resource.to_owned(),
                    granted: false,
                });
                return Err(MiddlewareError::NotAuthenticated);
            }
        };
        let granted = self.has_role(&principal, role);
        self.audit.push(AuditEntry {
            principal: principal.clone(),
            role: role.to_owned(),
            resource: resource.to_owned(),
            granted,
        });
        if granted {
            Ok(())
        } else {
            Err(MiddlewareError::AccessDenied {
                principal,
                role: role.to_owned(),
                resource: resource.to_owned(),
            })
        }
    }

    /// The audit log, oldest first.
    pub fn audit_log(&self) -> &[AuditEntry] {
        &self.audit
    }

    /// Number of denied accesses recorded.
    pub fn denials(&self) -> usize {
        self.audit.iter().filter(|e| !e.granted).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> SecurityManager {
        let mut s = SecurityManager::new();
        s.add_principal("alice", &["teller", "auditor"]);
        s.add_principal("bob", &["customer"]);
        s
    }

    #[test]
    fn grant_and_deny() {
        let mut s = mgr();
        s.login("alice").unwrap();
        assert!(s.check("teller", "Bank.transfer").is_ok());
        s.logout();
        s.login("bob").unwrap();
        let err = s.check("teller", "Bank.transfer").unwrap_err();
        assert!(matches!(err, MiddlewareError::AccessDenied { .. }));
        assert_eq!(s.audit_log().len(), 2);
        assert_eq!(s.denials(), 1);
        assert!(s.audit_log()[0].granted);
        assert!(!s.audit_log()[1].granted);
    }

    #[test]
    fn unauthenticated_check_fails_and_audits() {
        let mut s = mgr();
        assert!(matches!(s.check("teller", "x"), Err(MiddlewareError::NotAuthenticated)));
        assert_eq!(s.denials(), 1);
        assert_eq!(s.audit_log()[0].principal, "");
    }

    #[test]
    fn login_stack_restores_identity() {
        let mut s = mgr();
        s.login("bob").unwrap();
        s.login("alice").unwrap();
        assert_eq!(s.current_principal(), Some("alice"));
        assert_eq!(s.logout(), Some("alice".to_owned()));
        assert_eq!(s.current_principal(), Some("bob"));
    }

    #[test]
    fn unknown_principal_rejected() {
        let mut s = mgr();
        assert!(matches!(s.login("mallory"), Err(MiddlewareError::UnknownPrincipal(_))));
        assert!(!s.has_role("mallory", "teller"));
    }

    #[test]
    fn roles_replaced_on_redeclare() {
        let mut s = mgr();
        s.add_principal("bob", &["teller"]);
        assert!(s.has_role("bob", "teller"));
        assert!(!s.has_role("bob", "customer"));
    }
}
