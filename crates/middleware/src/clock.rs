//! Logical simulation clock.

/// A monotonically advancing logical clock measured in microseconds.
///
/// The bus advances it by each message's simulated latency, so end-to-end
/// "durations" in examples and benches are deterministic functions of the
/// seed and workload, not of wall-clock noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimClock {
    now_us: u64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Advances the clock by `us` microseconds and returns the new time.
    pub fn advance_us(&mut self, us: u64) -> u64 {
        self.now_us += us;
        self.now_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.advance_us(10), 10);
        assert_eq!(c.advance_us(0), 10);
        assert_eq!(c.advance_us(5), 15);
    }
}
