//! A simulated document store: the persistence backend the persistence
//! concern saves object snapshots into (the role a persistence service
//! or entity-bean container plays in a J2EE-era platform).

use std::collections::BTreeMap;

/// Store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Documents written (including overwrites).
    pub saves: u64,
    /// Successful loads.
    pub loads: u64,
    /// Loads that found nothing.
    pub misses: u64,
}

/// A key-value document store, generic over the snapshot type (the
/// interpreter stores its runtime values).
#[derive(Debug, Clone, Default)]
pub struct StoreService<V> {
    documents: BTreeMap<String, V>,
    stats: StoreStats,
}

impl<V: Clone> StoreService<V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        StoreService { documents: BTreeMap::new(), stats: StoreStats::default() }
    }

    /// Writes (or overwrites) a document.
    pub fn save(&mut self, key: &str, snapshot: V) {
        self.documents.insert(key.to_owned(), snapshot);
        self.stats.saves += 1;
    }

    /// Reads a document.
    pub fn load(&mut self, key: &str) -> Option<V> {
        match self.documents.get(key) {
            Some(v) => {
                self.stats.loads += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Deletes a document; returns whether it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        self.documents.remove(key).is_some()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<&str> {
        self.documents.keys().map(String::as_str).collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_delete() {
        let mut s: StoreService<i64> = StoreService::new();
        assert!(s.is_empty());
        s.save("a/1", 10);
        s.save("a/1", 20); // overwrite
        s.save("a/2", 30);
        assert_eq!(s.len(), 2);
        assert_eq!(s.load("a/1"), Some(20));
        assert_eq!(s.load("ghost"), None);
        assert_eq!(s.keys(), vec!["a/1", "a/2"]);
        assert!(s.delete("a/1"));
        assert!(!s.delete("a/1"));
        let st = s.stats();
        assert_eq!((st.saves, st.loads, st.misses), (3, 1, 1));
    }
}
