//! A simulated document store: the persistence backend the persistence
//! concern saves object snapshots into (the role a persistence service
//! or entity-bean container plays in a J2EE-era platform).
//!
//! `save` and `load` are fallible: they are fault-injection choke
//! points (`store.save` / `store.load`). A store built standalone via
//! [`StoreService::new`] has no injector attached and never fails.

use crate::error::MiddlewareError;
use crate::faults::{FaultInjector, FaultOp};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Documents written (including overwrites).
    pub saves: u64,
    /// Successful loads.
    pub loads: u64,
    /// Loads that found nothing.
    pub misses: u64,
    /// Saves or loads rejected by an injected fault.
    pub faulted: u64,
}

/// A key-value document store, generic over the snapshot type (the
/// interpreter stores its runtime values).
#[derive(Debug, Clone, Default)]
pub struct StoreService<V> {
    documents: BTreeMap<String, V>,
    stats: StoreStats,
    faults: Option<Rc<RefCell<FaultInjector>>>,
}

impl<V: Clone> StoreService<V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        StoreService { documents: BTreeMap::new(), stats: StoreStats::default(), faults: None }
    }

    pub(crate) fn attach_faults(&mut self, faults: Rc<RefCell<FaultInjector>>) {
        self.faults = Some(faults);
    }

    fn check(&mut self, op: FaultOp) -> Result<(), MiddlewareError> {
        if let Some(faults) = &self.faults {
            if let Err(e) = faults.borrow_mut().check(op, &[]) {
                self.stats.faulted += 1;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Writes (or overwrites) a document.
    ///
    /// # Errors
    /// Fails only when the fault injector perturbs `store.save`; the
    /// document is then *not* written.
    pub fn save(&mut self, key: &str, snapshot: V) -> Result<(), MiddlewareError> {
        self.check(FaultOp::StoreSave)?;
        self.documents.insert(key.to_owned(), snapshot);
        self.stats.saves += 1;
        Ok(())
    }

    /// Reads a document.
    ///
    /// # Errors
    /// Fails only when the fault injector perturbs `store.load`.
    pub fn load(&mut self, key: &str) -> Result<Option<V>, MiddlewareError> {
        self.check(FaultOp::StoreLoad)?;
        match self.documents.get(key) {
            Some(v) => {
                self.stats.loads += 1;
                Ok(Some(v.clone()))
            }
            None => {
                self.stats.misses += 1;
                Ok(None)
            }
        }
    }

    /// Deletes a document; returns whether it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        self.documents.remove(key).is_some()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<&str> {
        self.documents.keys().map(String::as_str).collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::faults::{FaultKind, FaultPlan};

    #[test]
    fn save_load_delete() {
        let mut s: StoreService<i64> = StoreService::new();
        assert!(s.is_empty());
        s.save("a/1", 10).unwrap();
        s.save("a/1", 20).unwrap(); // overwrite
        s.save("a/2", 30).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.load("a/1").unwrap(), Some(20));
        assert_eq!(s.load("ghost").unwrap(), None);
        assert_eq!(s.keys(), vec!["a/1", "a/2"]);
        assert!(s.delete("a/1"));
        assert!(!s.delete("a/1"));
        let st = s.stats();
        assert_eq!((st.saves, st.loads, st.misses, st.faulted), (3, 1, 1, 0));
    }

    #[test]
    fn faulted_save_writes_nothing() {
        let clock = Rc::new(RefCell::new(SimClock::default()));
        let faults = Rc::new(RefCell::new(FaultInjector::new(clock, 1)));
        faults.borrow_mut().install_plan(FaultPlan::new(1).at(
            FaultOp::StoreSave,
            1,
            FaultKind::Transient,
        ));
        let mut s: StoreService<i64> = StoreService::new();
        s.attach_faults(faults);
        let err = s.save("k", 1).unwrap_err();
        assert!(matches!(err, MiddlewareError::FaultInjected { ref op } if op == "store.save"));
        assert!(s.is_empty(), "a faulted save must not write");
        assert_eq!(s.stats().faulted, 1);
        s.save("k", 2).unwrap();
        assert_eq!(s.load("k").unwrap(), Some(2));
    }
}
