//! A simulated document store: the persistence backend the persistence
//! concern saves object snapshots into (the role a persistence service
//! or entity-bean container plays in a J2EE-era platform).
//!
//! `save` and `load` are fallible: they are fault-injection choke
//! points (`store.save` / `store.load`). A store built standalone via
//! [`StoreService::new`] has no injector attached and never fails.
//!
//! ## Durable mode
//!
//! [`StoreService::persist_to`] (available when the snapshot type
//! implements [`StoreBytes`]) attaches a backing directory: every save
//! writes through to one checksummed `.doc` file per key (atomic
//! tmp-file + rename), and opening the same directory later recovers
//! the surviving documents. A torn write — simulated by arming the
//! [`FAULT_POINT_STORE_TORN`] fault hook, which makes the next
//! write-through crash mid-file — fails the checksum on recovery and
//! the document is discarded, exactly like a torn WAL record in
//! `comet-repo`.

use crate::error::MiddlewareError;
use crate::faults::{FaultHook, FaultInjector, FaultOp};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Fault point name: the next durable write-through is torn mid-file
/// ([`FaultHook`] on [`StoreService`]).
pub const FAULT_POINT_STORE_TORN: &str = "store.torn";

/// Store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Documents written (including overwrites).
    pub saves: u64,
    /// Successful loads.
    pub loads: u64,
    /// Loads that found nothing.
    pub misses: u64,
    /// Saves or loads rejected by an injected fault.
    pub faulted: u64,
}

/// Byte codec for snapshot types the durable mode can persist. The
/// decode side returns `None` on malformed bytes — corruption turns
/// into a skipped document, never a panic.
pub trait StoreBytes: Sized {
    /// Serializes the snapshot.
    fn to_store_bytes(&self) -> Vec<u8>;
    /// Deserializes a snapshot, or `None` when the bytes are invalid.
    fn from_store_bytes(bytes: &[u8]) -> Option<Self>;
}

impl StoreBytes for String {
    fn to_store_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }

    fn from_store_bytes(bytes: &[u8]) -> Option<String> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl StoreBytes for i64 {
    fn to_store_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }

    fn from_store_bytes(bytes: &[u8]) -> Option<i64> {
        Some(i64::from_le_bytes(bytes.try_into().ok()?))
    }
}

/// FNV-1a 64 (local copy: `comet-repo` sits above this crate in the
/// dependency order, so the hash cannot be imported from there).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Durable-mode state. The codec is captured as monomorphized function
/// pointers when [`StoreService::persist_to`] is called, so the plain
/// `save`/`load` API keeps working for snapshot types that are not
/// [`StoreBytes`] (they just cannot enter durable mode).
struct DurableState<V> {
    dir: PathBuf,
    /// Armed via [`FAULT_POINT_STORE_TORN`]: the next write-through
    /// stops mid-file.
    torn_next: bool,
    encode: fn(&str, &V) -> Vec<u8>,
}

impl<V> Clone for DurableState<V> {
    fn clone(&self) -> Self {
        DurableState { dir: self.dir.clone(), torn_next: self.torn_next, encode: self.encode }
    }
}

impl<V> std::fmt::Debug for DurableState<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableState")
            .field("dir", &self.dir)
            .field("torn_next", &self.torn_next)
            .finish_non_exhaustive()
    }
}

/// A key-value document store, generic over the snapshot type (the
/// interpreter stores its runtime values).
#[derive(Debug, Clone, Default)]
pub struct StoreService<V> {
    documents: BTreeMap<String, V>,
    stats: StoreStats,
    faults: Option<Rc<RefCell<FaultInjector>>>,
    durable: Option<DurableState<V>>,
}

impl<V: Clone> StoreService<V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        StoreService {
            documents: BTreeMap::new(),
            stats: StoreStats::default(),
            faults: None,
            durable: None,
        }
    }

    pub(crate) fn attach_faults(&mut self, faults: Rc<RefCell<FaultInjector>>) {
        self.faults = Some(faults);
    }

    fn check(&mut self, op: FaultOp) -> Result<(), MiddlewareError> {
        if let Some(faults) = &self.faults {
            if let Err(e) = faults.borrow_mut().check(op, &[]) {
                self.stats.faulted += 1;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<&str> {
        self.documents.keys().map(String::as_str).collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// True when a backing directory is attached.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }
}

impl<V: Clone + StoreBytes> StoreService<V> {
    /// Attaches a backing directory (created if absent): documents that
    /// survived in it are recovered into the store first (a torn or
    /// corrupt `.doc` file is skipped), then every save writes through.
    /// Returns the number of documents recovered.
    ///
    /// # Errors
    /// Fails on I/O errors other than torn/corrupt document files.
    pub fn persist_to(&mut self, dir: &Path) -> Result<usize, MiddlewareError> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let mut recovered = 0;
        let entries = std::fs::read_dir(dir).map_err(io_err)?;
        for entry in entries {
            let path = entry.map_err(io_err)?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("doc") {
                continue;
            }
            let bytes = std::fs::read(&path).map_err(io_err)?;
            if let Some((key, value)) = decode_doc::<V>(&bytes) {
                self.documents.insert(key, value);
                recovered += 1;
            }
            // else: torn write from a crash — the document never
            // happened; leave the file to be overwritten by later saves.
        }
        self.durable =
            Some(DurableState { dir: dir.to_owned(), torn_next: false, encode: encode_doc::<V> });
        Ok(recovered)
    }
}

impl<V: Clone> StoreService<V> {
    /// Writes (or overwrites) a document.
    ///
    /// # Errors
    /// Fails when the fault injector perturbs `store.save` (the
    /// document is then *not* written) or on a durable-backend I/O
    /// error.
    pub fn save(&mut self, key: &str, snapshot: V) -> Result<(), MiddlewareError> {
        self.check(FaultOp::StoreSave)?;
        self.write_through(key, &snapshot)?;
        self.documents.insert(key.to_owned(), snapshot);
        self.stats.saves += 1;
        Ok(())
    }

    /// Reads a document.
    ///
    /// # Errors
    /// Fails only when the fault injector perturbs `store.load`.
    pub fn load(&mut self, key: &str) -> Result<Option<V>, MiddlewareError> {
        self.check(FaultOp::StoreLoad)?;
        match self.documents.get(key) {
            Some(v) => {
                self.stats.loads += 1;
                Ok(Some(v.clone()))
            }
            None => {
                self.stats.misses += 1;
                Ok(None)
            }
        }
    }

    /// Deletes a document (and its backing file); returns whether it
    /// existed.
    pub fn delete(&mut self, key: &str) -> bool {
        if let Some(state) = &self.durable {
            let _ = std::fs::remove_file(doc_path(&state.dir, key));
        }
        self.documents.remove(key).is_some()
    }

    fn write_through(&mut self, key: &str, value: &V) -> Result<(), MiddlewareError> {
        let Some(state) = &mut self.durable else { return Ok(()) };
        let frame = (state.encode)(key, value);
        let path = doc_path(&state.dir, key);
        if std::mem::take(&mut state.torn_next) {
            // Simulated crash mid-write: half the frame lands, straight
            // into the final path (no atomic rename happened). The save
            // itself reports success — the process "died" after the
            // in-memory apply; recovery discards the torn file.
            std::fs::write(&path, &frame[..frame.len() / 2]).map_err(io_err)?;
            return Ok(());
        }
        let tmp = path.with_extension("doc.tmp");
        std::fs::write(&tmp, &frame).map_err(io_err)?;
        std::fs::rename(&tmp, &path).map_err(io_err)?;
        Ok(())
    }
}

/// Arming [`FAULT_POINT_STORE_TORN`] makes the next durable
/// write-through stop mid-file; without a backing directory attached
/// there is nothing to tear and arming fails.
impl<V: Clone> FaultHook for StoreService<V> {
    fn fault_points(&self) -> Vec<&'static str> {
        vec![FAULT_POINT_STORE_TORN]
    }

    fn arm_fault(&mut self, point: &str) -> Result<(), MiddlewareError> {
        if point != FAULT_POINT_STORE_TORN {
            return Err(MiddlewareError::UnknownFaultPoint(point.to_owned()));
        }
        match &mut self.durable {
            Some(state) => {
                state.torn_next = true;
                Ok(())
            }
            None => {
                Err(MiddlewareError::UnknownFaultPoint(format!("{point} (store is not durable)")))
            }
        }
    }
}

fn io_err(e: std::io::Error) -> MiddlewareError {
    MiddlewareError::StorageIo(e.to_string())
}

/// One file per key; the name is the hex-encoded key (keys like
/// `model/v1` are not filesystem-safe verbatim).
fn doc_path(dir: &Path, key: &str) -> PathBuf {
    let mut name = String::with_capacity(key.len() * 2 + 4);
    for b in key.as_bytes() {
        name.push_str(&format!("{b:02x}"));
    }
    name.push_str(".doc");
    dir.join(name)
}

/// Frame: `[u32 key len][key][u32 value len][u64 fnv1a64(value)][value]`
/// — the embedded key makes files self-describing, the checksum makes
/// torn writes detectable.
fn encode_doc<V: StoreBytes>(key: &str, value: &V) -> Vec<u8> {
    let value = value.to_store_bytes();
    let mut out = Vec::with_capacity(16 + key.len() + value.len());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&value).to_le_bytes());
    out.extend_from_slice(&value);
    out
}

fn decode_doc<V: StoreBytes>(bytes: &[u8]) -> Option<(String, V)> {
    let key_len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let key = std::str::from_utf8(bytes.get(4..4 + key_len)?).ok()?;
    let rest = bytes.get(4 + key_len..)?;
    let value_len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
    let checksum = u64::from_le_bytes(rest.get(4..12)?.try_into().ok()?);
    let value = rest.get(12..12 + value_len)?;
    if rest.len() != 12 + value_len || fnv1a64(value) != checksum {
        return None;
    }
    Some((key.to_owned(), V::from_store_bytes(value)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::faults::{FaultKind, FaultPlan};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("comet-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_delete() {
        let mut s: StoreService<i64> = StoreService::new();
        assert!(s.is_empty());
        s.save("a/1", 10).unwrap();
        s.save("a/1", 20).unwrap(); // overwrite
        s.save("a/2", 30).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.load("a/1").unwrap(), Some(20));
        assert_eq!(s.load("ghost").unwrap(), None);
        assert_eq!(s.keys(), vec!["a/1", "a/2"]);
        assert!(s.delete("a/1"));
        assert!(!s.delete("a/1"));
        let st = s.stats();
        assert_eq!((st.saves, st.loads, st.misses, st.faulted), (3, 1, 1, 0));
    }

    #[test]
    fn faulted_save_writes_nothing() {
        let clock = Rc::new(RefCell::new(SimClock::default()));
        let faults = Rc::new(RefCell::new(FaultInjector::new(clock, 1)));
        faults.borrow_mut().install_plan(FaultPlan::new(1).at(
            FaultOp::StoreSave,
            1,
            FaultKind::Transient,
        ));
        let mut s: StoreService<i64> = StoreService::new();
        s.attach_faults(faults);
        let err = s.save("k", 1).unwrap_err();
        assert!(matches!(err, MiddlewareError::FaultInjected { ref op } if op == "store.save"));
        assert!(s.is_empty(), "a faulted save must not write");
        assert_eq!(s.stats().faulted, 1);
        s.save("k", 2).unwrap();
        assert_eq!(s.load("k").unwrap(), Some(2));
    }

    #[test]
    fn durable_store_recovers_documents_on_reopen() {
        let dir = tmp("reopen");
        let mut s: StoreService<String> = StoreService::new();
        s.persist_to(&dir).unwrap();
        s.save("model/v1", "<xmi v1/>".to_owned()).unwrap();
        s.save("model/v2", "<xmi v2/>".to_owned()).unwrap();
        s.save("model/head", "<xmi v2/>".to_owned()).unwrap();
        assert!(s.delete("model/v1"));
        drop(s);
        let mut s: StoreService<String> = StoreService::new();
        let recovered = s.persist_to(&dir).unwrap();
        assert_eq!(recovered, 2);
        assert_eq!(s.keys(), vec!["model/head", "model/v2"]);
        assert_eq!(s.load("model/v2").unwrap().as_deref(), Some("<xmi v2/>"));
        assert_eq!(s.load("model/v1").unwrap(), None);
    }

    #[test]
    fn torn_write_through_is_discarded_on_recovery() {
        let dir = tmp("torn");
        let mut s: StoreService<String> = StoreService::new();
        s.persist_to(&dir).unwrap();
        s.save("kept", "survives".to_owned()).unwrap();
        s.arm_fault(FAULT_POINT_STORE_TORN).unwrap();
        // The torn save still "succeeds" — the simulated crash happens
        // after the in-memory apply — so memory and disk now disagree.
        s.save("lost", "never lands".to_owned()).unwrap();
        assert_eq!(s.load("lost").unwrap().as_deref(), Some("never lands"));
        drop(s);
        let mut s: StoreService<String> = StoreService::new();
        let recovered = s.persist_to(&dir).unwrap();
        assert_eq!(recovered, 1, "the torn document must not recover");
        assert_eq!(s.keys(), vec!["kept"]);
        // The torn file's slot is clean again: a retry of the save
        // lands and survives the next reopen.
        s.save("lost", "second try".to_owned()).unwrap();
        drop(s);
        let mut s: StoreService<String> = StoreService::new();
        assert_eq!(s.persist_to(&dir).unwrap(), 2);
        assert_eq!(s.load("lost").unwrap().as_deref(), Some("second try"));
    }

    #[test]
    fn torn_fault_point_requires_durable_mode() {
        let mut s: StoreService<String> = StoreService::new();
        assert_eq!(s.fault_points(), vec![FAULT_POINT_STORE_TORN]);
        assert!(matches!(
            s.arm_fault(FAULT_POINT_STORE_TORN),
            Err(MiddlewareError::UnknownFaultPoint(_))
        ));
        assert!(matches!(s.arm_fault("store.meteor"), Err(MiddlewareError::UnknownFaultPoint(_))));
        assert!(!s.is_durable());
        s.persist_to(&tmp("arm")).unwrap();
        assert!(s.is_durable());
        s.arm_fault(FAULT_POINT_STORE_TORN).unwrap();
    }
}
