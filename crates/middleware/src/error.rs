//! Error type shared by the middleware services.

use std::error::Error;
use std::fmt;

/// Failures reported by the simulated middleware services.
#[derive(Debug, Clone, PartialEq)]
pub enum MiddlewareError {
    /// A node name does not exist on the bus.
    UnknownNode(String),
    /// A message was lost by injected failure.
    MessageLost {
        /// Sender node.
        from: String,
        /// Receiver node.
        to: String,
    },
    /// Naming lookup failed.
    NameNotBound(String),
    /// A name is already registered.
    NameAlreadyBound(String),
    /// A lock is held by a conflicting owner.
    LockConflict {
        /// The lock name.
        lock: String,
        /// Owner currently holding it.
        held_by: u64,
        /// Owner requesting it.
        requested_by: u64,
    },
    /// Granting the lock would close a wait-for cycle (deadlock).
    Deadlock {
        /// The lock name.
        lock: String,
    },
    /// Releasing a lock not held by the caller.
    NotLockOwner {
        /// The lock name.
        lock: String,
    },
    /// A transaction id does not resolve to an active transaction.
    NoSuchTransaction(u64),
    /// An operation requires an active transaction and none exists.
    NoActiveTransaction,
    /// The transaction was already committed or rolled back.
    TransactionFinished(u64),
    /// A 2PC participant voted to abort.
    VotedAbort {
        /// The participant node.
        node: String,
    },
    /// Access denied by the security manager.
    AccessDenied {
        /// The principal attempting access (empty when unauthenticated).
        principal: String,
        /// Required role.
        role: String,
        /// Resource being accessed.
        resource: String,
    },
    /// No principal is logged in.
    NotAuthenticated,
    /// A principal name is unknown to the security manager.
    UnknownPrincipal(String),
    /// A transient fault was injected at a middleware choke point.
    FaultInjected {
        /// The perturbed operation (e.g. `bus.send`).
        op: String,
    },
    /// The target node is partitioned away from the network.
    NodePartitioned {
        /// The partitioned node.
        node: String,
    },
    /// The target node has crashed and not yet healed.
    NodeCrashed {
        /// The crashed node.
        node: String,
    },
    /// A deadline enforced by the fault-tolerance concern expired.
    DeadlineExceeded {
        /// The guarded join point (`Class.method`).
        callee: String,
        /// Sim-µs elapsed when the deadline check fired.
        elapsed_us: u64,
        /// The configured deadline in sim-µs.
        deadline_us: u64,
    },
    /// A circuit breaker is open and rejected the call.
    CircuitOpen {
        /// The guarded join point (`Class.method`).
        callee: String,
    },
    /// An unknown fault point was passed to a fault hook.
    UnknownFaultPoint(String),
    /// The durable store backend failed an I/O operation.
    StorageIo(String),
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            MiddlewareError::MessageLost { from, to } => {
                write!(f, "message from `{from}` to `{to}` was lost")
            }
            MiddlewareError::NameNotBound(n) => write!(f, "name `{n}` is not bound"),
            MiddlewareError::NameAlreadyBound(n) => write!(f, "name `{n}` is already bound"),
            MiddlewareError::LockConflict { lock, held_by, requested_by } => {
                write!(f, "lock `{lock}` held by owner {held_by}, requested by {requested_by}")
            }
            MiddlewareError::Deadlock { lock } => {
                write!(f, "acquiring lock `{lock}` would deadlock")
            }
            MiddlewareError::NotLockOwner { lock } => {
                write!(f, "caller does not hold lock `{lock}`")
            }
            MiddlewareError::NoSuchTransaction(id) => write!(f, "no such transaction {id}"),
            MiddlewareError::NoActiveTransaction => write!(f, "no active transaction"),
            MiddlewareError::TransactionFinished(id) => {
                write!(f, "transaction {id} already finished")
            }
            MiddlewareError::VotedAbort { node } => {
                write!(f, "participant `{node}` voted abort")
            }
            MiddlewareError::AccessDenied { principal, role, resource } => write!(
                f,
                "access denied for `{principal}` to `{resource}` (requires role `{role}`)"
            ),
            MiddlewareError::NotAuthenticated => write!(f, "no principal is authenticated"),
            MiddlewareError::UnknownPrincipal(p) => write!(f, "unknown principal `{p}`"),
            MiddlewareError::FaultInjected { op } => {
                write!(f, "transient fault injected at `{op}`")
            }
            MiddlewareError::NodePartitioned { node } => {
                write!(f, "node `{node}` is partitioned")
            }
            MiddlewareError::NodeCrashed { node } => write!(f, "node `{node}` has crashed"),
            MiddlewareError::DeadlineExceeded { callee, elapsed_us, deadline_us } => write!(
                f,
                "deadline exceeded at `{callee}` ({elapsed_us}µs elapsed, limit {deadline_us}µs)"
            ),
            MiddlewareError::CircuitOpen { callee } => {
                write!(f, "circuit open for `{callee}`")
            }
            MiddlewareError::UnknownFaultPoint(p) => write!(f, "unknown fault point `{p}`"),
            MiddlewareError::StorageIo(detail) => write!(f, "durable store i/o: {detail}"),
        }
    }
}

impl Error for MiddlewareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        assert_eq!(MiddlewareError::UnknownNode("x".into()).to_string(), "unknown node `x`");
        assert!(MiddlewareError::AccessDenied {
            principal: "bob".into(),
            role: "teller".into(),
            resource: "Bank.transfer".into(),
        }
        .to_string()
        .contains("requires role"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<MiddlewareError>();
    }
}
