//! Exclusive, reentrant named locks with wait-for-graph deadlock
//! detection. Owners are opaque `u64`s (the interpreter uses transaction
//! ids or a context id).

use crate::error::MiddlewareError;
use std::collections::BTreeMap;

/// Lock-manager statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStats {
    /// Successful acquisitions (including reentrant ones).
    pub acquired: u64,
    /// Conflicts reported.
    pub conflicts: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
}

#[derive(Debug, Clone)]
struct Held {
    owner: u64,
    depth: u32,
}

/// The lock manager.
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    held: BTreeMap<String, Held>,
    // waiter -> set of owners it waits for (one edge per attempted lock).
    wait_for: BTreeMap<u64, Vec<u64>>,
    stats: LockStats,
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire `lock` for `owner` without blocking.
    /// Reentrant: an owner may re-acquire its own lock (depth counted).
    ///
    /// # Errors
    /// [`MiddlewareError::LockConflict`] when another owner holds it;
    /// [`MiddlewareError::Deadlock`] when recording the wait edge would
    /// close a cycle in the wait-for graph.
    pub fn try_acquire(&mut self, lock: &str, owner: u64) -> Result<(), MiddlewareError> {
        match self.held.get_mut(lock) {
            None => {
                self.held.insert(lock.to_owned(), Held { owner, depth: 1 });
                self.wait_for.remove(&owner);
                self.stats.acquired += 1;
                Ok(())
            }
            Some(h) if h.owner == owner => {
                h.depth += 1;
                self.stats.acquired += 1;
                Ok(())
            }
            Some(h) => {
                let holder = h.owner;
                // Record the wait edge, then check for a cycle.
                self.wait_for.entry(owner).or_default().push(holder);
                if self.has_cycle(owner) {
                    self.stats.deadlocks += 1;
                    // Withdraw the edge: the caller must abort, not wait.
                    if let Some(edges) = self.wait_for.get_mut(&owner) {
                        edges.pop();
                        if edges.is_empty() {
                            self.wait_for.remove(&owner);
                        }
                    }
                    return Err(MiddlewareError::Deadlock { lock: lock.to_owned() });
                }
                self.stats.conflicts += 1;
                Err(MiddlewareError::LockConflict {
                    lock: lock.to_owned(),
                    held_by: holder,
                    requested_by: owner,
                })
            }
        }
    }

    fn has_cycle(&self, start: u64) -> bool {
        // DFS from `start` through wait_for edges and holder->waiting
        // relationships; a path back to `start` is a deadlock.
        let mut stack: Vec<u64> = self.wait_for.get(&start).cloned().unwrap_or_default();
        let mut seen = Vec::new();
        while let Some(cur) = stack.pop() {
            if cur == start {
                return true;
            }
            if seen.contains(&cur) {
                continue;
            }
            seen.push(cur);
            if let Some(next) = self.wait_for.get(&cur) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Releases one level of `lock` held by `owner`.
    ///
    /// # Errors
    /// Fails when the caller does not hold the lock.
    pub fn release(&mut self, lock: &str, owner: u64) -> Result<(), MiddlewareError> {
        match self.held.get_mut(lock) {
            Some(h) if h.owner == owner => {
                h.depth -= 1;
                if h.depth == 0 {
                    self.held.remove(lock);
                }
                Ok(())
            }
            _ => Err(MiddlewareError::NotLockOwner { lock: lock.to_owned() }),
        }
    }

    /// Releases every lock held by `owner` (transaction end). Returns the
    /// number of locks released.
    pub fn release_all(&mut self, owner: u64) -> usize {
        let doomed: Vec<String> =
            self.held.iter().filter(|(_, h)| h.owner == owner).map(|(k, _)| k.clone()).collect();
        for k in &doomed {
            self.held.remove(k);
        }
        self.wait_for.remove(&owner);
        doomed.len()
    }

    /// The owner currently holding `lock`, if any.
    pub fn holder(&self, lock: &str) -> Option<u64> {
        self.held.get(lock).map(|h| h.owner)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LockStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reentrant() {
        let mut lm = LockManager::new();
        lm.try_acquire("a", 1).unwrap();
        lm.try_acquire("a", 1).unwrap(); // reentrant
        assert_eq!(lm.holder("a"), Some(1));
        lm.release("a", 1).unwrap();
        assert_eq!(lm.holder("a"), Some(1)); // still held (depth 1)
        lm.release("a", 1).unwrap();
        assert_eq!(lm.holder("a"), None);
        assert_eq!(lm.stats().acquired, 2);
    }

    #[test]
    fn conflict_reported() {
        let mut lm = LockManager::new();
        lm.try_acquire("a", 1).unwrap();
        let err = lm.try_acquire("a", 2).unwrap_err();
        assert!(matches!(err, MiddlewareError::LockConflict { held_by: 1, requested_by: 2, .. }));
        assert_eq!(lm.stats().conflicts, 1);
    }

    #[test]
    fn deadlock_detected() {
        let mut lm = LockManager::new();
        lm.try_acquire("a", 1).unwrap();
        lm.try_acquire("b", 2).unwrap();
        // 2 waits for a (held by 1)...
        assert!(matches!(lm.try_acquire("a", 2), Err(MiddlewareError::LockConflict { .. })));
        // ...and 1 waiting for b (held by 2) closes the cycle.
        assert!(matches!(lm.try_acquire("b", 1), Err(MiddlewareError::Deadlock { .. })));
        assert_eq!(lm.stats().deadlocks, 1);
    }

    #[test]
    fn release_all_clears_owner() {
        let mut lm = LockManager::new();
        lm.try_acquire("a", 1).unwrap();
        lm.try_acquire("b", 1).unwrap();
        lm.try_acquire("c", 2).unwrap();
        assert_eq!(lm.release_all(1), 2);
        assert_eq!(lm.holder("a"), None);
        assert_eq!(lm.holder("c"), Some(2));
        assert_eq!(lm.release_all(99), 0);
    }

    #[test]
    fn release_by_non_owner_rejected() {
        let mut lm = LockManager::new();
        lm.try_acquire("a", 1).unwrap();
        assert!(matches!(lm.release("a", 2), Err(MiddlewareError::NotLockOwner { .. })));
        assert!(matches!(lm.release("ghost", 1), Err(MiddlewareError::NotLockOwner { .. })));
    }

    #[test]
    fn conflict_then_release_then_acquire() {
        let mut lm = LockManager::new();
        lm.try_acquire("a", 1).unwrap();
        let _ = lm.try_acquire("a", 2);
        lm.release("a", 1).unwrap();
        lm.try_acquire("a", 2).unwrap();
        assert_eq!(lm.holder("a"), Some(2));
    }
}
