//! # comet-middleware — deterministic simulated middleware
//!
//! The paper's running example refines an application along three
//! middleware-service concern dimensions: **distribution**,
//! **transactions** and **security** (Section 2, Fig. 2). For the woven
//! aspects to have *observable* behaviour, this crate provides a
//! deterministic, single-process simulation of the middleware services a
//! CORBA/J2EE-era platform would supply:
//!
//! * [`MessageBus`] — named nodes, seeded per-link latency, optional
//!   message-loss injection, traffic statistics;
//! * [`NamingService`] — object registration and lookup;
//! * [`LockManager`] — exclusive, reentrant named locks with wait-for
//!   deadlock detection;
//! * [`TransactionManager`] — flat transactions with undo logs (generic
//!   over the stored value type), two-phase commit across nodes with
//!   vote-failure injection;
//! * [`SecurityManager`] — principals, roles, ACL checks, an audit log;
//! * [`LogService`] — levelled log records;
//! * [`SimClock`] — the logical clock everything advances.
//!
//! Everything is bundled in [`Middleware`], which `comet-interp` drives
//! through intrinsics. Determinism: all randomness comes from a single
//! seeded [`rand::rngs::StdRng`], so a given seed reproduces byte-equal
//! traces.
//!
//! ## Example
//!
//! ```
//! use comet_middleware::{Middleware, MiddlewareConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
//! mw.bus.add_node("client");
//! mw.bus.add_node("server");
//! let latency = mw.bus.send("client", "server", 128)?;
//! assert!(latency > 0);
//! let tx = mw.tx.begin("read-committed")?;
//! mw.tx.log_write(tx, 1, "balance", 100)?;
//! mw.tx.rollback(tx)?;
//! # Ok(())
//! # }
//! ```

mod bus;
mod clock;
mod error;
mod faults;
mod locks;
mod logging;
mod naming;
mod security;
mod store;
mod tx;

pub use bus::{BusStats, MessageBus};
pub use clock::SimClock;
pub use error::MiddlewareError;
pub use faults::{
    FaultEvent, FaultHook, FaultInjector, FaultKind, FaultLog, FaultOp, FaultPlan, FaultPlanError,
    FaultRecord, ScheduledFault,
};
pub use locks::{LockManager, LockStats};
pub use logging::{LogRecord, LogService};
pub use naming::{NamingService, Registration};
pub use security::{AuditEntry, SecurityManager};
pub use store::{StoreBytes, StoreService, StoreStats, FAULT_POINT_STORE_TORN};
pub use tx::{
    recover, RecoveredState, TransactionManager, TwoPhaseOutcome, TxId, TxStats, UndoEntry,
    WalRecord,
};

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of the simulated platform.
#[derive(Debug, Clone)]
pub struct MiddlewareConfig {
    /// RNG seed; equal seeds reproduce identical runs.
    pub seed: u64,
    /// Minimum one-way message latency in microseconds.
    pub min_latency_us: u64,
    /// Maximum one-way message latency in microseconds.
    pub max_latency_us: u64,
    /// Probability in [0, 1] that a message is lost.
    pub drop_probability: f64,
    /// Probability in [0, 1] that a 2PC participant votes abort.
    pub vote_abort_probability: f64,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            seed: 42,
            min_latency_us: 50,
            max_latency_us: 500,
            drop_probability: 0.0,
            vote_abort_probability: 0.0,
        }
    }
}

/// The full simulated platform, bundling every service around one clock
/// and one RNG. Generic over the value type `V` stored in transaction
/// undo logs (the interpreter instantiates it with its runtime value).
#[derive(Debug)]
pub struct Middleware<V: Clone> {
    /// The message bus.
    pub bus: MessageBus,
    /// The naming service.
    pub naming: NamingService,
    /// The lock manager.
    pub locks: LockManager,
    /// The transaction manager.
    pub tx: TransactionManager<V>,
    /// The security manager.
    pub security: SecurityManager,
    /// The log service.
    pub log: LogService,
    /// The document store (persistence concern).
    pub store: StoreService<V>,
    /// The fault injector shared by every service above.
    pub faults: Rc<RefCell<FaultInjector>>,
}

impl<V: Clone> Middleware<V> {
    /// Creates a platform from configuration.
    pub fn new(config: MiddlewareConfig) -> Self {
        let clock = Rc::new(RefCell::new(SimClock::default()));
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(config.seed)));
        let faults = Rc::new(RefCell::new(FaultInjector::new(Rc::clone(&clock), config.seed)));
        let mut naming = NamingService::default();
        naming.attach_faults(Rc::clone(&faults));
        let mut store = StoreService::new();
        store.attach_faults(Rc::clone(&faults));
        Middleware {
            bus: MessageBus::new(Rc::clone(&clock), Rc::clone(&rng), &config, Rc::clone(&faults)),
            naming,
            locks: LockManager::default(),
            tx: TransactionManager::new(
                config.vote_abort_probability,
                Rc::clone(&rng),
                Rc::clone(&faults),
            ),
            security: SecurityManager::default(),
            log: LogService::default(),
            store,
            faults,
        }
    }

    /// Current logical time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.bus.now_us()
    }

    /// Installs a fault plan on the shared injector (resets its log).
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.faults.borrow_mut().install_plan(plan);
    }

    /// Attaches a trace collector to the fault injector: from here on
    /// every fault-log record is mirrored into the trace as a
    /// `fault`-category event (survives later `install_fault_plan`s).
    pub fn attach_collector(&self, obs: comet_obs::Collector) {
        self.faults.borrow_mut().set_collector(obs);
    }

    /// A snapshot of the fault log.
    pub fn fault_log(&self) -> FaultLog {
        self.faults.borrow().log().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_latencies() {
        let mk = || {
            let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
            mw.bus.add_node("a");
            mw.bus.add_node("b");
            (0..10).map(|_| mw.bus.send("a", "b", 64).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn different_seed_changes_latencies() {
        let run = |seed| {
            let mut mw: Middleware<i64> =
                Middleware::new(MiddlewareConfig { seed, ..MiddlewareConfig::default() });
            mw.bus.add_node("a");
            mw.bus.add_node("b");
            (0..10).map(|_| mw.bus.send("a", "b", 64).unwrap()).collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn clock_advances_with_traffic() {
        let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
        mw.bus.add_node("a");
        mw.bus.add_node("b");
        let t0 = mw.now_us();
        mw.bus.send("a", "b", 8).unwrap();
        assert!(mw.now_us() > t0);
    }
}
