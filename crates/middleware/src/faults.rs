//! Deterministic fault injection for the simulated middleware.
//!
//! The paper's middleware services become interesting only under
//! adversity: the fault-tolerance concern (retry, deadline, circuit
//! breaker) has observable behaviour exactly when the platform
//! misbehaves. This module provides the misbehaviour, deterministically:
//!
//! * [`FaultPlan`] — a seeded description of *what* to inject: per-
//!   operation transient-error probabilities, a latency-spike
//!   probability, and an explicit schedule ("the 3rd `tx.commit`
//!   fails"). No wall clock is involved anywhere; latency faults advance
//!   the shared [`SimClock`], and partition/crash faults heal when the
//!   sim clock passes their deadline.
//! * [`FaultInjector`] — the runtime: owns its own [`StdRng`] seeded
//!   from the plan (so fault draws never perturb the bus latency
//!   stream), tracks partitioned/crashed nodes, arms one-shot faults
//!   through the [`FaultHook`] trait, and records every injection in a
//!   [`FaultLog`].
//! * [`FaultLog`] — an append-only, `PartialEq`-comparable record of
//!   every injected fault and circuit-breaker transition; two runs with
//!   the same seed produce identical logs, which the chaos suite
//!   asserts.
//! * The per-callee circuit-breaker registry driven by the `ft.*`
//!   interpreter intrinsics (closed → open after N consecutive
//!   failures → half-open probe after a sim-time cooldown).
//!
//! The services consult the injector at their choke points —
//! `bus.send` (and therefore `round_trip`), `store.save`/`store.load`,
//! `tx.commit`, `naming.lookup`. With no plan installed, no armed
//! faults, and no partitions the check is a single branch, so the
//! fault-free path stays effectively free.

use crate::clock::SimClock;
use crate::error::MiddlewareError;
use comet_obs::Collector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// The injectable middleware operations (choke points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOp {
    /// `MessageBus::send` (and via it `round_trip`).
    BusSend,
    /// `StoreService::save`.
    StoreSave,
    /// `StoreService::load`.
    StoreLoad,
    /// `TransactionManager::commit`.
    TxCommit,
    /// `NamingService::lookup`.
    NamingLookup,
}

impl FaultOp {
    /// All choke points, in a fixed order.
    pub const ALL: [FaultOp; 5] = [
        FaultOp::BusSend,
        FaultOp::StoreSave,
        FaultOp::StoreLoad,
        FaultOp::TxCommit,
        FaultOp::NamingLookup,
    ];

    /// The stable dotted name used in plans, logs and fault hooks.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::BusSend => "bus.send",
            FaultOp::StoreSave => "store.save",
            FaultOp::StoreLoad => "store.load",
            FaultOp::TxCommit => "tx.commit",
            FaultOp::NamingLookup => "naming.lookup",
        }
    }

    /// Parses a dotted operation name.
    pub fn parse(name: &str) -> Option<FaultOp> {
        FaultOp::ALL.into_iter().find(|op| op.name() == name)
    }
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed fault to inject at a choke point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails once with a typed transient error.
    Transient,
    /// The operation succeeds but the sim clock jumps by this many µs.
    Latency(u64),
    /// The node becomes unreachable for `for_us` sim-µs (heals by time).
    Partition {
        /// The partitioned node.
        node: String,
        /// Sim-µs until the partition heals.
        for_us: u64,
    },
    /// The node crashes and stays down for `for_us` sim-µs.
    Crash {
        /// The crashed node.
        node: String,
        /// Sim-µs until the node restarts.
        for_us: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::Latency(us) => write!(f, "latency {us}"),
            FaultKind::Partition { node, for_us } => write!(f, "partition {node} {for_us}"),
            FaultKind::Crash { node, for_us } => write!(f, "crash {node} {for_us}"),
        }
    }
}

impl FaultKind {
    /// Parses the textual form used in plan files: `transient`,
    /// `latency <us>`, `partition <node> <us>`, `crash <node> <us>`.
    pub fn parse(text: &str) -> Result<FaultKind, FaultPlanError> {
        let mut parts = text.split_whitespace();
        let bad = || FaultPlanError::BadFaultKind(text.to_owned());
        match parts.next() {
            Some("transient") => Ok(FaultKind::Transient),
            Some("latency") => {
                let us = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                Ok(FaultKind::Latency(us))
            }
            Some(which @ ("partition" | "crash")) => {
                let node = parts.next().ok_or_else(bad)?.to_owned();
                let for_us = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                Ok(if which == "partition" {
                    FaultKind::Partition { node, for_us }
                } else {
                    FaultKind::Crash { node, for_us }
                })
            }
            _ => Err(bad()),
        }
    }
}

/// One scheduled fault: "the `occurrence`-th `op` suffers `kind`"
/// (1-based occurrence counting, per operation).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// The targeted choke point.
    pub op: FaultOp,
    /// 1-based occurrence index of that operation.
    pub occurrence: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// Errors parsing a fault-plan file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A line was not `key = value` or a `[section]` header.
    BadLine(String),
    /// An unknown operation name.
    UnknownOp(String),
    /// A value failed to parse as a number.
    BadValue(String),
    /// A fault-kind string failed to parse.
    BadFaultKind(String),
    /// A schedule key was not `<op>@<occurrence>`.
    BadScheduleKey(String),
    /// A key or section header appeared twice. The payload is the key
    /// (or `[section]`) as written; the message format is shared
    /// verbatim with the workload-plan parser in `comet-serve`.
    Duplicate(String),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BadLine(l) => write!(f, "unparseable plan line `{l}`"),
            FaultPlanError::UnknownOp(o) => write!(f, "unknown operation `{o}`"),
            FaultPlanError::BadValue(v) => write!(f, "bad numeric value `{v}`"),
            FaultPlanError::BadFaultKind(k) => write!(f, "bad fault kind `{k}`"),
            FaultPlanError::BadScheduleKey(k) => {
                write!(f, "bad schedule key `{k}` (want `<op>@<occurrence>`)")
            }
            FaultPlanError::Duplicate(k) => write!(f, "duplicate plan entry `{k}`"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic description of what to inject, either drawn per
/// operation from a seeded RNG or dictated by an explicit schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG.
    pub seed: u64,
    /// Per-operation probability of a transient failure.
    pub probabilities: BTreeMap<FaultOp, f64>,
    /// Probability that a `bus.send` suffers a latency spike.
    pub latency_probability: f64,
    /// Size of an injected latency spike in sim-µs.
    pub latency_spike_us: u64,
    /// Explicitly scheduled faults (checked before the probability draw).
    pub schedule: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until configured).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            probabilities: BTreeMap::new(),
            latency_probability: 0.0,
            latency_spike_us: 0,
            schedule: Vec::new(),
        }
    }

    /// Sets the transient-failure probability of one operation.
    pub fn with_probability(mut self, op: FaultOp, p: f64) -> Self {
        self.probabilities.insert(op, p.clamp(0.0, 1.0));
        self
    }

    /// Sets the latency-spike draw for `bus.send`.
    pub fn with_latency_spike(mut self, probability: f64, spike_us: u64) -> Self {
        self.latency_probability = probability.clamp(0.0, 1.0);
        self.latency_spike_us = spike_us;
        self
    }

    /// Schedules `kind` at the `occurrence`-th (1-based) `op`.
    pub fn at(mut self, op: FaultOp, occurrence: u64, kind: FaultKind) -> Self {
        self.schedule.push(ScheduledFault { op, occurrence, kind });
        self
    }

    /// True when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.schedule.is_empty()
            && self.latency_probability == 0.0
            && self.probabilities.values().all(|p| *p == 0.0)
    }

    /// Parses the TOML-subset plan format:
    ///
    /// ```toml
    /// seed = 7
    ///
    /// [probabilities]
    /// bus.send = 0.10
    /// tx.commit = 0.05
    ///
    /// [latency]
    /// probability = 0.05
    /// spike_us = 4000
    ///
    /// [schedule]
    /// tx.commit@1 = "transient"
    /// bus.send@3 = "partition server 3000"
    /// ```
    ///
    /// Only `key = value` lines, `[section]` headers, blank lines and
    /// `#` comments are understood (hand-rolled: the build carries no
    /// TOML dependency). Duplicate keys, repeated section headers, and
    /// trailing garbage after a header are rejected — a plan that pins
    /// a chaos run must have exactly one meaning.
    ///
    /// # Errors
    /// Returns a [`FaultPlanError`] describing the first bad line.
    pub fn parse_toml(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::new(0);
        let mut section = String::new();
        let mut seen_sections: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        let mut seen_keys: std::collections::BTreeSet<(String, String)> =
            std::collections::BTreeSet::new();
        for raw in text.lines() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                // A header must be exactly `[name]` — anything trailing
                // the `]` (or a missing one) is garbage, not a key line.
                let name = line
                    .strip_prefix('[')
                    .and_then(|l| l.strip_suffix(']'))
                    .map(str::trim)
                    .filter(|n| !n.is_empty() && !n.contains('[') && !n.contains(']'))
                    .ok_or_else(|| FaultPlanError::BadLine(line.to_owned()))?;
                if !seen_sections.insert(name.to_owned()) {
                    return Err(FaultPlanError::Duplicate(format!("[{name}]")));
                }
                section = name.to_owned();
                continue;
            }
            // Keys may be quoted (standard TOML requires it for dotted
            // names like `"tx.commit"`) or bare.
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().trim_matches('"'), v.trim().trim_matches('"')))
                .ok_or_else(|| FaultPlanError::BadLine(line.to_owned()))?;
            if !seen_keys.insert((section.clone(), key.to_owned())) {
                return Err(FaultPlanError::Duplicate(key.to_owned()));
            }
            match section.as_str() {
                "" => match key {
                    "seed" => {
                        plan.seed = value
                            .parse()
                            .map_err(|_| FaultPlanError::BadValue(value.to_owned()))?;
                    }
                    _ => return Err(FaultPlanError::BadLine(line.to_owned())),
                },
                "probabilities" => {
                    let op =
                        FaultOp::parse(key).ok_or_else(|| FaultPlanError::UnknownOp(key.into()))?;
                    let p: f64 =
                        value.parse().map_err(|_| FaultPlanError::BadValue(value.to_owned()))?;
                    plan.probabilities.insert(op, p.clamp(0.0, 1.0));
                }
                "latency" => {
                    let n: f64 =
                        value.parse().map_err(|_| FaultPlanError::BadValue(value.to_owned()))?;
                    match key {
                        "probability" => plan.latency_probability = n.clamp(0.0, 1.0),
                        "spike_us" => plan.latency_spike_us = n as u64,
                        _ => return Err(FaultPlanError::BadLine(line.to_owned())),
                    }
                }
                "schedule" => {
                    let (op_name, nth) = key
                        .split_once('@')
                        .ok_or_else(|| FaultPlanError::BadScheduleKey(key.to_owned()))?;
                    let op = FaultOp::parse(op_name)
                        .ok_or_else(|| FaultPlanError::UnknownOp(op_name.into()))?;
                    let occurrence: u64 =
                        nth.parse().map_err(|_| FaultPlanError::BadScheduleKey(key.to_owned()))?;
                    plan.schedule.push(ScheduledFault {
                        op,
                        occurrence,
                        kind: FaultKind::parse(value)?,
                    });
                }
                other => return Err(FaultPlanError::BadLine(format!("[{other}] {line}"))),
            }
        }
        Ok(plan)
    }
}

/// One event in the fault log.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A fault was injected at a choke point.
    Injected {
        /// Where.
        op: FaultOp,
        /// What.
        kind: FaultKind,
    },
    /// A one-shot armed fault (via [`FaultHook`]) fired.
    ArmedFired {
        /// The fault point that had been armed.
        point: String,
    },
    /// A partition or crash healed (sim clock passed its deadline).
    Healed {
        /// The node that came back.
        node: String,
    },
    /// A circuit breaker opened after reaching its failure threshold.
    BreakerOpened {
        /// The guarded callee.
        callee: String,
        /// Sim time at which a half-open probe becomes allowed.
        until_us: u64,
    },
    /// A breaker moved open → half-open (probe allowed).
    BreakerHalfOpen {
        /// The guarded callee.
        callee: String,
    },
    /// A breaker closed again after a successful probe.
    BreakerClosed {
        /// The guarded callee.
        callee: String,
    },
}

/// One timestamped fault-log record.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Sim time of the event in µs.
    pub at_us: u64,
    /// The event.
    pub event: FaultEvent,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<4} t={:>8}µs  ", self.seq, self.at_us)?;
        match &self.event {
            FaultEvent::Injected { op, kind } => write!(f, "inject {op}: {kind}"),
            FaultEvent::ArmedFired { point } => write!(f, "armed fault fired at {point}"),
            FaultEvent::Healed { node } => write!(f, "node {node} healed"),
            FaultEvent::BreakerOpened { callee, until_us } => {
                write!(f, "breaker {callee} OPEN until {until_us}µs")
            }
            FaultEvent::BreakerHalfOpen { callee } => write!(f, "breaker {callee} HALF-OPEN"),
            FaultEvent::BreakerClosed { callee } => write!(f, "breaker {callee} CLOSED"),
        }
    }
}

/// The append-only log of injected faults and breaker transitions.
/// Derives `PartialEq`: the chaos suite asserts byte-equal logs across
/// same-seed runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultLog {
    records: Vec<FaultRecord>,
}

impl FaultLog {
    /// All records, oldest first.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of injected faults at one choke point (excludes breaker
    /// transitions and heals).
    pub fn injected_at(&self, op: FaultOp) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(&r.event, FaultEvent::Injected { op: o, .. } if *o == op))
            .count()
    }

    /// Number of breaker-opened transitions.
    pub fn breaker_opens(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.event, FaultEvent::BreakerOpened { .. })).count()
    }

    /// Appends another log's records, renumbering their `seq` past this
    /// log's tail so the merged log stays monotonic. Sim times are kept
    /// as recorded — merged logs (e.g. per-tenant serving sessions)
    /// each ran on their own clock. Absorbing the same logs in the same
    /// order is pure, so shard-parallel runs that merge in tenant order
    /// agree byte for byte.
    pub fn absorb(&mut self, other: &FaultLog) {
        let base = self.records.len() as u64;
        self.records.extend(
            other
                .records
                .iter()
                .enumerate()
                .map(|(i, r)| FaultRecord { seq: base + i as u64, ..r.clone() }),
        );
    }
}

/// A component exposing named one-shot fault points. This is the single
/// injection API shared by the middleware runtime ([`FaultInjector`]:
/// points are the choke-point names) and the model repository
/// (`comet-repo`: `repo.commit` / `repo.undo`) — tests arm a point and
/// the next use of it fails with a typed error.
pub trait FaultHook {
    /// The fault points this component exposes.
    fn fault_points(&self) -> Vec<&'static str>;

    /// Arms `point` to fail on its next use.
    ///
    /// # Errors
    /// Fails when the point is not one of [`FaultHook::fault_points`].
    fn arm_fault(&mut self, point: &str) -> Result<(), MiddlewareError>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed { failures: u64 },
    Open { until_us: u64 },
    HalfOpen,
}

/// The runtime fault injector shared (via `Rc<RefCell<..>>`) by every
/// middleware service. See the module docs for the overall design.
#[derive(Debug)]
pub struct FaultInjector {
    clock: Rc<RefCell<SimClock>>,
    rng: StdRng,
    plan: Option<FaultPlan>,
    /// Per-operation occurrence counters (only maintained with a plan).
    counts: BTreeMap<FaultOp, u64>,
    /// node -> sim-µs heal deadline.
    partitioned: BTreeMap<String, u64>,
    /// node -> sim-µs restart deadline.
    crashed: BTreeMap<String, u64>,
    /// One-shot armed fault points (via [`FaultHook`]).
    armed: BTreeMap<String, u64>,
    breakers: BTreeMap<String, BreakerState>,
    log: FaultLog,
    seq: u64,
    /// Trace sink: every [`FaultRecord`] is mirrored as an obs event.
    /// Disabled by default; `install_plan` deliberately leaves it alone
    /// (the trace outlives plan swaps, unlike the log).
    obs: Collector,
}

impl FaultInjector {
    pub(crate) fn new(clock: Rc<RefCell<SimClock>>, default_seed: u64) -> Self {
        FaultInjector {
            clock,
            rng: StdRng::seed_from_u64(default_seed ^ 0x5fa17_u64),
            plan: None,
            counts: BTreeMap::new(),
            partitioned: BTreeMap::new(),
            crashed: BTreeMap::new(),
            armed: BTreeMap::new(),
            breakers: BTreeMap::new(),
            log: FaultLog::default(),
            seq: 0,
            obs: Collector::disabled(),
        }
    }

    /// Attaches a trace collector; every subsequent fault-log record is
    /// mirrored into it as a `fault`-category event.
    pub fn set_collector(&mut self, obs: Collector) {
        self.obs = obs;
    }

    /// Installs (or replaces) the fault plan, reseeding the private RNG
    /// from `plan.seed` and resetting counters, partitions, breakers and
    /// the log — a fresh deterministic run.
    pub fn install_plan(&mut self, plan: FaultPlan) {
        self.rng = StdRng::seed_from_u64(plan.seed);
        self.counts.clear();
        self.partitioned.clear();
        self.crashed.clear();
        self.breakers.clear();
        self.log = FaultLog::default();
        self.seq = 0;
        self.plan = Some(plan);
    }

    /// The installed plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// The fault log so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    fn now_us(&self) -> u64 {
        self.clock.borrow().now_us()
    }

    fn record(&mut self, event: FaultEvent) {
        let rec = FaultRecord { seq: self.seq, at_us: self.now_us(), event };
        self.seq += 1;
        if self.obs.is_enabled() {
            let (name, mut attrs): (&str, Vec<(String, String)>) = match &rec.event {
                FaultEvent::Injected { op, kind } => (
                    "fault.injected",
                    vec![("op".into(), op.to_string()), ("kind".into(), kind.to_string())],
                ),
                FaultEvent::ArmedFired { point } => {
                    ("fault.armed", vec![("point".into(), point.clone())])
                }
                FaultEvent::Healed { node } => {
                    ("fault.healed", vec![("node".into(), node.clone())])
                }
                FaultEvent::BreakerOpened { callee, until_us } => (
                    "breaker.opened",
                    vec![
                        ("callee".into(), callee.clone()),
                        ("until_us".into(), until_us.to_string()),
                    ],
                ),
                FaultEvent::BreakerHalfOpen { callee } => {
                    ("breaker.half_open", vec![("callee".into(), callee.clone())])
                }
                FaultEvent::BreakerClosed { callee } => {
                    ("breaker.closed", vec![("callee".into(), callee.clone())])
                }
            };
            attrs.push(("log_seq".into(), rec.seq.to_string()));
            self.obs.event("fault", name, rec.at_us, attrs);
        }
        self.log.records.push(rec);
    }

    /// Partitions `node` for `for_us` sim-µs (manual control, also used
    /// by scheduled `partition` faults).
    pub fn partition_node(&mut self, node: &str, for_us: u64) {
        let heal_at = self.now_us().saturating_add(for_us);
        self.partitioned.insert(node.to_owned(), heal_at);
    }

    /// Crashes `node` for `for_us` sim-µs.
    pub fn crash_node(&mut self, node: &str, for_us: u64) {
        let heal_at = self.now_us().saturating_add(for_us);
        self.crashed.insert(node.to_owned(), heal_at);
    }

    /// True when `node` is currently partitioned (ignores pending heals;
    /// call [`FaultInjector::check`] or let sim time pass to heal).
    pub fn is_partitioned(&self, node: &str) -> bool {
        self.partitioned.get(node).is_some_and(|&until| self.now_us() < until)
    }

    /// True when `node` is currently crashed.
    pub fn is_crashed(&self, node: &str) -> bool {
        self.crashed.get(node).is_some_and(|&until| self.now_us() < until)
    }

    /// Heals every partition and crash immediately.
    pub fn heal_all(&mut self) {
        let nodes: Vec<String> =
            self.partitioned.keys().chain(self.crashed.keys()).cloned().collect();
        self.partitioned.clear();
        self.crashed.clear();
        for node in nodes {
            self.record(FaultEvent::Healed { node });
        }
    }

    fn heal_expired(&mut self) {
        let now = self.now_us();
        let healed: Vec<String> = self
            .partitioned
            .iter()
            .chain(self.crashed.iter())
            .filter(|(_, &until)| now >= until)
            .map(|(n, _)| n.clone())
            .collect();
        if healed.is_empty() {
            return;
        }
        self.partitioned.retain(|_, &mut until| now < until);
        self.crashed.retain(|_, &mut until| now < until);
        for node in healed {
            self.record(FaultEvent::Healed { node });
        }
    }

    fn apply(&mut self, op: FaultOp, kind: FaultKind) -> Result<(), MiddlewareError> {
        self.record(FaultEvent::Injected { op, kind: kind.clone() });
        match kind {
            FaultKind::Transient => {
                Err(MiddlewareError::FaultInjected { op: op.name().to_owned() })
            }
            FaultKind::Latency(us) => {
                self.clock.borrow_mut().advance_us(us);
                Ok(())
            }
            FaultKind::Partition { node, for_us } => {
                self.partition_node(&node, for_us);
                Ok(())
            }
            FaultKind::Crash { node, for_us } => {
                self.crash_node(&node, for_us);
                Ok(())
            }
        }
    }

    /// The choke-point check. `nodes` lists the nodes the operation
    /// involves (sender and receiver for `bus.send`, empty elsewhere):
    /// the operation fails with a typed error when any of them is
    /// partitioned or crashed.
    ///
    /// # Errors
    /// A typed [`MiddlewareError`] when a fault fires.
    pub fn check(&mut self, op: FaultOp, nodes: &[&str]) -> Result<(), MiddlewareError> {
        // Fault-free fast path: nothing installed, armed or partitioned.
        if self.plan.is_none()
            && self.armed.is_empty()
            && self.partitioned.is_empty()
            && self.crashed.is_empty()
        {
            return Ok(());
        }
        self.heal_expired();
        if let Some(n) = self.armed.get_mut(op.name()) {
            *n -= 1;
            if *n == 0 {
                self.armed.remove(op.name());
            }
            self.record(FaultEvent::ArmedFired { point: op.name().to_owned() });
            return Err(MiddlewareError::FaultInjected { op: op.name().to_owned() });
        }
        if self.plan.is_some() {
            let count = self.counts.entry(op).or_insert(0);
            *count += 1;
            let occurrence = *count;
            let plan = self.plan.as_ref().expect("checked above");
            let scheduled = plan
                .schedule
                .iter()
                .find(|s| s.op == op && s.occurrence == occurrence)
                .map(|s| s.kind.clone());
            if let Some(kind) = scheduled {
                self.apply(op, kind)?;
            } else {
                // Probability-driven draws inject transients everywhere
                // and latency spikes on the bus; partitions and crashes
                // only ever come from the schedule (or manual control),
                // keeping the random stream one draw per probability.
                let transient_p = plan.probabilities.get(&op).copied().unwrap_or(0.0);
                if transient_p > 0.0 && self.rng.gen::<f64>() < transient_p {
                    self.apply(op, FaultKind::Transient)?;
                }
                let plan = self.plan.as_ref().expect("checked above");
                if op == FaultOp::BusSend && plan.latency_probability > 0.0 {
                    let (p, spike) = (plan.latency_probability, plan.latency_spike_us);
                    if self.rng.gen::<f64>() < p {
                        self.apply(op, FaultKind::Latency(spike))?;
                    }
                }
            }
        }
        for node in nodes {
            if self.is_crashed(node) {
                return Err(MiddlewareError::NodeCrashed { node: (*node).to_owned() });
            }
            if self.is_partitioned(node) {
                return Err(MiddlewareError::NodePartitioned { node: (*node).to_owned() });
            }
        }
        Ok(())
    }

    /// Draws the deterministic jitter term for `ft.backoff`: a value in
    /// `[0, cap]` from the injector's private RNG.
    pub fn jitter_us(&mut self, cap: u64) -> u64 {
        if cap == 0 {
            0
        } else {
            self.rng.gen_range(0..=cap)
        }
    }

    /// Circuit-breaker admission check for `callee`. Closed and
    /// half-open breakers admit the call; an open breaker admits nothing
    /// until `cooldown_us` of sim time has passed since it opened, at
    /// which point it moves to half-open and admits one probe.
    pub fn breaker_allow(&mut self, callee: &str) -> bool {
        let now = self.now_us();
        let state =
            *self.breakers.entry(callee.to_owned()).or_insert(BreakerState::Closed { failures: 0 });
        match state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until_us } => {
                if now >= until_us {
                    self.breakers.insert(callee.to_owned(), BreakerState::HalfOpen);
                    self.record(FaultEvent::BreakerHalfOpen { callee: callee.to_owned() });
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a call outcome for `callee`'s breaker. `threshold`
    /// consecutive failures open it for `cooldown_us` sim-µs; a
    /// half-open probe closes it on success and re-opens it on failure.
    pub fn breaker_record(&mut self, callee: &str, ok: bool, threshold: u64, cooldown_us: u64) {
        let now = self.now_us();
        let state =
            *self.breakers.entry(callee.to_owned()).or_insert(BreakerState::Closed { failures: 0 });
        let next = if ok {
            if !matches!(state, BreakerState::Closed { failures: 0 }) {
                if matches!(state, BreakerState::HalfOpen | BreakerState::Open { .. }) {
                    self.record(FaultEvent::BreakerClosed { callee: callee.to_owned() });
                }
                BreakerState::Closed { failures: 0 }
            } else {
                state
            }
        } else {
            match state {
                BreakerState::Closed { failures } => {
                    let failures = failures + 1;
                    if threshold > 0 && failures >= threshold {
                        let until_us = now.saturating_add(cooldown_us);
                        self.record(FaultEvent::BreakerOpened {
                            callee: callee.to_owned(),
                            until_us,
                        });
                        BreakerState::Open { until_us }
                    } else {
                        BreakerState::Closed { failures }
                    }
                }
                BreakerState::HalfOpen => {
                    let until_us = now.saturating_add(cooldown_us);
                    self.record(FaultEvent::BreakerOpened { callee: callee.to_owned(), until_us });
                    BreakerState::Open { until_us }
                }
                open @ BreakerState::Open { .. } => open,
            }
        };
        self.breakers.insert(callee.to_owned(), next);
    }

    /// The breaker state of `callee` as a display string
    /// (`closed` / `open` / `half-open`), or `None` if never touched.
    pub fn breaker_state(&self, callee: &str) -> Option<&'static str> {
        self.breakers.get(callee).map(|s| match s {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

impl FaultHook for FaultInjector {
    fn fault_points(&self) -> Vec<&'static str> {
        FaultOp::ALL.iter().map(|op| op.name()).collect()
    }

    fn arm_fault(&mut self, point: &str) -> Result<(), MiddlewareError> {
        if FaultOp::parse(point).is_none() {
            return Err(MiddlewareError::UnknownFaultPoint(point.to_owned()));
        }
        *self.armed.entry(point.to_owned()).or_insert(0) += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector() -> (FaultInjector, Rc<RefCell<SimClock>>) {
        let clock = Rc::new(RefCell::new(SimClock::default()));
        (FaultInjector::new(Rc::clone(&clock), 1), clock)
    }

    #[test]
    fn inert_without_plan() {
        let (mut inj, _clock) = injector();
        for _ in 0..100 {
            assert!(inj.check(FaultOp::BusSend, &["a", "b"]).is_ok());
        }
        assert!(inj.log().is_empty());
    }

    #[test]
    fn scheduled_fault_fires_at_exact_occurrence() {
        let (mut inj, _clock) = injector();
        inj.install_plan(FaultPlan::new(9).at(FaultOp::TxCommit, 2, FaultKind::Transient));
        assert!(inj.check(FaultOp::TxCommit, &[]).is_ok());
        let err = inj.check(FaultOp::TxCommit, &[]).unwrap_err();
        assert!(matches!(err, MiddlewareError::FaultInjected { ref op } if op == "tx.commit"));
        assert!(inj.check(FaultOp::TxCommit, &[]).is_ok());
        assert_eq!(inj.log().injected_at(FaultOp::TxCommit), 1);
    }

    #[test]
    fn latency_fault_advances_clock_not_error() {
        let (mut inj, clock) = injector();
        inj.install_plan(FaultPlan::new(9).at(FaultOp::BusSend, 1, FaultKind::Latency(500)));
        assert!(inj.check(FaultOp::BusSend, &[]).is_ok());
        assert_eq!(clock.borrow().now_us(), 500);
    }

    #[test]
    fn partition_heals_by_sim_time() {
        let (mut inj, clock) = injector();
        inj.install_plan(FaultPlan::new(9));
        inj.partition_node("server", 1000);
        assert!(matches!(
            inj.check(FaultOp::BusSend, &["client", "server"]),
            Err(MiddlewareError::NodePartitioned { .. })
        ));
        clock.borrow_mut().advance_us(1000);
        assert!(inj.check(FaultOp::BusSend, &["client", "server"]).is_ok());
        assert!(inj.log().records().iter().any(|r| matches!(
            &r.event,
            FaultEvent::Healed { node } if node == "server"
        )));
    }

    #[test]
    fn crash_reports_typed_error() {
        let (mut inj, _clock) = injector();
        inj.crash_node("server", 10_000);
        assert!(matches!(
            inj.check(FaultOp::BusSend, &["client", "server"]),
            Err(MiddlewareError::NodeCrashed { .. })
        ));
    }

    #[test]
    fn same_seed_same_log() {
        let run = || {
            let (mut inj, _clock) = injector();
            inj.install_plan(
                FaultPlan::new(33)
                    .with_probability(FaultOp::BusSend, 0.4)
                    .with_latency_spike(0.3, 200),
            );
            for _ in 0..50 {
                let _ = inj.check(FaultOp::BusSend, &["a", "b"]);
            }
            inj.log().clone()
        };
        let a = run();
        assert!(!a.is_empty(), "plan with p=0.4 over 50 draws should fire");
        assert_eq!(a, run());
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_half_open() {
        let (mut inj, clock) = injector();
        for _ in 0..3 {
            assert!(inj.breaker_allow("Bank.transfer"));
            inj.breaker_record("Bank.transfer", false, 3, 1000);
        }
        assert_eq!(inj.breaker_state("Bank.transfer"), Some("open"));
        assert!(!inj.breaker_allow("Bank.transfer"));
        clock.borrow_mut().advance_us(1000);
        assert!(inj.breaker_allow("Bank.transfer"), "half-open admits one probe");
        assert_eq!(inj.breaker_state("Bank.transfer"), Some("half-open"));
        inj.breaker_record("Bank.transfer", true, 3, 1000);
        assert_eq!(inj.breaker_state("Bank.transfer"), Some("closed"));
        assert_eq!(inj.log().breaker_opens(), 1);
    }

    #[test]
    fn half_open_failure_reopens() {
        let (mut inj, clock) = injector();
        inj.breaker_record("x", false, 1, 100);
        assert_eq!(inj.breaker_state("x"), Some("open"));
        clock.borrow_mut().advance_us(100);
        assert!(inj.breaker_allow("x"));
        inj.breaker_record("x", false, 1, 100);
        assert_eq!(inj.breaker_state("x"), Some("open"));
        assert_eq!(inj.log().breaker_opens(), 2);
    }

    #[test]
    fn fault_hook_arms_one_shot() {
        let (mut inj, _clock) = injector();
        assert!(inj.fault_points().contains(&"store.save"));
        assert!(matches!(
            inj.arm_fault("store.teleport"),
            Err(MiddlewareError::UnknownFaultPoint(_))
        ));
        inj.arm_fault("store.save").unwrap();
        assert!(matches!(
            inj.check(FaultOp::StoreSave, &[]),
            Err(MiddlewareError::FaultInjected { .. })
        ));
        assert!(inj.check(FaultOp::StoreSave, &[]).is_ok(), "one-shot");
    }

    #[test]
    fn absorb_renumbers_and_preserves_order() {
        let rec = |seq, at_us, node: &str| FaultRecord {
            seq,
            at_us,
            event: FaultEvent::Healed { node: node.into() },
        };
        let mut merged = FaultLog::default();
        let a = FaultLog { records: vec![rec(0, 10, "a0"), rec(1, 20, "a1")] };
        let b = FaultLog { records: vec![rec(0, 5, "b0")] };
        merged.absorb(&a);
        merged.absorb(&b);
        let seqs: Vec<u64> = merged.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
        // Per-log clocks are preserved, not rewritten.
        assert_eq!(merged.records()[2].at_us, 5);
        assert!(matches!(&merged.records()[2].event, FaultEvent::Healed { node } if node == "b0"));
        // Pure: same inputs, same order, same log.
        let mut again = FaultLog::default();
        again.absorb(&a);
        again.absorb(&b);
        assert_eq!(merged, again);
    }

    #[test]
    fn plan_toml_round_trip() {
        let text = r#"
            seed = 7            # comment
            [probabilities]
            bus.send = 0.10
            tx.commit = 0.05
            [latency]
            probability = 0.25
            spike_us = 4000
            [schedule]
            tx.commit@1 = "transient"
            bus.send@3 = "partition server 3000"
            store.save@2 = "latency 1000"
            naming.lookup@4 = "crash server 2500"
        "#;
        let plan = FaultPlan::parse_toml(text).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.probabilities[&FaultOp::BusSend], 0.10);
        assert_eq!(plan.latency_probability, 0.25);
        assert_eq!(plan.latency_spike_us, 4000);
        assert_eq!(plan.schedule.len(), 4);
        assert_eq!(
            plan.schedule[1],
            ScheduledFault {
                op: FaultOp::BusSend,
                occurrence: 3,
                kind: FaultKind::Partition { node: "server".into(), for_us: 3000 },
            }
        );
        assert!(!plan.is_inert());
        assert!(FaultPlan::new(1).is_inert());
    }

    #[test]
    fn plan_toml_rejects_garbage() {
        assert!(matches!(
            FaultPlan::parse_toml("[probabilities]\nbus.warp = 0.1"),
            Err(FaultPlanError::UnknownOp(_))
        ));
        assert!(matches!(
            FaultPlan::parse_toml("[schedule]\ntx.commit = \"transient\""),
            Err(FaultPlanError::BadScheduleKey(_))
        ));
        assert!(matches!(
            FaultPlan::parse_toml("[schedule]\ntx.commit@1 = \"meteor\""),
            Err(FaultPlanError::BadFaultKind(_))
        ));
        assert!(matches!(FaultPlan::parse_toml("wat"), Err(FaultPlanError::BadLine(_))));
    }

    #[test]
    fn plan_toml_rejects_duplicates_and_header_garbage() {
        let e =
            FaultPlan::parse_toml("[probabilities]\nbus.send = 0.1\nbus.send = 0.2").unwrap_err();
        assert!(matches!(&e, FaultPlanError::Duplicate(k) if k == "bus.send"));
        assert_eq!(e.to_string(), "duplicate plan entry `bus.send`");
        assert!(matches!(
            FaultPlan::parse_toml("seed = 1\nseed = 2"),
            Err(FaultPlanError::Duplicate(k)) if k == "seed"
        ));
        assert!(matches!(
            FaultPlan::parse_toml("[latency]\nprobability = 0.1\n[latency]\nspike_us = 5"),
            Err(FaultPlanError::Duplicate(k)) if k == "[latency]"
        ));
        // The same key in different sections stays legal.
        FaultPlan::parse_toml(
            "[probabilities]\nbus.send = 0.1\n[schedule]\nbus.send@1 = \"transient\"",
        )
        .unwrap();
        // Trailing garbage around a section header is a bad line, not a
        // silently-ignored or silently-keyed one.
        assert!(matches!(FaultPlan::parse_toml("[latency] junk"), Err(FaultPlanError::BadLine(_))));
        assert!(matches!(
            FaultPlan::parse_toml("[latency]]\nprobability = 0.1"),
            Err(FaultPlanError::BadLine(_))
        ));
        assert!(matches!(FaultPlan::parse_toml("[]"), Err(FaultPlanError::BadLine(_))));
    }

    #[test]
    fn collector_mirrors_every_log_record() {
        let (mut inj, clock) = injector();
        let obs = Collector::enabled();
        inj.set_collector(obs.clone());
        inj.install_plan(FaultPlan::new(1).at(FaultOp::TxCommit, 1, FaultKind::Transient).at(
            FaultOp::BusSend,
            1,
            FaultKind::Partition { node: "server".into(), for_us: 50 },
        ));
        let _ = inj.check(FaultOp::TxCommit, &[]);
        let _ = inj.check(FaultOp::BusSend, &[]);
        clock.borrow_mut().advance_us(50);
        let _ = inj.check(FaultOp::BusSend, &["server"]); // heals
        inj.breaker_record("Bank.transfer", false, 1, 100);
        let trace = obs.take();
        assert_eq!(
            trace.events.len(),
            inj.log().len(),
            "one obs event per fault-log record: {trace:?}"
        );
        let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["fault.injected", "fault.injected", "fault.healed", "breaker.opened"]);
        // The bridge carries the log's own seq and sim time, so a trace
        // can be checked against the log record-for-record.
        for (e, r) in trace.events.iter().zip(inj.log().records()) {
            assert_eq!(
                comet_obs::Trace::attr(&e.attrs, "log_seq"),
                Some(r.seq.to_string().as_str())
            );
            assert_eq!(e.at_us, r.at_us);
        }
    }

    #[test]
    fn install_plan_resets_state() {
        let (mut inj, _clock) = injector();
        inj.install_plan(FaultPlan::new(1).at(FaultOp::BusSend, 1, FaultKind::Transient));
        let _ = inj.check(FaultOp::BusSend, &[]);
        assert_eq!(inj.log().len(), 1);
        inj.install_plan(FaultPlan::new(1));
        assert!(inj.log().is_empty());
        assert!(inj.check(FaultOp::BusSend, &[]).is_ok());
    }
}
