//! The message bus: named nodes, seeded latency, loss injection, and
//! traffic statistics. RPC in the interpreter is synchronous, so a
//! "message" here is an accounting event that advances the clock; the
//! actual invocation is performed by the caller after `send` succeeds.

use crate::clock::SimClock;
use crate::error::MiddlewareError;
use crate::faults::{FaultInjector, FaultOp};
use crate::MiddlewareConfig;
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Aggregate traffic statistics of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusStats {
    /// Messages successfully delivered.
    pub delivered: u64,
    /// Messages lost to failure injection.
    pub lost: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
    /// Sum of per-message latencies (microseconds).
    pub total_latency_us: u64,
    /// Maximum single-message latency observed.
    pub max_latency_us: u64,
}

impl BusStats {
    /// Mean delivered-message latency in microseconds (0 when idle).
    pub fn mean_latency_us(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.delivered as f64
        }
    }
}

/// The simulated network connecting named nodes.
#[derive(Debug)]
pub struct MessageBus {
    clock: Rc<RefCell<SimClock>>,
    rng: Rc<RefCell<StdRng>>,
    faults: Rc<RefCell<FaultInjector>>,
    min_latency_us: u64,
    max_latency_us: u64,
    drop_probability: f64,
    nodes: Vec<String>,
    current_node: String,
    stats: BTreeMap<(String, String), BusStats>,
    aggregate: BusStats,
}

impl MessageBus {
    pub(crate) fn new(
        clock: Rc<RefCell<SimClock>>,
        rng: Rc<RefCell<StdRng>>,
        config: &MiddlewareConfig,
        faults: Rc<RefCell<FaultInjector>>,
    ) -> Self {
        MessageBus {
            clock,
            rng,
            faults,
            min_latency_us: config.min_latency_us,
            max_latency_us: config.max_latency_us.max(config.min_latency_us),
            drop_probability: config.drop_probability.clamp(0.0, 1.0),
            nodes: Vec::new(),
            current_node: String::new(),
            stats: BTreeMap::new(),
            aggregate: BusStats::default(),
        }
    }

    /// Registers a node. The first node added becomes the current node.
    pub fn add_node(&mut self, name: &str) {
        if !self.nodes.iter().any(|n| n == name) {
            self.nodes.push(name.to_owned());
            if self.current_node.is_empty() {
                self.current_node = name.to_owned();
            }
        }
    }

    /// All node names, in registration order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Returns true when the node is registered.
    pub fn has_node(&self, name: &str) -> bool {
        self.nodes.iter().any(|n| n == name)
    }

    /// The node execution is currently "on".
    pub fn current_node(&self) -> &str {
        &self.current_node
    }

    /// Moves execution to `node` (used by the RPC machinery).
    ///
    /// # Errors
    /// Fails when the node is unknown.
    pub fn set_current_node(&mut self, node: &str) -> Result<(), MiddlewareError> {
        if !self.has_node(node) {
            return Err(MiddlewareError::UnknownNode(node.to_owned()));
        }
        self.current_node = node.to_owned();
        Ok(())
    }

    /// Returns true when execution is currently on `node`. An unknown
    /// node is never local.
    pub fn is_local(&self, node: &str) -> bool {
        self.current_node == node
    }

    /// Current logical time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock.borrow().now_us()
    }

    /// Advances the sim clock by `us` without sending anything (backoff
    /// sleeps from the fault-tolerance concern). Returns the new time.
    pub fn advance_clock_us(&mut self, us: u64) -> u64 {
        self.clock.borrow_mut().advance_us(us)
    }

    /// Sends `payload_bytes` from `from` to `to`; returns the simulated
    /// latency in microseconds and advances the clock by it.
    ///
    /// # Errors
    /// Fails on unknown nodes, when loss injection drops the message, or
    /// with a typed fault (transient / partitioned / crashed node) when
    /// the fault injector fires.
    pub fn send(
        &mut self,
        from: &str,
        to: &str,
        payload_bytes: u64,
    ) -> Result<u64, MiddlewareError> {
        if !self.has_node(from) {
            return Err(MiddlewareError::UnknownNode(from.to_owned()));
        }
        if !self.has_node(to) {
            return Err(MiddlewareError::UnknownNode(to.to_owned()));
        }
        self.faults.borrow_mut().check(FaultOp::BusSend, &[from, to])?;
        let (lost, latency) = {
            let mut rng = self.rng.borrow_mut();
            let lost = self.drop_probability > 0.0 && rng.gen::<f64>() < self.drop_probability;
            let latency = if from == to {
                1
            } else {
                rng.gen_range(self.min_latency_us..=self.max_latency_us)
            };
            (lost, latency)
        };
        let link = self.stats.entry((from.to_owned(), to.to_owned())).or_default();
        if lost {
            link.lost += 1;
            self.aggregate.lost += 1;
            return Err(MiddlewareError::MessageLost { from: from.to_owned(), to: to.to_owned() });
        }
        self.clock.borrow_mut().advance_us(latency);
        link.delivered += 1;
        link.bytes += payload_bytes;
        link.total_latency_us += latency;
        link.max_latency_us = link.max_latency_us.max(latency);
        self.aggregate.delivered += 1;
        self.aggregate.bytes += payload_bytes;
        self.aggregate.total_latency_us += latency;
        self.aggregate.max_latency_us = self.aggregate.max_latency_us.max(latency);
        Ok(latency)
    }

    /// Round trip: request to `to`, response back; returns total latency.
    ///
    /// # Errors
    /// Propagates loss/unknown-node failures from either direction.
    pub fn round_trip(
        &mut self,
        from: &str,
        to: &str,
        request_bytes: u64,
        response_bytes: u64,
    ) -> Result<u64, MiddlewareError> {
        let a = self.send(from, to, request_bytes)?;
        let b = self.send(to, from, response_bytes)?;
        Ok(a + b)
    }

    /// Aggregate statistics across all links.
    pub fn stats(&self) -> BusStats {
        self.aggregate
    }

    /// Statistics for one directed link.
    pub fn link_stats(&self, from: &str, to: &str) -> BusStats {
        self.stats.get(&(from.to_owned(), to.to_owned())).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bus(drop: f64) -> MessageBus {
        let clock = Rc::new(RefCell::new(SimClock::new()));
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(7)));
        let faults = Rc::new(RefCell::new(FaultInjector::new(Rc::clone(&clock), 7)));
        let config = MiddlewareConfig {
            drop_probability: drop,
            min_latency_us: 10,
            max_latency_us: 20,
            ..MiddlewareConfig::default()
        };
        let mut b = MessageBus::new(clock, rng, &config, faults);
        b.add_node("a");
        b.add_node("b");
        b
    }

    #[test]
    fn delivery_advances_clock_and_stats() {
        let mut b = bus(0.0);
        let t0 = b.now_us();
        let lat = b.send("a", "b", 100).unwrap();
        assert!((10..=20).contains(&lat));
        assert_eq!(b.now_us(), t0 + lat);
        let s = b.stats();
        assert_eq!(s.delivered, 1);
        assert_eq!(s.bytes, 100);
        assert_eq!(s.total_latency_us, lat);
        assert!(b.link_stats("a", "b").delivered == 1);
        assert!(b.link_stats("b", "a").delivered == 0);
        assert!(s.mean_latency_us() >= 10.0);
    }

    #[test]
    fn loopback_is_cheap() {
        let mut b = bus(0.0);
        assert_eq!(b.send("a", "a", 10).unwrap(), 1);
    }

    #[test]
    fn unknown_nodes_rejected() {
        let mut b = bus(0.0);
        assert!(matches!(b.send("a", "zz", 1), Err(MiddlewareError::UnknownNode(_))));
        assert!(matches!(b.set_current_node("zz"), Err(MiddlewareError::UnknownNode(_))));
    }

    #[test]
    fn full_drop_rate_loses_everything() {
        let mut b = bus(1.0);
        for _ in 0..5 {
            assert!(matches!(b.send("a", "b", 1), Err(MiddlewareError::MessageLost { .. })));
        }
        assert_eq!(b.stats().lost, 5);
        assert_eq!(b.stats().delivered, 0);
        assert_eq!(b.stats().mean_latency_us(), 0.0);
    }

    #[test]
    fn current_node_tracking() {
        let mut b = bus(0.0);
        assert_eq!(b.current_node(), "a");
        assert!(b.is_local("a"));
        b.set_current_node("b").unwrap();
        assert!(b.is_local("b"));
        assert!(!b.is_local("a"));
        assert!(!b.is_local("ghost"));
    }

    #[test]
    fn round_trip_sums_latencies() {
        let mut b = bus(0.0);
        let total = b.round_trip("a", "b", 64, 8).unwrap();
        assert!((20..=40).contains(&total));
        assert_eq!(b.stats().delivered, 2);
    }

    #[test]
    fn duplicate_add_node_ignored() {
        let mut b = bus(0.0);
        b.add_node("a");
        assert_eq!(b.nodes().len(), 2);
    }

    #[test]
    fn link_stats_on_never_used_link_is_default() {
        let b = bus(0.0);
        // Both directions of a registered-but-idle link, and a link to a
        // node that does not even exist: all report zeroed stats rather
        // than panicking or inventing entries.
        assert_eq!(b.link_stats("a", "b"), BusStats::default());
        assert_eq!(b.link_stats("b", "a"), BusStats::default());
        assert_eq!(b.link_stats("a", "ghost"), BusStats::default());
        assert_eq!(b.link_stats("a", "b").mean_latency_us(), 0.0);
    }

    #[test]
    fn set_current_node_unknown_leaves_current_unchanged() {
        let mut b = bus(0.0);
        assert_eq!(b.current_node(), "a");
        let err = b.set_current_node("ghost").unwrap_err();
        assert_eq!(err, MiddlewareError::UnknownNode("ghost".into()));
        assert_eq!(b.current_node(), "a", "failed switch must not move execution");
        assert!(b.is_local("a"));
    }

    #[test]
    fn round_trip_to_partitioned_node_is_typed() {
        let mut b = bus(0.0);
        b.faults.borrow_mut().partition_node("b", 1_000_000);
        let err = b.round_trip("a", "b", 64, 8).unwrap_err();
        assert_eq!(err, MiddlewareError::NodePartitioned { node: "b".into() });
        // The failed attempt delivered nothing.
        assert_eq!(b.stats().delivered, 0);
        // Healing by sim time restores the link.
        b.clock.borrow_mut().advance_us(1_000_000);
        assert!(b.round_trip("a", "b", 64, 8).is_ok());
    }

    #[test]
    fn send_to_crashed_node_is_typed() {
        let mut b = bus(0.0);
        b.faults.borrow_mut().crash_node("b", 500);
        assert_eq!(
            b.send("a", "b", 1).unwrap_err(),
            MiddlewareError::NodeCrashed { node: "b".into() }
        );
    }
}
