//! Flat transactions with undo logs, plus a two-phase-commit coordinator
//! for transactions that touched multiple nodes.
//!
//! The manager is generic over the logged value type `V`; the interpreter
//! instantiates it with its runtime value so field writes can be undone
//! on rollback.

use crate::error::MiddlewareError;
use crate::faults::{FaultInjector, FaultOp};
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Transaction identifier.
pub type TxId = u64;

/// One write-ahead-log record. The WAL is append-only; recovery derives
/// the set of durably committed transactions from it (everything else is
/// presumed aborted), mirroring how a real resource manager survives a
/// crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction began.
    Begin(TxId),
    /// A field write was logged.
    Write {
        /// The transaction.
        tx: TxId,
        /// Object handle.
        object: u64,
        /// Field name.
        field: String,
    },
    /// The transaction committed (durable).
    Commit(TxId),
    /// The transaction rolled back.
    Rollback(TxId),
}

/// The state reconstructed by replaying a WAL after a crash.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveredState {
    /// Transactions with a durable commit record.
    pub committed: Vec<TxId>,
    /// Transactions rolled back explicitly.
    pub rolled_back: Vec<TxId>,
    /// Transactions that were in flight at the crash; recovery treats
    /// them as aborted (presumed abort).
    pub in_flight: Vec<TxId>,
}

/// Replays a WAL (possibly truncated by a crash) into the recovered
/// state. Presumed abort: a `Begin` without a matching `Commit` or
/// `Rollback` lands in `in_flight`.
pub fn recover(wal: &[WalRecord]) -> RecoveredState {
    let mut state = RecoveredState::default();
    let mut open: Vec<TxId> = Vec::new();
    for record in wal {
        match record {
            WalRecord::Begin(tx) => open.push(*tx),
            WalRecord::Write { .. } => {}
            WalRecord::Commit(tx) => {
                open.retain(|t| t != tx);
                state.committed.push(*tx);
            }
            WalRecord::Rollback(tx) => {
                open.retain(|t| t != tx);
                state.rolled_back.push(*tx);
            }
        }
    }
    state.in_flight = open;
    state
}

/// One undo-log record: a field of an object had `old` before the write.
#[derive(Debug, Clone, PartialEq)]
pub struct UndoEntry<V> {
    /// Object handle (interpreter heap key).
    pub object: u64,
    /// Field name.
    pub field: String,
    /// Value before the first write in this transaction.
    pub old: V,
}

/// Outcome of a two-phase commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoPhaseOutcome {
    /// All participants voted yes and committed.
    Committed {
        /// Number of participants.
        participants: usize,
    },
    /// Some participant voted no; everyone aborted.
    Aborted {
        /// The participant that voted no.
        by: String,
    },
}

/// Transaction-manager statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions rolled back.
    pub rolled_back: u64,
    /// Undo-log records written.
    pub undo_records: u64,
    /// Two-phase commits run.
    pub two_phase_commits: u64,
    /// Two-phase aborts.
    pub two_phase_aborts: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxState {
    Active,
    Committed,
    RolledBack,
}

#[derive(Debug, Clone)]
struct Tx<V> {
    state: TxState,
    isolation: String,
    undo: Vec<UndoEntry<V>>,
    /// Nodes whose objects this transaction wrote (2PC participants).
    participants: Vec<String>,
    /// (object, field) pairs already logged (first-write wins).
    logged: Vec<(u64, String)>,
}

/// The transaction manager.
#[derive(Debug)]
pub struct TransactionManager<V> {
    next_id: TxId,
    transactions: BTreeMap<TxId, Tx<V>>,
    current: Vec<TxId>,
    vote_abort_probability: f64,
    rng: Rc<RefCell<StdRng>>,
    faults: Rc<RefCell<FaultInjector>>,
    stats: TxStats,
    wal: Vec<WalRecord>,
}

impl<V: Clone> TransactionManager<V> {
    pub(crate) fn new(
        vote_abort_probability: f64,
        rng: Rc<RefCell<StdRng>>,
        faults: Rc<RefCell<FaultInjector>>,
    ) -> Self {
        TransactionManager {
            next_id: 1,
            transactions: BTreeMap::new(),
            current: Vec::new(),
            vote_abort_probability: vote_abort_probability.clamp(0.0, 1.0),
            rng,
            faults,
            stats: TxStats::default(),
            wal: Vec::new(),
        }
    }

    /// Begins a transaction and makes it current. With `required`
    /// propagation semantics the caller should check
    /// [`TransactionManager::current`] first; `begin` always starts a new
    /// transaction (a stack is kept so `requires-new` nests).
    ///
    /// # Errors
    /// Infallible today; returns `Result` for forward compatibility with
    /// resource-exhaustion simulation.
    pub fn begin(&mut self, isolation: &str) -> Result<TxId, MiddlewareError> {
        let id = self.next_id;
        self.next_id += 1;
        self.transactions.insert(
            id,
            Tx {
                state: TxState::Active,
                isolation: isolation.to_owned(),
                undo: Vec::new(),
                participants: Vec::new(),
                logged: Vec::new(),
            },
        );
        self.current.push(id);
        self.stats.begun += 1;
        self.wal.push(WalRecord::Begin(id));
        Ok(id)
    }

    /// The innermost active transaction, if any.
    pub fn current(&self) -> Option<TxId> {
        self.current.last().copied()
    }

    /// The isolation level of a transaction.
    ///
    /// # Errors
    /// Fails when the id is unknown.
    pub fn isolation(&self, tx: TxId) -> Result<&str, MiddlewareError> {
        Ok(&self.tx(tx)?.isolation)
    }

    fn tx(&self, id: TxId) -> Result<&Tx<V>, MiddlewareError> {
        self.transactions.get(&id).ok_or(MiddlewareError::NoSuchTransaction(id))
    }

    fn tx_mut_active(&mut self, id: TxId) -> Result<&mut Tx<V>, MiddlewareError> {
        let tx = self.transactions.get_mut(&id).ok_or(MiddlewareError::NoSuchTransaction(id))?;
        if tx.state != TxState::Active {
            return Err(MiddlewareError::TransactionFinished(id));
        }
        Ok(tx)
    }

    /// Records the pre-image of `object.field` (first write wins) so a
    /// rollback can restore it.
    ///
    /// # Errors
    /// Fails when the transaction is unknown or finished.
    pub fn log_write(
        &mut self,
        tx: TxId,
        object: u64,
        field: &str,
        old: V,
    ) -> Result<(), MiddlewareError> {
        let t = self.tx_mut_active(tx)?;
        let key = (object, field.to_owned());
        if !t.logged.contains(&key) {
            t.logged.push(key);
            t.undo.push(UndoEntry { object, field: field.to_owned(), old });
            self.stats.undo_records += 1;
            self.wal.push(WalRecord::Write { tx, object, field: field.to_owned() });
        }
        Ok(())
    }

    /// Registers a node as a participant of `tx` (it hosted a write).
    ///
    /// # Errors
    /// Fails when the transaction is unknown or finished.
    pub fn touch_node(&mut self, tx: TxId, node: &str) -> Result<(), MiddlewareError> {
        let t = self.tx_mut_active(tx)?;
        if !t.participants.iter().any(|n| n == node) {
            t.participants.push(node.to_owned());
        }
        Ok(())
    }

    /// Commits `tx`. Single-node transactions commit directly; when the
    /// transaction touched two or more nodes a two-phase commit runs, and
    /// an injected abort vote rolls everything back.
    ///
    /// Returns the undo entries to *discard* on plain commit (empty) or
    /// to **apply** when 2PC aborted — the caller restores the pre-images
    /// exactly as for [`TransactionManager::rollback`].
    ///
    /// # Errors
    /// `VotedAbort` when 2PC failed, and `FaultInjected` when the fault
    /// injector perturbs the commit; in both cases the transaction stays
    /// *active* and the caller must apply the undo log (see
    /// [`TransactionManager::take_undo_log`]) and roll back. Unknown or
    /// finished transactions fail accordingly.
    pub fn commit(&mut self, tx: TxId) -> Result<TwoPhaseOutcome, MiddlewareError> {
        // Unknown/finished errors win over injected ones.
        self.tx_mut_active(tx)?;
        // An injected commit fault mirrors a vote-abort: the tx is left
        // active so the caller restores pre-images.
        self.faults.borrow_mut().check(FaultOp::TxCommit, &[])?;
        let (participants, abort_by) = {
            let t = self.tx_mut_active(tx)?;
            let participants = t.participants.clone();
            let mut abort_by = None;
            if participants.len() >= 2 && self.vote_abort_probability > 0.0 {
                let mut rng = self.rng.borrow_mut();
                for p in &participants {
                    if rng.gen::<f64>() < self.vote_abort_probability {
                        abort_by = Some(p.clone());
                        break;
                    }
                }
            }
            (participants, abort_by)
        };
        if participants.len() >= 2 {
            self.stats.two_phase_commits += 1;
        }
        if let Some(by) = abort_by {
            self.stats.two_phase_aborts += 1;
            // The transaction stays active; the caller rolls it back and
            // applies the undo log.
            return Err(MiddlewareError::VotedAbort { node: by });
        }
        let t = self.tx_mut_active(tx)?;
        t.state = TxState::Committed;
        t.undo.clear();
        t.logged.clear();
        self.current.retain(|&c| c != tx);
        self.stats.committed += 1;
        self.wal.push(WalRecord::Commit(tx));
        Ok(TwoPhaseOutcome::Committed { participants: participants.len() })
    }

    /// Rolls back `tx`, returning the undo log **in reverse write order**
    /// for the caller to apply to its store.
    ///
    /// # Errors
    /// Fails when the transaction is unknown or finished.
    pub fn rollback(&mut self, tx: TxId) -> Result<Vec<UndoEntry<V>>, MiddlewareError> {
        let t = self.tx_mut_active(tx)?;
        t.state = TxState::RolledBack;
        let mut undo = std::mem::take(&mut t.undo);
        undo.reverse();
        t.logged.clear();
        self.current.retain(|&c| c != tx);
        self.stats.rolled_back += 1;
        self.wal.push(WalRecord::Rollback(tx));
        Ok(undo)
    }

    /// Takes the undo log of an *active* transaction without changing its
    /// state (used by the 2PC abort path before calling `rollback`).
    ///
    /// # Errors
    /// Fails when the transaction is unknown or finished.
    pub fn take_undo_log(&mut self, tx: TxId) -> Result<Vec<UndoEntry<V>>, MiddlewareError> {
        let t = self.tx_mut_active(tx)?;
        let mut undo = t.undo.clone();
        undo.reverse();
        Ok(undo)
    }

    /// True when `tx` is active.
    pub fn is_active(&self, tx: TxId) -> bool {
        self.tx(tx).map(|t| t.state == TxState::Active).unwrap_or(false)
    }

    /// The participant nodes registered so far.
    ///
    /// # Errors
    /// Fails when the id is unknown.
    pub fn participants(&self, tx: TxId) -> Result<&[String], MiddlewareError> {
        Ok(&self.tx(tx)?.participants)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TxStats {
        self.stats
    }

    /// The write-ahead log, oldest record first.
    pub fn wal(&self) -> &[WalRecord] {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    use crate::clock::SimClock;
    use crate::faults::{FaultKind, FaultPlan};

    fn mgr(p: f64) -> TransactionManager<i64> {
        let clock = Rc::new(RefCell::new(SimClock::default()));
        TransactionManager::new(
            p,
            Rc::new(RefCell::new(StdRng::seed_from_u64(3))),
            Rc::new(RefCell::new(FaultInjector::new(clock, 3))),
        )
    }

    #[test]
    fn injected_commit_fault_leaves_tx_active() {
        let mut m = mgr(0.0);
        m.faults.borrow_mut().install_plan(FaultPlan::new(1).at(
            FaultOp::TxCommit,
            1,
            FaultKind::Transient,
        ));
        let tx = m.begin("rc").unwrap();
        m.log_write(tx, 1, "x", 5).unwrap();
        let err = m.commit(tx).unwrap_err();
        assert!(matches!(err, MiddlewareError::FaultInjected { ref op } if op == "tx.commit"));
        // Exactly the vote-abort contract: active, undo intact.
        assert!(m.is_active(tx));
        assert_eq!(m.take_undo_log(tx).unwrap().len(), 1);
        m.rollback(tx).unwrap();
        // A later commit attempt (occurrence 2, unscheduled) succeeds.
        let tx2 = m.begin("rc").unwrap();
        assert!(m.commit(tx2).is_ok());
    }

    #[test]
    fn begin_commit_lifecycle() {
        let mut m = mgr(0.0);
        assert_eq!(m.current(), None);
        let tx = m.begin("serializable").unwrap();
        assert_eq!(m.current(), Some(tx));
        assert!(m.is_active(tx));
        assert_eq!(m.isolation(tx).unwrap(), "serializable");
        let out = m.commit(tx).unwrap();
        assert_eq!(out, TwoPhaseOutcome::Committed { participants: 0 });
        assert!(!m.is_active(tx));
        assert_eq!(m.current(), None);
        assert_eq!(m.stats().committed, 1);
    }

    #[test]
    fn rollback_returns_undo_in_reverse_first_write_wins() {
        let mut m = mgr(0.0);
        let tx = m.begin("rc").unwrap();
        m.log_write(tx, 1, "balance", 100).unwrap();
        m.log_write(tx, 1, "balance", 150).unwrap(); // ignored: first write wins
        m.log_write(tx, 2, "balance", 50).unwrap();
        let undo = m.rollback(tx).unwrap();
        assert_eq!(undo.len(), 2);
        assert_eq!(undo[0].object, 2);
        assert_eq!(undo[0].old, 50);
        assert_eq!(undo[1].object, 1);
        assert_eq!(undo[1].old, 100);
        assert_eq!(m.stats().undo_records, 2);
        assert_eq!(m.stats().rolled_back, 1);
    }

    #[test]
    fn finished_transactions_reject_operations() {
        let mut m = mgr(0.0);
        let tx = m.begin("rc").unwrap();
        m.commit(tx).unwrap();
        assert!(matches!(m.log_write(tx, 1, "x", 0), Err(MiddlewareError::TransactionFinished(_))));
        assert!(matches!(m.commit(tx), Err(MiddlewareError::TransactionFinished(_))));
        assert!(matches!(m.rollback(tx), Err(MiddlewareError::TransactionFinished(_))));
        assert!(matches!(m.log_write(999, 1, "x", 0), Err(MiddlewareError::NoSuchTransaction(_))));
    }

    #[test]
    fn nested_requires_new_stack() {
        let mut m = mgr(0.0);
        let outer = m.begin("rc").unwrap();
        let inner = m.begin("rc").unwrap();
        assert_eq!(m.current(), Some(inner));
        m.commit(inner).unwrap();
        assert_eq!(m.current(), Some(outer));
        m.rollback(outer).unwrap();
        assert_eq!(m.current(), None);
    }

    #[test]
    fn single_node_commit_never_runs_2pc() {
        let mut m = mgr(1.0); // would always vote abort if 2PC ran
        let tx = m.begin("rc").unwrap();
        m.touch_node(tx, "only").unwrap();
        assert!(m.commit(tx).is_ok());
        assert_eq!(m.stats().two_phase_commits, 0);
    }

    #[test]
    fn multi_node_commit_runs_2pc_and_can_abort() {
        let mut m = mgr(1.0);
        let tx = m.begin("rc").unwrap();
        m.touch_node(tx, "a").unwrap();
        m.touch_node(tx, "b").unwrap();
        m.log_write(tx, 1, "x", 5).unwrap();
        let err = m.commit(tx).unwrap_err();
        assert!(matches!(err, MiddlewareError::VotedAbort { .. }));
        assert_eq!(m.stats().two_phase_aborts, 1);
        // Transaction is still active; caller rolls back and applies undo.
        assert!(m.is_active(tx));
        let undo = m.take_undo_log(tx).unwrap();
        assert_eq!(undo.len(), 1);
        let undo2 = m.rollback(tx).unwrap();
        assert_eq!(undo, undo2);
    }

    #[test]
    fn multi_node_commit_succeeds_without_injection() {
        let mut m = mgr(0.0);
        let tx = m.begin("rc").unwrap();
        m.touch_node(tx, "a").unwrap();
        m.touch_node(tx, "b").unwrap();
        m.touch_node(tx, "a").unwrap(); // dedup
        let out = m.commit(tx).unwrap();
        assert_eq!(out, TwoPhaseOutcome::Committed { participants: 2 });
        assert_eq!(m.stats().two_phase_commits, 1);
        assert_eq!(m.stats().two_phase_aborts, 0);
    }
}
