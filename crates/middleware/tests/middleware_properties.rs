//! Property tests for the middleware services: mutual exclusion is never
//! violated, transaction undo logs obey first-write-wins, and bus
//! accounting is conservative.

use comet_middleware::{Middleware, MiddlewareConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum LockOp {
    Acquire(u8, u8),
    Release(u8, u8),
    ReleaseAll(u8),
}

fn arb_lock_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(l, o)| LockOp::Acquire(l % 4, o % 3 + 1)),
        (any::<u8>(), any::<u8>()).prop_map(|(l, o)| LockOp::Release(l % 4, o % 3 + 1)),
        any::<u8>().prop_map(|o| LockOp::ReleaseAll(o % 3 + 1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn locks_never_have_two_owners(ops in prop::collection::vec(arb_lock_op(), 0..80)) {
        let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
        // Reference model: lock -> (owner, depth).
        let mut reference: BTreeMap<String, (u64, u32)> = BTreeMap::new();
        for op in ops {
            match op {
                LockOp::Acquire(l, o) => {
                    let lock = format!("L{l}");
                    let owner = u64::from(o);
                    let outcome = mw.locks.try_acquire(&lock, owner);
                    match reference.get_mut(&lock) {
                        None => {
                            prop_assert!(outcome.is_ok());
                            reference.insert(lock, (owner, 1));
                        }
                        Some((held, depth)) if *held == owner => {
                            prop_assert!(outcome.is_ok());
                            *depth += 1;
                        }
                        Some(_) => prop_assert!(outcome.is_err()),
                    }
                }
                LockOp::Release(l, o) => {
                    let lock = format!("L{l}");
                    let owner = u64::from(o);
                    let outcome = mw.locks.release(&lock, owner);
                    match reference.get_mut(&lock) {
                        Some((held, depth)) if *held == owner => {
                            prop_assert!(outcome.is_ok());
                            *depth -= 1;
                            if *depth == 0 {
                                reference.remove(&lock);
                            }
                        }
                        _ => prop_assert!(outcome.is_err()),
                    }
                }
                LockOp::ReleaseAll(o) => {
                    let owner = u64::from(o);
                    mw.locks.release_all(owner);
                    reference.retain(|_, (held, _)| *held != owner);
                }
            }
            // Holders agree with the reference model at every step.
            for (lock, (owner, _)) in &reference {
                prop_assert_eq!(mw.locks.holder(lock), Some(*owner));
            }
        }
    }

    #[test]
    fn undo_log_restores_exactly_the_first_preimages(
        writes in prop::collection::vec((0u64..4, 0u8..3, -100i64..100), 1..40)
    ) {
        let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
        // A little store and its pristine copy.
        let mut store: BTreeMap<(u64, String), i64> = BTreeMap::new();
        for obj in 0..4u64 {
            for f in 0..3u8 {
                store.insert((obj, format!("f{f}")), (obj as i64) * 10 + i64::from(f));
            }
        }
        let pristine = store.clone();
        let tx = mw.tx.begin("rc").expect("begins");
        for (obj, field, value) in writes {
            let key = (obj, format!("f{field}"));
            let old = store[&key];
            mw.tx.log_write(tx, obj, &key.1, old).expect("active");
            store.insert(key, value);
        }
        // Roll back and apply the undo entries to the store.
        for entry in mw.tx.rollback(tx).expect("active") {
            store.insert((entry.object, entry.field), entry.old);
        }
        prop_assert_eq!(store, pristine);
    }

    #[test]
    fn bus_accounting_is_conservative(
        sends in prop::collection::vec((any::<bool>(), 1u64..500), 1..60),
        drop_pct in 0u8..=100
    ) {
        let config = MiddlewareConfig {
            drop_probability: f64::from(drop_pct) / 100.0,
            ..MiddlewareConfig::default()
        };
        let mut mw: Middleware<i64> = Middleware::new(config);
        mw.bus.add_node("a");
        mw.bus.add_node("b");
        let mut ok = 0u64;
        let mut lost = 0u64;
        let mut bytes = 0u64;
        for (direction, payload) in sends {
            let (from, to) = if direction { ("a", "b") } else { ("b", "a") };
            match mw.bus.send(from, to, payload) {
                Ok(latency) => {
                    ok += 1;
                    bytes += payload;
                    prop_assert!(latency >= 1);
                }
                Err(_) => lost += 1,
            }
        }
        let stats = mw.bus.stats();
        prop_assert_eq!(stats.delivered, ok);
        prop_assert_eq!(stats.lost, lost);
        prop_assert_eq!(stats.bytes, bytes);
        // Link stats sum to the aggregate.
        let ab = mw.bus.link_stats("a", "b");
        let ba = mw.bus.link_stats("b", "a");
        prop_assert_eq!(ab.delivered + ba.delivered, stats.delivered);
        prop_assert_eq!(ab.bytes + ba.bytes, stats.bytes);
        // The clock advanced by exactly the sum of latencies.
        prop_assert_eq!(mw.now_us(), stats.total_latency_us);
    }

    #[test]
    fn nested_transactions_commit_independently(n in 1usize..6) {
        let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
        let mut stack = Vec::new();
        for _ in 0..n {
            stack.push(mw.tx.begin("rc").expect("begins"));
        }
        // Unwind: inner transactions commit, outermost rolls back.
        while stack.len() > 1 {
            let tx = stack.pop().expect("non-empty");
            prop_assert_eq!(mw.tx.current(), Some(tx));
            mw.tx.commit(tx).expect("active");
        }
        let outer = stack.pop().expect("one left");
        mw.tx.rollback(outer).expect("active");
        prop_assert_eq!(mw.tx.current(), None);
        let stats = mw.tx.stats();
        prop_assert_eq!(stats.begun, n as u64);
        prop_assert_eq!(stats.committed, n as u64 - 1);
        prop_assert_eq!(stats.rolled_back, 1);
    }
}
