//! WAL and crash-recovery tests: the write-ahead log records the
//! transaction lifecycle, and replaying a (possibly truncated) WAL
//! reconstructs the durable state under presumed-abort semantics.

use comet_middleware::{recover, Middleware, MiddlewareConfig, WalRecord};
use proptest::prelude::*;

fn mw() -> Middleware<i64> {
    Middleware::new(MiddlewareConfig::default())
}

#[test]
fn wal_records_the_lifecycle_in_order() {
    let mut m = mw();
    let t1 = m.tx.begin("rc").unwrap();
    m.tx.log_write(t1, 1, "balance", 100).unwrap();
    m.tx.commit(t1).unwrap();
    let t2 = m.tx.begin("rc").unwrap();
    m.tx.log_write(t2, 2, "v", 5).unwrap();
    m.tx.rollback(t2).unwrap();
    assert_eq!(
        m.tx.wal(),
        &[
            WalRecord::Begin(t1),
            WalRecord::Write { tx: t1, object: 1, field: "balance".into() },
            WalRecord::Commit(t1),
            WalRecord::Begin(t2),
            WalRecord::Write { tx: t2, object: 2, field: "v".into() },
            WalRecord::Rollback(t2),
        ]
    );
}

#[test]
fn recovery_classifies_transactions() {
    let mut m = mw();
    let committed = m.tx.begin("rc").unwrap();
    m.tx.commit(committed).unwrap();
    let aborted = m.tx.begin("rc").unwrap();
    m.tx.rollback(aborted).unwrap();
    let in_flight = m.tx.begin("rc").unwrap();
    m.tx.log_write(in_flight, 1, "x", 0).unwrap();
    // "Crash": replay whatever is on the log now.
    let state = recover(m.tx.wal());
    assert_eq!(state.committed, vec![committed]);
    assert_eq!(state.rolled_back, vec![aborted]);
    assert_eq!(state.in_flight, vec![in_flight]);
}

#[test]
fn truncated_wal_presumes_abort() {
    let mut m = mw();
    let t1 = m.tx.begin("rc").unwrap();
    m.tx.log_write(t1, 1, "x", 0).unwrap();
    m.tx.commit(t1).unwrap();
    let wal = m.tx.wal().to_vec();
    // Crash before the commit record made it to the log.
    let truncated = &wal[..wal.len() - 1];
    let state = recover(truncated);
    assert!(state.committed.is_empty());
    assert_eq!(state.in_flight, vec![t1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random lifecycles: recovery from the full WAL always agrees with
    /// the live statistics, and any truncation only moves transactions
    /// from committed/rolled-back into in-flight.
    #[test]
    fn recovery_agrees_with_live_state(choices in prop::collection::vec(any::<u8>(), 1..40)) {
        let mut m = mw();
        for c in &choices {
            match c % 4 {
                0 => {
                    m.tx.begin("rc").expect("begins");
                }
                1 => {
                    if let Some(tx) = m.tx.current() {
                        let _ = m.tx.log_write(tx, u64::from(*c), "f", 0);
                    }
                }
                2 => {
                    if let Some(tx) = m.tx.current() {
                        m.tx.commit(tx).expect("active");
                    }
                }
                _ => {
                    if let Some(tx) = m.tx.current() {
                        m.tx.rollback(tx).expect("active");
                    }
                }
            }
        }
        let state = recover(m.tx.wal());
        let stats = m.tx.stats();
        prop_assert_eq!(state.committed.len() as u64, stats.committed);
        prop_assert_eq!(state.rolled_back.len() as u64, stats.rolled_back);
        prop_assert_eq!(
            (state.committed.len() + state.rolled_back.len() + state.in_flight.len()) as u64,
            stats.begun
        );

        // Truncation property.
        let wal = m.tx.wal();
        for cut in 0..wal.len() {
            let partial = recover(&wal[..cut]);
            prop_assert!(partial.committed.len() <= state.committed.len());
            prop_assert!(partial.rolled_back.len() <= state.rolled_back.len());
            // No transaction is ever invented.
            let total = partial.committed.len() + partial.rolled_back.len() + partial.in_flight.len();
            prop_assert!(total as u64 <= stats.begun);
        }
    }
}
