//! # comet-obs — tracing and provenance for the COMET pipeline
//!
//! The paper's two load-bearing claims — "the order in which CMTs were
//! applied at model level dictates the precedence of the CAs at code
//! level" (§3) and that the parameter set `Si` carries the
//! application-specific knowledge that specializes a generic concern —
//! are asserted by the test suite but were not *observable*: nothing
//! could answer "which concern, specialized by which `Si`, produced
//! this model element / this woven advice / this runtime retry?".
//!
//! This crate closes that gap with a zero-cost-when-disabled
//! observability layer threaded through every pipeline stage:
//!
//! * [`Collector`] — hierarchical [`Span`]s, typed [`Event`]s and
//!   monotonic counters. [`Collector::disabled`] is the default and its
//!   hot-path cost is a single branch (the same inert-fast-path design
//!   as the middleware's `FaultInjector`), proven by `bench_obs_json`.
//! * [`Trace`] — the recorded data, with three hand-rolled exporters:
//!   Chrome trace-event JSON ([`Trace::to_chrome_json`], loadable in
//!   `chrome://tracing` / Perfetto), a per-span self-time profile table
//!   ([`Trace::to_profile`]) and a compact text tree for CI golden
//!   tests ([`Trace::to_text_tree`]).
//! * [`ProvenanceIndex`] — derivable from any trace: for each model
//!   element or woven statement, the chain
//!   `concern → CMT(Si) → advice → runtime events`, queryable via
//!   `comet-cli provenance <element>`.
//!
//! ## Determinism contract
//!
//! Every record is stamped with a logical **sequence tick** and the
//! caller-supplied **sim time** (the middleware `SimClock`, µs). Chrome
//! timestamps are the ticks — they are total-ordered and make spans
//! nest strictly — and sim time rides along in `args`. Wall-clock
//! duration is also captured per span, but only the profile exporter
//! reads it: the Chrome JSON and the text tree are pure functions of
//! the recorded call sequence, so *same seed + same fault plan ⇒
//! byte-identical trace* (the chaos suite asserts exactly that).
//!
//! ## Example
//!
//! ```
//! use comet_obs::Collector;
//!
//! let obs = Collector::enabled();
//! let run = obs.begin_span("lifecycle", "concern:distribution", 0);
//! obs.span_attr(run, "si", "<node=server>");
//! obs.event("transform", "model.created", 0, vec![("element".into(), "Proxy".into())]);
//! obs.incr("intrinsic.net", 1);
//! obs.end_span(run, 0);
//! let trace = obs.take();
//! assert_eq!(trace.spans.len(), 1);
//! assert!(trace.to_chrome_json().contains("concern:distribution"));
//!
//! // Disabled: one branch, nothing recorded.
//! let off = Collector::disabled();
//! let s = off.begin_span("lifecycle", "ignored", 0);
//! off.end_span(s, 0);
//! assert!(off.take().is_empty());
//! ```

mod collector;
mod export;
mod json;
mod provenance;

pub use collector::{Collector, Event, Span, SpanId, Trace, TraceMark};
pub use json::{escape as json_escape, JsonValue};
pub use provenance::{AdviceEntry, ModelEntry, ProvenanceIndex, ProvenanceReport, RuntimeEntry};
