//! Exporters: Chrome trace-event JSON (plus its reader), the CI text
//! tree, and the wall-clock profile table.

use crate::collector::{Event, Span, Trace};
use crate::json::{escape, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Argument keys the exporter itself owns; everything else in `args` is
/// a user attribute. Instrumentation never emits `_`-prefixed keys.
const RESERVED: [&str; 6] = ["_id", "_parent", "_sim_start_us", "_sim_end_us", "_sim_us", "_span"];

impl Trace {
    /// Serializes the trace in the Chrome trace-event format (JSON
    /// Object Format), loadable in `chrome://tracing` and Perfetto.
    ///
    /// Timestamps are the logical ticks (`ts`/`dur`), which makes spans
    /// nest strictly and — because ticks and sim time are pure functions
    /// of the recorded call sequence — makes the output **byte-identical
    /// across same-seed runs**. Wall-clock time is deliberately absent;
    /// see [`Trace::to_profile`] for it.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * (self.spans.len() + self.events.len()));
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"comet-obs\"},");
        out.push_str("\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"comet\"}}",
        );
        for s in &self.spans {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{},\"name\":\"{}\",\
                 \"cat\":\"{}\",\"args\":{{\"_id\":\"{}\",\"_parent\":\"{}\",\
                 \"_sim_start_us\":\"{}\",\"_sim_end_us\":\"{}\"",
                s.start_seq,
                s.end_seq - s.start_seq,
                escape(&s.name),
                escape(&s.cat),
                s.id,
                s.parent.map(|p| p.to_string()).unwrap_or_default(),
                s.start_us,
                s.end_us,
            );
            push_attrs(&mut out, &s.attrs);
            out.push_str("}}");
        }
        for e in &self.events {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\
                 \"cat\":\"{}\",\"args\":{{\"_span\":\"{}\",\"_sim_us\":\"{}\"",
                e.seq,
                escape(&e.name),
                escape(&e.cat),
                e.span.map(|p| p.to_string()).unwrap_or_default(),
                e.at_us,
            );
            push_attrs(&mut out, &e.attrs);
            out.push_str("}}");
        }
        let last_tick = self
            .spans
            .iter()
            .map(|s| s.end_seq)
            .chain(self.events.iter().map(|e| e.seq))
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":{last_tick},\"name\":\"{}\",\
                 \"args\":{{\"value\":{value}}}}}",
                escape(name),
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Reads a trace back from [`Trace::to_chrome_json`] output. The
    /// reconstruction is exact (wall-clock durations, never serialized,
    /// come back as 0 — the deterministic projection is unchanged).
    ///
    /// # Errors
    /// Returns a message on malformed JSON or missing trace fields.
    pub fn from_chrome_json(text: &str) -> Result<Trace, String> {
        let doc = JsonValue::parse(text)?;
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `traceEvents` array")?;
        let mut trace = Trace::default();
        for entry in events {
            let ph = entry.get("ph").and_then(JsonValue::as_str).unwrap_or("");
            match ph {
                "X" => trace.spans.push(read_span(entry)?),
                "i" => trace.events.push(read_event(entry)?),
                "C" => {
                    let name = req_str(entry, "name")?.to_owned();
                    let value = entry
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(JsonValue::as_u64)
                        .ok_or("counter without numeric `value`")?;
                    trace.counters.insert(name, value);
                }
                _ => {} // metadata and future phases: ignored
            }
        }
        trace.spans.sort_by_key(|s| s.id);
        for (i, s) in trace.spans.iter().enumerate() {
            if s.id as usize != i {
                return Err(format!("span table has a hole at id {i}"));
            }
        }
        trace.events.sort_by_key(|e| e.seq);
        Ok(trace)
    }

    /// The compact deterministic text tree used by the CI golden test:
    /// span/event structure, categories, names and attributes — no
    /// ticks, no sim time, no wall-clock — so it only changes when the
    /// *shape* of the pipeline changes.
    pub fn to_text_tree(&self) -> String {
        let mut out = String::from("trace\n");
        for root in self.roots() {
            self.tree_span(&mut out, root, 1);
        }
        for e in self.events.iter().filter(|e| e.span.is_none()) {
            tree_line(&mut out, 1, '-', &e.cat, &e.name, &e.attrs);
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        out
    }

    fn tree_span(&self, out: &mut String, span: &Span, depth: usize) {
        tree_line(out, depth, '*', &span.cat, &span.name, &span.attrs);
        // Children and events interleaved in tick order.
        enum Item<'a> {
            S(&'a Span),
            E(&'a Event),
        }
        let mut items: Vec<(u64, Item<'_>)> = self
            .children(span.id)
            .into_iter()
            .map(|s| (s.start_seq, Item::S(s)))
            .chain(self.events_of(span.id).into_iter().map(|e| (e.seq, Item::E(e))))
            .collect();
        items.sort_by_key(|(seq, _)| *seq);
        for (_, item) in items {
            match item {
                Item::S(s) => self.tree_span(out, s, depth + 1),
                Item::E(e) => tree_line(out, depth + 1, '-', &e.cat, &e.name, &e.attrs),
            }
        }
    }

    /// A flat per-span-name profile: invocation count, total/self
    /// logical ticks, and total/self **wall-clock** time. This is the
    /// one human-facing exporter that reads wall time, so it is not
    /// byte-stable across runs — CI compares the text tree instead.
    pub fn to_profile(&self) -> String {
        #[derive(Default, Clone)]
        struct Row {
            count: u64,
            total_ticks: u64,
            self_ticks: u64,
            total_wall: u64,
            self_wall: u64,
        }
        let mut rows: BTreeMap<(String, String), Row> = BTreeMap::new();
        // Per-span self time = own minus sum of direct children.
        let mut child_ticks = vec![0u64; self.spans.len()];
        let mut child_wall = vec![0u64; self.spans.len()];
        for s in &self.spans {
            if let Some(p) = s.parent {
                child_ticks[p as usize] += s.end_seq - s.start_seq;
                child_wall[p as usize] += s.wall_ns;
            }
        }
        for s in &self.spans {
            let row = rows.entry((s.cat.clone(), s.name.clone())).or_default();
            let ticks = s.end_seq - s.start_seq;
            row.count += 1;
            row.total_ticks += ticks;
            row.self_ticks += ticks.saturating_sub(child_ticks[s.id as usize]);
            row.total_wall += s.wall_ns;
            row.self_wall += s.wall_ns.saturating_sub(child_wall[s.id as usize]);
        }
        let mut sorted: Vec<(&(String, String), &Row)> = rows.iter().collect();
        sorted.sort_by(|a, b| b.1.self_wall.cmp(&a.1.self_wall).then_with(|| a.0.cmp(b.0)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<40} {:>6} {:>12} {:>12} {:>12} {:>12}",
            "cat", "span", "count", "self-ticks", "total-ticks", "self-us", "total-us"
        );
        for ((cat, name), row) in sorted {
            let _ = writeln!(
                out,
                "{:<10} {:<40} {:>6} {:>12} {:>12} {:>12.1} {:>12.1}",
                cat,
                name,
                row.count,
                row.self_ticks,
                row.total_ticks,
                row.self_wall as f64 / 1_000.0,
                row.total_wall as f64 / 1_000.0,
            );
        }
        out
    }
}

fn push_attrs(out: &mut String, attrs: &[(String, String)]) {
    for (k, v) in attrs {
        let _ = write!(out, ",\"{}\":\"{}\"", escape(k), escape(v));
    }
}

fn tree_line(
    out: &mut String,
    depth: usize,
    bullet: char,
    cat: &str,
    name: &str,
    attrs: &[(String, String)],
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(out, "{bullet} [{cat}] {name}");
    if !attrs.is_empty() {
        out.push_str(" {");
        for (i, (k, v)) in attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push('}');
    }
    out.push('\n');
}

fn req_str<'a>(entry: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    entry.get(key).and_then(JsonValue::as_str).ok_or_else(|| format!("missing `{key}`"))
}

fn arg_str<'a>(entry: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    entry
        .get("args")
        .and_then(|a| a.get(key))
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing args.`{key}`"))
}

fn arg_u64(entry: &JsonValue, key: &str) -> Result<u64, String> {
    arg_str(entry, key)?.parse().map_err(|_| format!("args.`{key}` is not a number"))
}

fn arg_opt_u32(entry: &JsonValue, key: &str) -> Result<Option<u32>, String> {
    let s = arg_str(entry, key)?;
    if s.is_empty() {
        Ok(None)
    } else {
        s.parse().map(Some).map_err(|_| format!("args.`{key}` is not an id"))
    }
}

fn user_attrs(entry: &JsonValue) -> Vec<(String, String)> {
    match entry.get("args") {
        Some(JsonValue::Obj(members)) => members
            .iter()
            .filter(|(k, _)| !RESERVED.contains(&k.as_str()))
            .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
            .collect(),
        _ => Vec::new(),
    }
}

fn read_span(entry: &JsonValue) -> Result<Span, String> {
    let ts = entry.get("ts").and_then(JsonValue::as_u64).ok_or("span without `ts`")?;
    let dur = entry.get("dur").and_then(JsonValue::as_u64).ok_or("span without `dur`")?;
    Ok(Span {
        id: arg_u64(entry, "_id")? as u32,
        parent: arg_opt_u32(entry, "_parent")?,
        cat: req_str(entry, "cat")?.to_owned(),
        name: req_str(entry, "name")?.to_owned(),
        start_seq: ts,
        end_seq: ts + dur,
        start_us: arg_u64(entry, "_sim_start_us")?,
        end_us: arg_u64(entry, "_sim_end_us")?,
        wall_ns: 0,
        attrs: user_attrs(entry),
    })
}

fn read_event(entry: &JsonValue) -> Result<Event, String> {
    Ok(Event {
        seq: entry.get("ts").and_then(JsonValue::as_u64).ok_or("event without `ts`")?,
        at_us: arg_u64(entry, "_sim_us")?,
        span: arg_opt_u32(entry, "_span")?,
        cat: req_str(entry, "cat")?.to_owned(),
        name: req_str(entry, "name")?.to_owned(),
        attrs: user_attrs(entry),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    fn sample_trace() -> Trace {
        let obs = Collector::enabled();
        let run = obs.begin_span("lifecycle", "concern:distribution", 0);
        obs.span_attr(run, "si", "<node=server, \"quoted\">");
        let t = obs.begin_span("transform", "apply:distribution<...>", 0);
        obs.event(
            "transform",
            "model.created",
            0,
            vec![("element".into(), "Proxy".into()), ("concern".into(), "distribution".into())],
        );
        obs.end_span(t, 0);
        obs.end_span(run, 7);
        obs.event("fault", "fault.injected", 120, vec![("op".into(), "tx.commit".into())]);
        obs.incr("intrinsic.tx", 12);
        obs.take()
    }

    #[test]
    fn chrome_json_round_trips_exactly() {
        let trace = sample_trace();
        let json = trace.to_chrome_json();
        let back = Trace::from_chrome_json(&json).unwrap();
        assert_eq!(back, trace, "deterministic projection survives the round trip");
        assert_eq!(back.to_chrome_json(), json, "re-export is byte-identical");
    }

    #[test]
    fn chrome_json_is_wall_clock_free() {
        let json = sample_trace().to_chrome_json();
        assert!(!json.contains("wall"), "wall time must not leak into the deterministic export");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn text_tree_shows_structure_only() {
        let tree = sample_trace().to_text_tree();
        assert!(tree.contains("* [lifecycle] concern:distribution"), "{tree}");
        assert!(tree.contains("  * [transform] apply:distribution"), "{tree}");
        assert!(tree.contains("- [transform] model.created"), "{tree}");
        assert!(tree.contains("intrinsic.tx = 12"), "{tree}");
        assert!(!tree.contains("120"), "no timestamps in the tree:\n{tree}");
    }

    #[test]
    fn profile_aggregates_by_span_name() {
        let obs = Collector::enabled();
        for _ in 0..3 {
            let s = obs.begin_span("runtime", "call:Bank.transfer", 0);
            obs.end_span(s, 0);
        }
        let profile = obs.take().to_profile();
        assert!(profile.contains("call:Bank.transfer"), "{profile}");
        assert!(profile.lines().any(|l| l.contains("call:Bank.transfer") && l.contains(" 3 ")));
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(Trace::from_chrome_json("{}").is_err());
        assert!(Trace::from_chrome_json("not json").is_err());
        // A span with a hole in the id space.
        let bad = r#"{"traceEvents":[{"ph":"X","ts":0,"dur":1,"name":"s","cat":"c",
            "args":{"_id":"5","_parent":"","_sim_start_us":"0","_sim_end_us":"0"}}]}"#;
        assert!(Trace::from_chrome_json(bad).is_err());
    }
}
