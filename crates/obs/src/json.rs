//! A minimal hand-rolled JSON reader, just enough to load the Chrome
//! trace files this crate itself emits (the workspace vendors no serde;
//! every serializer in the repo is hand-rolled the same way — see the
//! `bench_*_json` bins and the fault plan's TOML-subset parser).
//!
//! Object member order is preserved, so `parse(emit(t))` re-emits byte
//! identically — the round-trip property the test suite pins.

use std::fmt;

/// A parsed JSON value. Objects keep member order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; trace files only carry u64-safe ints).
    Num(f64),
    /// A number rendered with a fixed decimal precision (e.g.
    /// `Fixed(0.5, 6)` emits `0.500000`). Only produced by emitters —
    /// the parser always yields [`JsonValue::Num`].
    Fixed(f64, u8),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with 2-space indentation. Objects and arrays
    /// whose members are all scalars (or flat arrays) render on one
    /// line — `{"scattered_classes": 1, "statements": 3}` — while
    /// anything nested gets one member per line. Deterministic: a
    /// pure function of the value, shared by every report emitter.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn is_scalar(&self) -> bool {
        !matches!(self, JsonValue::Arr(_) | JsonValue::Obj(_))
    }

    /// Small enough to render on one line.
    fn is_flat(&self) -> bool {
        match self {
            JsonValue::Arr(items) => items.iter().all(JsonValue::is_scalar),
            JsonValue::Obj(members) => {
                members.len() <= 8
                    && members.iter().all(|(_, v)| match v {
                        JsonValue::Obj(_) => false,
                        JsonValue::Arr(_) => v.is_flat(),
                        _ => true,
                    })
            }
            _ => true,
        }
    }

    fn render(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            JsonValue::Arr(items) if !items.is_empty() && !self.is_flat() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    v.render(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.render(out, depth);
                }
                out.push(']');
            }
            JsonValue::Obj(members) if !members.is_empty() && !self.is_flat() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    pad(out, depth + 1);
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.render(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push('}');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.render(out, depth);
                }
                out.push('}');
            }
            scalar => {
                let _ = write!(out, "{scalar}");
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escapes a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::Fixed(n, prec) => write!(f, "{:.*}", *prec as usize, n),
            JsonValue::Str(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            self.pos += 4;
                            // Surrogate pairs do not occur in traces we
                            // emit; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Re-read the full UTF-8 scalar starting one back.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8".to_owned())?;
                    let ch = s.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            JsonValue::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn round_trips_escapes_and_order() {
        let text = r#"{"z":"a\"b\\c","a":[true,false,null],"n":42}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.to_string(), text, "member order and escapes preserved");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "1 2", "{'a': 1}"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn fixed_renders_with_exact_precision() {
        assert_eq!(JsonValue::Fixed(0.5, 6).to_string(), "0.500000");
        assert_eq!(JsonValue::Fixed(0.0, 6).to_string(), "0.000000");
        assert_eq!(JsonValue::Fixed(1.25, 1).to_string(), "1.2");
    }

    #[test]
    fn pretty_inlines_flat_members_and_indents_nested_ones() {
        let doc = JsonValue::Obj(vec![
            ("total".into(), JsonValue::Num(2.0)),
            ("ratio".into(), JsonValue::Fixed(0.5, 6)),
            (
                "concerns".into(),
                JsonValue::Obj(vec![(
                    "sec".into(),
                    JsonValue::Obj(vec![
                        ("classes".into(), JsonValue::Num(1.0)),
                        ("statements".into(), JsonValue::Num(3.0)),
                    ]),
                )]),
            ),
            ("buckets".into(), JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(
            text,
            "{\n  \"total\": 2,\n  \"ratio\": 0.500000,\n  \"concerns\": {\n    \"sec\": \
             {\"classes\": 1, \"statements\": 3}\n  },\n  \"buckets\": [1, 2]\n}\n"
        );
        // Pretty output is still parseable (Fixed parses back as Num).
        assert!(JsonValue::parse(&text).is_ok());
    }

    #[test]
    fn unicode_survives() {
        let v = JsonValue::parse("\"caf\u{e9} \\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("café é"));
    }
}
