//! The collector: spans, events, counters, and the disabled fast path.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Handle to an open (or closed) span. The disabled collector hands out
/// a sentinel that every later call ignores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    const NONE: SpanId = SpanId(u32::MAX);

    /// The raw index into [`Trace::spans`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One hierarchical span: a pipeline stage with a begin and an end.
///
/// `start_seq`/`end_seq` are logical ticks (every recorded begin, end
/// and event consumes one), so sibling spans never overlap and children
/// nest strictly — the deterministic timeline. `start_us`/`end_us` are
/// the simulated clock, 0 for model-level phases that run before the
/// middleware exists. `wall_ns` is host wall-clock duration and is
/// deliberately excluded from the deterministic exporters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Index into the trace's span table.
    pub id: u32,
    /// Enclosing span, if any.
    pub parent: Option<u32>,
    /// Span category (`lifecycle`, `transform`, `weave`, `runtime`, ...).
    pub cat: String,
    /// Span name (`concern:distribution`, `call:Bank.transfer`, ...).
    pub name: String,
    /// Logical tick at which the span opened.
    pub start_seq: u64,
    /// Logical tick at which the span closed.
    pub end_seq: u64,
    /// Sim time (µs) at open.
    pub start_us: u64,
    /// Sim time (µs) at close.
    pub end_us: u64,
    /// Host wall-clock duration in ns (non-deterministic; profile only).
    pub wall_ns: u64,
    /// Key/value attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

/// One instantaneous typed event, attached to the innermost open span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Logical tick of the event.
    pub seq: u64,
    /// Sim time (µs).
    pub at_us: u64,
    /// Innermost span open when the event fired.
    pub span: Option<u32>,
    /// Event category (`transform`, `weave`, `fault`, ...).
    pub cat: String,
    /// Event name (`model.created`, `weave.advice`, `fault.injected`, ...).
    pub name: String,
    /// Key/value attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

/// Everything one collector recorded. `PartialEq` compares the
/// deterministic projection only — wall-clock durations are ignored, so
/// two same-seed runs compare equal even though their wall times differ.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, id-indexed, in open order.
    pub spans: Vec<Span>,
    /// All events, in seq order.
    pub events: Vec<Event>,
    /// Final monotonic counter values.
    pub counters: BTreeMap<String, u64>,
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        let strip = |s: &Span| {
            let mut s = s.clone();
            s.wall_ns = 0;
            s
        };
        self.events == other.events
            && self.counters == other.counters
            && self.spans.len() == other.spans.len()
            && self.spans.iter().map(strip).eq(other.spans.iter().map(strip))
    }
}

impl Trace {
    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty() && self.counters.is_empty()
    }

    /// Top-level spans (no parent), in open order.
    pub fn roots(&self) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Direct child spans of `id`, in open order.
    pub fn children(&self, id: u32) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Events attached to span `id`, in seq order.
    pub fn events_of(&self, id: u32) -> Vec<&Event> {
        self.events.iter().filter(|e| e.span == Some(id)).collect()
    }

    /// The value of an attribute on a span or event attribute list.
    pub fn attr<'a>(attrs: &'a [(String, String)], key: &str) -> Option<&'a str> {
        attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Concatenates independently-recorded traces into one, in the
    /// order given: span ids (and the parent/event references to them)
    /// are renumbered past the spans already merged, logical seq ticks
    /// are offset so each trace's timeline follows the previous one,
    /// and counters sum. Sim-time axes are left untouched — merged
    /// traces (e.g. per-tenant serving sessions) each keep their own
    /// clock, which is fine for every deterministic exporter because
    /// ordering is by seq. Merging the same traces in the same order is
    /// pure, so shard-parallel runs that merge in tenant order produce
    /// a byte-identical merged trace.
    pub fn merge(traces: &[Trace]) -> Trace {
        let mut out = Trace::default();
        let mut seq_base = 0u64;
        for trace in traces {
            let id_base = out.spans.len() as u32;
            let mut max_seq = 0u64;
            for span in &trace.spans {
                let mut s = span.clone();
                s.id += id_base;
                s.parent = s.parent.map(|p| p + id_base);
                s.start_seq += seq_base;
                s.end_seq += seq_base;
                max_seq = max_seq.max(span.end_seq.max(span.start_seq));
                out.spans.push(s);
            }
            for event in &trace.events {
                let mut e = event.clone();
                e.span = e.span.map(|p| p + id_base);
                e.seq += seq_base;
                max_seq = max_seq.max(event.seq);
                out.events.push(e);
            }
            for (k, v) in &trace.counters {
                *out.counters.entry(k.clone()).or_insert(0) += v;
            }
            if !(trace.spans.is_empty() && trace.events.is_empty()) {
                seq_base += max_seq + 1;
            }
        }
        out.events.sort_by_key(|e| e.seq);
        // Merged per-tenant timelines must stay seq-monotone: spans in
        // open order and events after sorting. Seq ranges of the input
        // traces are made disjoint above, so any violation means an
        // input trace itself was out of order (e.g. a sampling discard
        // that rewound the logical clock).
        debug_assert!(
            out.spans.windows(2).all(|w| w[0].start_seq < w[1].start_seq),
            "merged trace lost span open-order seq monotonicity"
        );
        debug_assert!(
            out.events.windows(2).all(|w| w[0].seq < w[1].seq),
            "merged trace has events sharing a logical tick"
        );
        out
    }
}

/// A rollback point in a collector's buffers, from [`Collector::mark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceMark {
    spans: usize,
    events: usize,
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<Span>,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    /// Stack of open span ids (innermost last).
    open: Vec<u32>,
    /// Per-span wall-clock start, taken at open, consumed at close.
    wall_start: Vec<Option<Instant>>,
    seq: u64,
}

impl Inner {
    fn tick(&mut self) -> u64 {
        let t = self.seq;
        self.seq += 1;
        t
    }

    fn close(&mut self, id: u32, sim_us: u64) {
        let end_seq = self.tick();
        let wall = self.wall_start[id as usize].take();
        let span = &mut self.spans[id as usize];
        span.end_seq = end_seq;
        span.end_us = sim_us;
        if let Some(start) = wall {
            span.wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }
}

/// The tracing handle threaded through the pipeline. Cheap to clone
/// (shared state), `Send + Sync` so lifecycles and weavers holding one
/// still move into rayon pools, and free when disabled: every recording
/// method starts with one branch on the inner `Option` and returns
/// immediately — the same inert-fast-path contract as the middleware's
/// `FaultInjector::check`.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Collector {
    /// A recording collector.
    pub fn enabled() -> Self {
        Collector { inner: Some(Arc::new(Mutex::new(Inner::default()))) }
    }

    /// The no-op collector (also [`Default`]). Hot-path cost: one branch.
    pub fn disabled() -> Self {
        Collector { inner: None }
    }

    /// True when recording. Callers use this to guard attribute
    /// construction that would allocate before the one-branch bailout.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span nested under the innermost open span.
    pub fn begin_span(&self, cat: &str, name: &str, sim_us: u64) -> SpanId {
        let Some(inner) = &self.inner else { return SpanId::NONE };
        let mut g = inner.lock().expect("collector poisoned");
        let start_seq = g.tick();
        let id = u32::try_from(g.spans.len()).expect("span table overflow");
        let parent = g.open.last().copied();
        g.spans.push(Span {
            id,
            parent,
            cat: cat.to_owned(),
            name: name.to_owned(),
            start_seq,
            end_seq: start_seq,
            start_us: sim_us,
            end_us: sim_us,
            wall_ns: 0,
            attrs: Vec::new(),
        });
        g.wall_start.push(Some(Instant::now()));
        g.open.push(id);
        SpanId(id)
    }

    /// Attaches (or appends) an attribute to a span.
    pub fn span_attr(&self, span: SpanId, key: &str, value: &str) {
        let Some(inner) = &self.inner else { return };
        if span == SpanId::NONE {
            return;
        }
        let mut g = inner.lock().expect("collector poisoned");
        if let Some(s) = g.spans.get_mut(span.index()) {
            s.attrs.push((key.to_owned(), value.to_owned()));
        }
    }

    /// Closes a span. Spans the caller forgot to close above it on the
    /// stack (error paths) are force-closed at the same sim time, each
    /// with its own tick, so nesting stays strict.
    pub fn end_span(&self, span: SpanId, sim_us: u64) {
        let Some(inner) = &self.inner else { return };
        if span == SpanId::NONE {
            return;
        }
        let mut g = inner.lock().expect("collector poisoned");
        if !g.open.contains(&(span.0)) {
            return; // already closed (double end is a no-op)
        }
        while let Some(top) = g.open.pop() {
            g.close(top, sim_us);
            if top == span.0 {
                break;
            }
        }
    }

    /// Records an instantaneous event under the innermost open span.
    pub fn event(&self, cat: &str, name: &str, sim_us: u64, attrs: Vec<(String, String)>) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("collector poisoned");
        let seq = g.tick();
        let span = g.open.last().copied();
        g.events.push(Event {
            seq,
            at_us: sim_us,
            span,
            cat: cat.to_owned(),
            name: name.to_owned(),
            attrs,
        });
    }

    /// Bumps a monotonic counter.
    pub fn incr(&self, counter: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("collector poisoned");
        match g.counters.get_mut(counter) {
            Some(v) => *v += delta,
            None => {
                g.counters.insert(counter.to_owned(), delta);
            }
        }
    }

    /// A high-water mark of the record buffers, for speculative
    /// recording: take a mark, record a region, then either keep it or
    /// roll it back with [`Collector::discard_to`]. This is the trace
    /// sampler's hook — tail-based sampling records every request's
    /// spans and discards the region once the outcome says it is not
    /// interesting.
    pub fn mark(&self) -> TraceMark {
        let Some(inner) = &self.inner else {
            return TraceMark { spans: 0, events: 0 };
        };
        let g = inner.lock().expect("collector poisoned");
        TraceMark { spans: g.spans.len(), events: g.events.len() }
    }

    /// Discards every span and event recorded since `mark` was taken.
    /// Spans still open above the mark are popped off the open stack.
    /// Counters and the logical seq counter are *not* rolled back: a
    /// counter records that work happened whether or not its trace is
    /// kept, and rewinding seq would let a later region reuse ticks and
    /// break [`Trace::merge`]'s monotonicity contract.
    pub fn discard_to(&self, mark: TraceMark) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("collector poisoned");
        if mark.spans > g.spans.len() || mark.events > g.events.len() {
            return; // stale mark from before a take(); nothing to discard
        }
        g.spans.truncate(mark.spans);
        g.wall_start.truncate(mark.spans);
        g.events.truncate(mark.events);
        while g.open.last().is_some_and(|&id| id as usize >= mark.spans) {
            g.open.pop();
        }
    }

    /// A clone of everything recorded so far (open spans appear with
    /// `end_seq == start_seq`).
    pub fn snapshot(&self) -> Trace {
        let Some(inner) = &self.inner else { return Trace::default() };
        let g = inner.lock().expect("collector poisoned");
        Trace { spans: g.spans.clone(), events: g.events.clone(), counters: g.counters.clone() }
    }

    /// Drains the collector, returning the finished trace and leaving it
    /// empty (still enabled).
    pub fn take(&self) -> Trace {
        let Some(inner) = &self.inner else { return Trace::default() };
        let mut g = inner.lock().expect("collector poisoned");
        let drained = std::mem::take(&mut *g);
        Trace { spans: drained.spans, events: drained.events, counters: drained.counters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_events_attach() {
        let obs = Collector::enabled();
        let outer = obs.begin_span("lifecycle", "outer", 10);
        let inner = obs.begin_span("transform", "inner", 11);
        obs.event("transform", "model.created", 11, vec![("element".into(), "X".into())]);
        obs.end_span(inner, 12);
        obs.end_span(outer, 13);
        let t = obs.take();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].span, Some(1));
        // Strict tick nesting: outer [0, 4], inner [1, 3], event 2.
        assert!(t.spans[0].start_seq < t.spans[1].start_seq);
        assert!(t.spans[1].end_seq < t.spans[0].end_seq);
        assert!(t.events[0].seq > t.spans[1].start_seq && t.events[0].seq < t.spans[1].end_seq);
        assert_eq!(t.spans[0].start_us, 10);
        assert_eq!(t.spans[0].end_us, 13);
    }

    #[test]
    fn forgotten_children_are_force_closed() {
        let obs = Collector::enabled();
        let outer = obs.begin_span("a", "outer", 0);
        let _leaked = obs.begin_span("a", "leaked", 0);
        obs.end_span(outer, 5);
        let t = obs.take();
        assert!(t.spans.iter().all(|s| s.end_seq > s.start_seq), "{t:?}");
        assert_eq!(t.spans[1].end_us, 5);
    }

    #[test]
    fn double_end_is_a_no_op() {
        let obs = Collector::enabled();
        let s = obs.begin_span("a", "s", 0);
        obs.end_span(s, 1);
        obs.end_span(s, 99);
        let t = obs.take();
        assert_eq!(t.spans[0].end_us, 1);
    }

    #[test]
    fn disabled_records_nothing() {
        let obs = Collector::disabled();
        assert!(!obs.is_enabled());
        let s = obs.begin_span("a", "b", 0);
        obs.span_attr(s, "k", "v");
        obs.event("a", "e", 0, Vec::new());
        obs.incr("c", 3);
        obs.end_span(s, 0);
        assert!(obs.take().is_empty());
        assert!(obs.snapshot().is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let obs = Collector::enabled();
        obs.incr("intrinsic.tx", 1);
        obs.incr("intrinsic.tx", 2);
        obs.incr("intrinsic.sec", 5);
        let t = obs.take();
        assert_eq!(t.counters["intrinsic.tx"], 3);
        assert_eq!(t.counters["intrinsic.sec"], 5);
    }

    #[test]
    fn trace_equality_ignores_wall_time() {
        let run = || {
            let obs = Collector::enabled();
            let s = obs.begin_span("a", "s", 0);
            std::thread::yield_now();
            obs.end_span(s, 1);
            obs.take()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
    }

    #[test]
    fn merge_renumbers_and_sums() {
        let record = |name: &str, n: u64| {
            let obs = Collector::enabled();
            let outer = obs.begin_span("serve", name, 0);
            let inner = obs.begin_span("lifecycle", "child", 1);
            obs.event("fault", "hit", 1, Vec::new());
            obs.end_span(inner, 2);
            obs.end_span(outer, 3);
            obs.incr("serve.completed", n);
            obs.take()
        };
        let (a, b) = (record("t00", 2), record("t01", 3));
        let merged = Trace::merge(&[a.clone(), b.clone()]);
        assert_eq!(merged.spans.len(), 4);
        assert_eq!(merged.events.len(), 2);
        // Second trace's spans renumbered past the first's.
        assert_eq!(merged.spans[2].id, 2);
        assert_eq!(merged.spans[3].parent, Some(2));
        assert_eq!(merged.events[1].span, Some(3));
        // Seq timelines concatenate: everything in b comes after a.
        let a_max = merged.spans[1].end_seq.max(merged.spans[0].end_seq);
        assert!(merged.spans[2].start_seq > a_max);
        assert_eq!(merged.counters["serve.completed"], 5);
        // Merge is pure: same inputs, same order, same bytes.
        assert_eq!(merged, Trace::merge(&[a, b]));
    }

    #[test]
    fn merge_keeps_seq_monotonicity_after_discards() {
        // A trace whose collector discarded a sampled-out region in the
        // middle (leaving a seq gap) must still merge cleanly — the
        // debug assertions in merge() verify strict monotonicity.
        let record = |drop_middle: bool| {
            let obs = Collector::enabled();
            let a = obs.begin_span("serve", "kept", 0);
            obs.end_span(a, 1);
            let mark = obs.mark();
            let b = obs.begin_span("serve", "speculative", 2);
            obs.event("serve", "inside", 2, Vec::new());
            obs.end_span(b, 3);
            if drop_middle {
                obs.discard_to(mark);
            }
            let c = obs.begin_span("serve", "tail", 4);
            obs.event("serve", "tail.event", 4, Vec::new());
            obs.end_span(c, 5);
            obs.take()
        };
        let merged = Trace::merge(&[record(true), record(false)]);
        assert_eq!(merged.spans.len(), 5);
        assert!(merged.spans.windows(2).all(|w| w[0].start_seq < w[1].start_seq));
        assert!(merged.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn discard_to_rolls_back_spans_events_and_open_stack() {
        let obs = Collector::enabled();
        let outer = obs.begin_span("a", "outer", 0);
        let mark = obs.mark();
        let inner = obs.begin_span("a", "speculative", 1);
        obs.event("a", "e", 1, Vec::new());
        obs.incr("work", 1);
        obs.discard_to(mark);
        obs.end_span(inner, 2); // stale id: must not resurrect anything
        obs.event("a", "after", 3, Vec::new());
        obs.end_span(outer, 4);
        let t = obs.take();
        assert_eq!(t.spans.len(), 1, "{t:?}");
        assert_eq!(t.spans[0].end_us, 4);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].name, "after");
        assert_eq!(t.events[0].span, Some(0), "event reattaches to the surviving open span");
        assert_eq!(t.counters["work"], 1, "counters survive a discard");
    }

    #[test]
    fn discard_to_on_disabled_collector_is_a_no_op() {
        let obs = Collector::disabled();
        let mark = obs.mark();
        obs.discard_to(mark);
        assert!(obs.take().is_empty());
    }

    #[test]
    fn merge_of_empty_traces_is_empty() {
        assert!(Trace::merge(&[Trace::default(), Trace::default()]).is_empty());
    }

    #[test]
    fn take_drains_but_keeps_recording() {
        let obs = Collector::enabled();
        obs.incr("c", 1);
        let first = obs.take();
        assert_eq!(first.counters["c"], 1);
        obs.incr("c", 1);
        assert_eq!(obs.take().counters["c"], 1);
    }
}
