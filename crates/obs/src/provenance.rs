//! Provenance: from any recorded [`Trace`], rebuild for each model
//! element / woven advice / runtime call the chain
//! `concern → CMT(Si) → advice → runtime events`, and answer
//! `comet-cli provenance <element>` queries against it.

use crate::collector::Trace;
use std::fmt;

/// A model-level fact: some CMT, specialized by some `Si`, touched an
/// element. Sourced from `model.created|modified|removed` events.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEntry {
    /// `created`, `modified` or `removed` (the event name suffix).
    pub action: String,
    /// Element name, e.g. `ClientProxy` or `Bank.transfer`.
    pub element: String,
    /// Metamodel kind, e.g. `Class` or `Operation`.
    pub kind: String,
    /// Owning concern, e.g. `distribution`.
    pub concern: String,
    /// The concrete transformation's full name, `Name<k=v,...>`.
    pub cmt: String,
    /// The specialization parameters `Si` as recorded.
    pub si: String,
    /// Logical tick of the event (orders entries).
    pub seq: u64,
}

/// A weave-time fact: an aspect's advice landed on a join-point shadow.
/// Sourced from `weave.advice` events.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceEntry {
    /// Aspect name, e.g. `TransactionAspect`.
    pub aspect: String,
    /// Advice kind (`before` / `after` / `around`).
    pub kind: String,
    /// The join-point shadow, e.g. `call(Bank.transfer)`.
    pub shadow: String,
    /// Class the shadow lives in.
    pub class: String,
    /// Method the shadow lives in.
    pub method: String,
    /// Logical tick of the event.
    pub seq: u64,
}

/// A runtime fact: one interpreted call span plus the fault events that
/// fired inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeEntry {
    /// The callee, e.g. `Bank.transfer`.
    pub call: String,
    /// Call outcome as recorded (`ok`, `thrown:...`, ...).
    pub outcome: String,
    /// Fault events inside the span, formatted `name k=v ...`.
    pub faults: Vec<String>,
    /// Logical start tick of the span.
    pub seq: u64,
}

/// The provenance index over one trace. Build once, query many times.
#[derive(Debug, Default, Clone)]
pub struct ProvenanceIndex {
    model: Vec<ModelEntry>,
    advice: Vec<AdviceEntry>,
    runtime: Vec<RuntimeEntry>,
}

/// All provenance entries matching one query, ready to print.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceReport {
    /// The query string the report answers.
    pub query: String,
    /// Matching model-level entries, in tick order.
    pub model: Vec<ModelEntry>,
    /// Matching weave-time entries, in tick order.
    pub advice: Vec<AdviceEntry>,
    /// Matching runtime entries, in tick order.
    pub runtime: Vec<RuntimeEntry>,
}

fn attr<'a>(attrs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

impl ProvenanceIndex {
    /// Indexes a trace. Attributes missing on an event are inherited
    /// from the nearest enclosing span that carries them (so a
    /// `model.created` event inside `apply:Tx<...>` inside
    /// `concern:transactions` needs no redundant tagging).
    pub fn build(trace: &Trace) -> ProvenanceIndex {
        let mut index = ProvenanceIndex::default();
        let lookup = |span: Option<u32>, key: &str, own: &[(String, String)]| -> String {
            if let Some(v) = attr(own, key) {
                return v.to_owned();
            }
            let mut cursor = span;
            while let Some(id) = cursor {
                let s = &trace.spans[id as usize];
                if let Some(v) = attr(&s.attrs, key) {
                    return v.to_owned();
                }
                cursor = s.parent;
            }
            String::new()
        };
        for e in &trace.events {
            if e.cat == "transform" {
                if let Some(action) = e.name.strip_prefix("model.") {
                    index.model.push(ModelEntry {
                        action: action.to_owned(),
                        element: lookup(e.span, "element", &e.attrs),
                        kind: lookup(e.span, "kind", &e.attrs),
                        concern: lookup(e.span, "concern", &e.attrs),
                        cmt: lookup(e.span, "cmt", &e.attrs),
                        si: lookup(e.span, "si", &e.attrs),
                        seq: e.seq,
                    });
                }
            } else if e.cat == "weave" && e.name == "weave.advice" {
                index.advice.push(AdviceEntry {
                    aspect: lookup(e.span, "aspect", &e.attrs),
                    kind: lookup(e.span, "advice", &e.attrs),
                    shadow: lookup(e.span, "shadow", &e.attrs),
                    class: lookup(e.span, "class", &e.attrs),
                    method: lookup(e.span, "method", &e.attrs),
                    seq: e.seq,
                });
            }
        }
        for s in trace.spans.iter().filter(|s| s.cat == "runtime") {
            let Some(call) = s.name.strip_prefix("call:") else {
                continue;
            };
            // A fault event belongs to this call if its span chain
            // passes through it.
            let mut faults = Vec::new();
            for e in trace.events.iter().filter(|e| e.cat == "fault") {
                let mut cursor = e.span;
                while let Some(id) = cursor {
                    if id == s.id {
                        let mut line = e.name.clone();
                        for (k, v) in &e.attrs {
                            line.push_str(&format!(" {k}={v}"));
                        }
                        faults.push(line);
                        break;
                    }
                    cursor = trace.spans[id as usize].parent;
                }
            }
            index.runtime.push(RuntimeEntry {
                call: call.to_owned(),
                outcome: attr(&s.attrs, "outcome").unwrap_or("").to_owned(),
                faults,
                seq: s.start_seq,
            });
        }
        index
    }

    /// Answers a query. A query matches an entry when it is a substring
    /// of any identifying field (element, class, method, shadow, aspect,
    /// concern, CMT or callee) — so `provenance ClientProxy`,
    /// `provenance Bank.transfer` and `provenance transactions` all
    /// work. Returns `None` when nothing in the trace matches.
    pub fn query(&self, needle: &str) -> Option<ProvenanceReport> {
        let hit = |hay: &str| !needle.is_empty() && hay.contains(needle);
        let model: Vec<ModelEntry> = self
            .model
            .iter()
            .filter(|m| hit(&m.element) || hit(&m.concern) || hit(&m.cmt))
            .cloned()
            .collect();
        let advice: Vec<AdviceEntry> = self
            .advice
            .iter()
            .filter(|a| hit(&a.aspect) || hit(&a.shadow) || hit(&a.class) || hit(&a.method))
            .cloned()
            .collect();
        let runtime: Vec<RuntimeEntry> = self
            .runtime
            .iter()
            .filter(|r| hit(&r.call) || r.faults.iter().any(|f| hit(f)))
            .cloned()
            .collect();
        if model.is_empty() && advice.is_empty() && runtime.is_empty() {
            return None;
        }
        Some(ProvenanceReport { query: needle.to_owned(), model, advice, runtime })
    }

    /// Number of indexed entries across all three layers.
    pub fn len(&self) -> usize {
        self.model.len() + self.advice.len() + self.runtime.len()
    }

    /// True when the trace held nothing indexable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for ProvenanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "provenance: {}", self.query)?;
        if !self.model.is_empty() {
            writeln!(f, "model:")?;
            for m in &self.model {
                write!(f, "  {} {}", m.action, m.element)?;
                if !m.kind.is_empty() {
                    write!(f, " ({})", m.kind)?;
                }
                write!(f, " <- concern {}", m.concern)?;
                if !m.cmt.is_empty() {
                    write!(f, ", cmt {}", m.cmt)?;
                }
                if !m.si.is_empty() {
                    write!(f, ", si {}", m.si)?;
                }
                writeln!(f)?;
            }
        }
        if !self.advice.is_empty() {
            writeln!(f, "advice:")?;
            for a in &self.advice {
                writeln!(
                    f,
                    "  {} ({}) at {} in {}.{}",
                    a.aspect, a.kind, a.shadow, a.class, a.method
                )?;
            }
        }
        if !self.runtime.is_empty() {
            writeln!(f, "runtime:")?;
            for r in &self.runtime {
                write!(f, "  call {}", r.call)?;
                if !r.outcome.is_empty() {
                    write!(f, " outcome={}", r.outcome)?;
                }
                writeln!(f)?;
                for fault in &r.faults {
                    writeln!(f, "    {fault}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    /// A miniature end-to-end trace: one concern applies a CMT that
    /// creates an element, weaving lands an advice on it, and a runtime
    /// call through it absorbs a fault.
    fn pipeline_trace() -> Trace {
        let obs = Collector::enabled();
        let c = obs.begin_span("lifecycle", "concern:transactions", 0);
        obs.span_attr(c, "concern", "transactions");
        obs.span_attr(c, "cmt", "Transactions<res=balance>");
        obs.span_attr(c, "si", "res=balance");
        let t = obs.begin_span("transform", "apply:Transactions<res=balance>", 0);
        obs.event(
            "transform",
            "model.created",
            0,
            vec![("element".into(), "TxManager".into()), ("kind".into(), "Class".into())],
        );
        obs.end_span(t, 0);
        obs.end_span(c, 0);
        obs.event(
            "weave",
            "weave.advice",
            0,
            vec![
                ("aspect".into(), "TransactionAspect".into()),
                ("advice".into(), "around".into()),
                ("shadow".into(), "call(Bank.transfer)".into()),
                ("class".into(), "Bank".into()),
                ("method".into(), "transfer".into()),
            ],
        );
        let call = obs.begin_span("runtime", "call:Bank.transfer", 10);
        obs.event("fault", "fault.injected", 15, vec![("op".into(), "tx.commit".into())]);
        obs.span_attr(call, "outcome", "ok");
        obs.end_span(call, 20);
        obs.take()
    }

    #[test]
    fn chains_concern_to_runtime() {
        let index = ProvenanceIndex::build(&pipeline_trace());
        assert_eq!(index.len(), 3);

        // Model entry inherits concern/cmt/si from the enclosing spans.
        let report = index.query("TxManager").expect("element is indexed");
        assert_eq!(report.model.len(), 1);
        let m = &report.model[0];
        assert_eq!(m.concern, "transactions");
        assert_eq!(m.cmt, "Transactions<res=balance>");
        assert_eq!(m.si, "res=balance");

        // The shadow's class links advice and runtime to the same query.
        let report = index.query("Bank.transfer").expect("callee is indexed");
        assert_eq!(report.advice.len(), 1);
        assert_eq!(report.runtime.len(), 1);
        assert_eq!(report.runtime[0].faults, vec!["fault.injected op=tx.commit"]);
        let shown = report.to_string();
        assert!(shown.contains("TransactionAspect (around) at call(Bank.transfer)"), "{shown}");
        assert!(shown.contains("call Bank.transfer outcome=ok"), "{shown}");
    }

    #[test]
    fn unmatched_query_is_none() {
        let index = ProvenanceIndex::build(&pipeline_trace());
        assert!(index.query("NoSuchThing").is_none());
        assert!(index.query("").is_none());
    }

    #[test]
    fn empty_trace_indexes_empty() {
        let index = ProvenanceIndex::build(&Trace::default());
        assert!(index.is_empty());
    }
}
