//! Property suite for the deterministic histogram/snapshot algebra.

use comet_metrics::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, MetricsRegistry};
use proptest::prelude::*;

fn hist(values: &[u64]) -> HistogramSnapshot {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn bucket_brackets_every_value(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(bucket_upper(idx) >= v);
        if idx > 0 {
            prop_assert!(bucket_upper(idx - 1) < v);
        }
    }

    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (sa, sb) = (hist(&a), hist(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..30),
        b in prop::collection::vec(any::<u64>(), 0..30),
        c in prop::collection::vec(any::<u64>(), 0..30),
    ) {
        let (sa, sb, sc) = (hist(&a), hist(&b), hist(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_observing_the_concatenation(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let mut merged = hist(&a);
        merged.merge(&hist(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, hist(&both));
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        values in prop::collection::vec(0u64..1_000_000, 1..60),
    ) {
        let s = hist(&values);
        let (p50, p90, p99) = (s.percentile(50.0), s.percentile(90.0), s.percentile(99.0));
        prop_assert!(p50 <= p90 && p90 <= p99);
        prop_assert!(p99 >= s.max || p99 >= *values.iter().max().unwrap());
        // nearest-rank on bucket uppers can overshoot by at most 1/16
        prop_assert!(p50 >= s.min);
    }

    #[test]
    fn snapshot_merge_is_order_independent(
        series in prop::collection::vec(
            (0u8..4, prop::collection::vec(0u64..100_000, 0..20)),
            1..5,
        ),
    ) {
        // Build one registry per "shard", then fold the snapshots in
        // two different orders: the result must be identical, which is
        // what makes shard-count invariance possible upstream.
        let shards: Vec<_> = series
            .iter()
            .map(|(tenant, values)| {
                let mut r = MetricsRegistry::enabled();
                let name = format!("t{tenant:02}");
                let c = r.counter("req_total", &[("tenant", &name)]);
                let h = r.histogram("lat_us", &[("tenant", &name)]);
                for &v in values {
                    r.add(c, 1);
                    r.observe(h, v);
                }
                r.snapshot()
            })
            .collect();
        let mut forward = comet_metrics::MetricsSnapshot::default();
        for s in &shards {
            forward.merge(s);
        }
        let mut backward = comet_metrics::MetricsSnapshot::default();
        for s in shards.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(forward.to_prometheus(), backward.to_prometheus());
    }
}
