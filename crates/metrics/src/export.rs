//! Snapshot exporters: Prometheus text exposition, JSON (through the
//! shared `comet_obs::JsonValue` writer) and a sorted text table.
//!
//! All three iterate the snapshot's `BTreeMap`s, so output is sorted
//! by series name and label set — a pure function of the snapshot.

use std::fmt::Write as _;

use comet_obs::JsonValue;

use crate::histogram::HistogramSnapshot;
use crate::registry::{MetricKey, MetricsSnapshot, WindowSnapshot};

fn type_header(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = name.to_string();
    }
}

/// `name{labels,extra}` with one extra label appended in sorted order.
fn series_with(key: &MetricKey, extra_key: &str, extra_val: &str) -> String {
    let mut labels: Vec<(&str, &str)> =
        key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    labels.push((extra_key, extra_val));
    labels.sort();
    let mut k = MetricKey { name: key.name.clone(), labels: Vec::new() };
    k.labels = labels.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
    k.render()
}

impl MetricsSnapshot {
    /// Prometheus text exposition format (v0.0.4): `# TYPE` headers,
    /// one series per line, histograms as cumulative `_bucket{le=}`
    /// series plus `_sum`/`_count`, windows flattened to good/bad
    /// counters. Sorted and deterministic.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last = String::new();
        for (key, v) in &self.counters {
            type_header(&mut out, &mut last, &key.name, "counter");
            let _ = writeln!(out, "{} {}", key.render(), v);
        }
        for (key, v) in &self.gauges {
            type_header(&mut out, &mut last, &key.name, "gauge");
            let _ = writeln!(out, "{} {}", key.render(), v);
        }
        for (key, h) in &self.histograms {
            type_header(&mut out, &mut last, &key.name, "histogram");
            let bucket_key =
                MetricKey { name: format!("{}_bucket", key.name), labels: key.labels.clone() };
            let mut cumulative = 0u64;
            for &(upper, count) in &h.buckets {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_with(&bucket_key, "le", &upper.to_string()),
                    cumulative
                );
            }
            let _ = writeln!(out, "{} {}", series_with(&bucket_key, "le", "+Inf"), h.count);
            let mut sum_key = key.clone();
            sum_key.name = format!("{}_sum", key.name);
            let _ = writeln!(out, "{} {}", sum_key.render(), h.sum);
            sum_key.name = format!("{}_count", key.name);
            let _ = writeln!(out, "{} {}", sum_key.render(), h.count);
        }
        for (key, w) in &self.windows {
            let (good, bad) = w.totals();
            let mut k = key.clone();
            k.name = format!("{}_good_total", key.name);
            type_header(&mut out, &mut last, &k.name, "counter");
            let _ = writeln!(out, "{} {}", k.render(), good);
            k.name = format!("{}_bad_total", key.name);
            type_header(&mut out, &mut last, &k.name, "counter");
            let _ = writeln!(out, "{} {}", k.render(), bad);
        }
        out
    }

    /// JSON document via the shared `JsonValue` pretty writer.
    pub fn to_json(&self) -> String {
        let histogram_value = |h: &HistogramSnapshot| {
            JsonValue::Obj(vec![
                ("count".into(), JsonValue::Num(h.count as f64)),
                ("sum".into(), JsonValue::Num(h.sum as f64)),
                ("min".into(), JsonValue::Num(h.min as f64)),
                ("max".into(), JsonValue::Num(h.max as f64)),
                ("p50".into(), JsonValue::Num(h.percentile(50.0) as f64)),
                ("p99".into(), JsonValue::Num(h.percentile(99.0) as f64)),
                (
                    "buckets".into(),
                    JsonValue::Arr(
                        h.buckets
                            .iter()
                            .map(|&(u, c)| {
                                JsonValue::Arr(vec![
                                    JsonValue::Num(u as f64),
                                    JsonValue::Num(c as f64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let window_value = |w: &WindowSnapshot| {
            JsonValue::Obj(vec![
                ("window_us".into(), JsonValue::Num(w.window_us as f64)),
                (
                    "cells".into(),
                    JsonValue::Arr(
                        w.cells
                            .iter()
                            .map(|&(i, g, b)| {
                                JsonValue::Arr(vec![
                                    JsonValue::Num(i as f64),
                                    JsonValue::Num(g as f64),
                                    JsonValue::Num(b as f64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let doc = JsonValue::Obj(vec![
            (
                "counters".into(),
                JsonValue::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.render(), JsonValue::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                JsonValue::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.render(), JsonValue::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                JsonValue::Obj(
                    self.histograms.iter().map(|(k, h)| (k.render(), histogram_value(h))).collect(),
                ),
            ),
            (
                "windows".into(),
                JsonValue::Obj(
                    self.windows.iter().map(|(k, w)| (k.render(), window_value(w))).collect(),
                ),
            ),
        ]);
        doc.to_pretty()
    }

    /// A sorted, human-scannable text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for (key, v) in &self.counters {
            let _ = writeln!(out, "counter   {} = {}", key.render(), v);
        }
        for (key, v) in &self.gauges {
            let _ = writeln!(out, "gauge     {} = {}", key.render(), v);
        }
        for (key, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {} count={} sum={} min={} max={} p50={} p99={}",
                key.render(),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.percentile(50.0),
                h.percentile(99.0)
            );
        }
        for (key, w) in &self.windows {
            let (good, bad) = w.totals();
            let _ = writeln!(
                out,
                "window    {} width={}µs good={} bad={} cells={}",
                key.render(),
                w.window_us,
                good,
                bad,
                w.cells.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let mut r = MetricsRegistry::enabled();
        let c = r.counter("comet_serve_requests_total", &[("tenant", "t00"), ("kind", "apply")]);
        let g = r.gauge("comet_serve_queue_depth", &[("tenant", "t00")]);
        let h = r.histogram("comet_serve_latency_us", &[("tenant", "t00")]);
        let w = r.window("comet_serve_slo", &[("tenant", "t00")], 100);
        r.add(c, 3);
        r.set(g, 2);
        for v in [5u64, 90, 90, 4000] {
            r.observe(h, v);
            r.record_window(w, v, v < 1000);
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_exposition_has_types_buckets_and_sorted_series() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE comet_serve_requests_total counter"));
        assert!(text.contains("comet_serve_requests_total{kind=\"apply\",tenant=\"t00\"} 3"));
        assert!(text.contains("# TYPE comet_serve_latency_us histogram"));
        assert!(text.contains("comet_serve_latency_us_bucket{le=\"5\",tenant=\"t00\"} 1"));
        assert!(text.contains("comet_serve_latency_us_bucket{le=\"+Inf\",tenant=\"t00\"} 4"));
        assert!(text.contains("comet_serve_latency_us_count{tenant=\"t00\"} 4"));
        assert!(text.contains("comet_serve_slo_good_total{tenant=\"t00\"} 3"));
        assert!(text.contains("comet_serve_slo_bad_total{tenant=\"t00\"} 1"));
        // cumulative: the two 90µs observations land in one bucket
        assert!(text.contains("le=\"91\",tenant=\"t00\"} 3"), "{text}");
    }

    #[test]
    fn json_parses_and_round_trips_deterministically() {
        let snap = sample();
        let text = snap.to_json();
        let doc = comet_obs::JsonValue::parse(&text).expect("valid JSON");
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("comet_serve_latency_us{tenant=\"t00\"}"))
            .expect("histogram present");
        assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(text, snap.to_json(), "exporter is a pure function");
    }

    #[test]
    fn table_is_sorted_and_complete() {
        let text = sample().to_table();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("counter   comet_serve_requests_total"));
        assert!(lines[2].contains("count=4"));
    }
}
