//! SLO policies and burn-rate verdicts.
//!
//! A policy names a latency percentile target and an error budget;
//! evaluation is pure integer arithmetic over a latency histogram and
//! a rolling good/bad window, so the verdict for a tenant is a
//! function of its snapshot alone — byte-identical at any shard count.

use std::collections::BTreeMap;
use std::fmt;

use crate::histogram::HistogramSnapshot;
use crate::registry::WindowSnapshot;

/// An SLO policy parsed from the workload plan's `[slo]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Latency percentile the target applies to (0 < p ≤ 100).
    pub percentile: f64,
    /// Default per-tenant latency target in sim µs.
    pub target_us: u64,
    /// Allowed bad-request fraction (error budget), 0 < b ≤ 1.
    pub error_budget: f64,
    /// Burn-rate window width in sim µs.
    pub window_us: u64,
    /// Per-tenant target overrides from `[slo.tenants]`.
    pub tenant_targets: BTreeMap<String, u64>,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            percentile: 99.0,
            target_us: 50_000,
            error_budget: 0.01,
            window_us: 1_000_000,
            tenant_targets: BTreeMap::new(),
        }
    }
}

impl SloPolicy {
    /// The latency target for `tenant` (override or default).
    pub fn target_for(&self, tenant: &str) -> u64 {
        self.tenant_targets.get(tenant).copied().unwrap_or(self.target_us)
    }

    /// Error budget as integer parts-per-million (min 1, so burn
    /// rates never divide by zero).
    pub fn budget_ppm(&self) -> u64 {
        ((self.error_budget * 1_000_000.0).round() as u64).max(1)
    }

    /// Evaluate one tenant's latency histogram and rolling window
    /// into a verdict. Integer math throughout: the burn rate is the
    /// worst per-window bad fraction divided by the budget, in
    /// milli-units (1000 = burning exactly the budget).
    pub fn evaluate(
        &self,
        tenant: &str,
        latency: &HistogramSnapshot,
        window: Option<&WindowSnapshot>,
    ) -> SloVerdict {
        let target_us = self.target_for(tenant);
        let observed_us = latency.percentile(self.percentile);
        let budget_ppm = self.budget_ppm() as u128;
        let (mut total, mut bad, mut max_burn_milli) = (0u64, 0u64, 0u64);
        if let Some(w) = window {
            for &(_, g, b) in &w.cells {
                let n = g + b;
                total += n;
                bad += b;
                if n > 0 {
                    let frac_ppm = (b as u128) * 1_000_000 / (n as u128);
                    let burn = (frac_ppm * 1000 / budget_ppm) as u64;
                    max_burn_milli = max_burn_milli.max(burn);
                }
            }
        }
        let breached = observed_us > target_us || max_burn_milli >= 1000;
        SloVerdict {
            tenant: tenant.to_string(),
            percentile: self.percentile,
            observed_us,
            target_us,
            total,
            bad,
            max_burn_milli,
            breached,
        }
    }
}

/// The outcome of evaluating an [`SloPolicy`] for one tenant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloVerdict {
    /// Tenant the verdict applies to.
    pub tenant: String,
    /// Percentile that was evaluated.
    pub percentile: f64,
    /// Observed latency at that percentile (bucket upper bound, µs).
    pub observed_us: u64,
    /// The target the tenant was held to (µs).
    pub target_us: u64,
    /// Requests counted by the rolling window.
    pub total: u64,
    /// Bad requests (errors, rejections, sheds, latency misses).
    pub bad: u64,
    /// Worst per-window burn rate in milli-units (1000 = 1.0×).
    pub max_burn_milli: u64,
    /// True when the latency target or the error budget was violated.
    pub breached: bool,
}

impl fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slo {}: p{:.1} {}µs (target {}µs) bad {}/{} burn {}.{:03}x {}",
            self.tenant,
            self.percentile,
            self.observed_us,
            self.target_us,
            self.bad,
            self.total,
            self.max_burn_milli / 1000,
            self.max_burn_milli % 1000,
            if self.breached { "BREACH" } else { "ok" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let mut h = Histogram::new();
        for &v in values {
            h.observe(v);
        }
        h.snapshot()
    }

    #[test]
    fn latency_target_breach_is_detected() {
        let policy = SloPolicy { percentile: 50.0, target_us: 100, ..Default::default() };
        let ok = policy.evaluate("t00", &hist(&[10, 20, 30]), None);
        assert!(!ok.breached, "{ok}");
        let bad = policy.evaluate("t00", &hist(&[500, 600, 700]), None);
        assert!(bad.breached, "{bad}");
        assert!(bad.observed_us > 100);
    }

    #[test]
    fn burn_rate_uses_the_worst_window() {
        let policy = SloPolicy { error_budget: 0.10, target_us: u64::MAX, ..Default::default() };
        // window 0: 1 bad of 10 (burn 1.0x) — window 1: 5 bad of 10 (burn 5.0x)
        let w = WindowSnapshot { window_us: 100, cells: vec![(0, 9, 1), (1, 5, 5)] };
        let v = policy.evaluate("t00", &hist(&[1]), Some(&w));
        assert_eq!(v.max_burn_milli, 5000);
        assert_eq!((v.total, v.bad), (20, 6));
        assert!(v.breached);
    }

    #[test]
    fn tenant_overrides_take_precedence() {
        let mut policy = SloPolicy { target_us: 1000, ..Default::default() };
        policy.tenant_targets.insert("t01".into(), 10);
        assert_eq!(policy.target_for("t00"), 1000);
        assert_eq!(policy.target_for("t01"), 10);
    }
}
