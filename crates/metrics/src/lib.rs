//! # comet-metrics — deterministic serve-time metrics
//!
//! The serving stack (comet-serve) is deterministic by construction:
//! same seed + same plan ⇒ byte-identical report and trace at any
//! shard/thread count. This crate extends that contract to aggregate
//! telemetry. Everything here is *exact*:
//!
//! * [`Histogram`] — fixed-bucket log-linear latency histograms
//!   (16 linear sub-buckets per power of two, relative error ≤ 1/16).
//!   No HDR-style auto-resizing, no DDSketch-style probabilistic
//!   collapse: every observation lands in one statically determined
//!   bucket via integer arithmetic, so bucket counts — and therefore
//!   snapshots, percentiles and SLO verdicts — are byte-identical
//!   across runs and shard counts.
//! * [`MetricsRegistry`] — counters, gauges, histograms and rolling
//!   good/bad windows behind cheap integer handles, with the same
//!   enabled/disabled single-branch fast path as
//!   `comet_obs::Collector`.
//! * [`MetricsSnapshot`] — the immutable view, mergeable in
//!   tenant-name order (merge is associative and commutative), with
//!   three exporters: Prometheus text exposition, JSON through the
//!   shared `comet_obs::JsonValue` writer, and a sorted text table.
//! * [`SloPolicy`] / [`SloVerdict`] — per-tenant latency-percentile
//!   targets and error budgets evaluated into burn rates with pure
//!   integer math (milli-units, ppm budgets).
//!
//! Rolling windows are driven by the middleware `SimClock` (sim µs),
//! not wall time, so window cell boundaries are part of the
//! deterministic replay too.

#![warn(missing_docs)]

mod export;
mod histogram;
mod registry;
mod slo;

pub use histogram::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricKey, MetricsRegistry, MetricsSnapshot,
    WindowHandle, WindowSnapshot,
};
pub use slo::{SloPolicy, SloVerdict};
