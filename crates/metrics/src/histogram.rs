//! Exact log-linear latency histograms.
//!
//! The bucket layout is fixed at compile time and every observation
//! lands in exactly one bucket via integer arithmetic, so two runs
//! that observe the same multiset of values produce byte-identical
//! snapshots — no probabilistic sketch, no floating-point binning.
//!
//! Layout: values below 16 get one bucket each (exact); above that,
//! each power of two is split into 16 linear sub-buckets (a log-linear
//! scheme with 4 sub-bucket bits), which bounds the relative error of
//! any decoded bound at 1/16.

/// Number of linear sub-buckets per power of two (2^4 = 16).
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;

/// Total number of addressable buckets (`u64::MAX` lands in the last).
pub const NUM_BUCKETS: usize = (64 - 3) * SUBS;

/// Map a value to its bucket index. Total and deterministic.
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let sub = ((v >> (top - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        (top as usize - 3) * SUBS + sub
    }
}

/// Inclusive upper bound of the value range covered by bucket `idx`.
pub fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let oct = (idx / SUBS) as u32;
        let sub = (idx % SUBS) as u64;
        let top = oct + 3;
        let lower = (SUBS as u64 + sub) << (top - SUB_BITS);
        lower + ((1u64 << (top - SUB_BITS)) - 1)
    }
}

/// A dense, mutable histogram used at record time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Freeze into a sparse, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets,
        }
    }
}

/// An immutable histogram: exact total count/sum/min/max plus the
/// non-zero buckets as `(inclusive_upper_bound, count)` pairs sorted
/// by bound. Two runs observing the same values compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Exact (saturating) sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-zero buckets as `(upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one. Associative and
    /// commutative: bucket counts add bucket-wise, extrema combine.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let take_left = match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(a), Some(b)) => {
                    if a.0 == b.0 {
                        merged.push((a.0, a.1 + b.1));
                        i += 1;
                        j += 1;
                        continue;
                    }
                    a.0 < b.0
                }
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_left {
                merged.push(self.buckets[i]);
                i += 1;
            } else {
                merged.push(other.buckets[j]);
                j += 1;
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile, reported as the matching bucket's
    /// inclusive upper bound (relative error ≤ 1/16). `0` when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return upper;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bounds_bracket_the_value_within_one_sixteenth() {
        let probes = [16u64, 17, 31, 32, 33, 100, 1000, 65_535, 1 << 40, u64::MAX - 1, u64::MAX];
        for &v in &probes {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            // the previous bucket's bound must be below the value
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "value {v} not past bucket {}", idx - 1);
            }
            if v >= 16 {
                let err = (upper - v) as f64 / v as f64;
                assert!(err <= 1.0 / 16.0, "relative error {err} too large for {v}");
            }
        }
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing_and_total() {
        let mut prev = None;
        for idx in 0..NUM_BUCKETS {
            let upper = bucket_upper(idx);
            if let Some(p) = prev {
                assert!(upper > p, "bucket {idx} bound {upper} not above {p}");
            }
            prev = Some(upper);
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn percentile_is_nearest_rank_on_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), 3);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!(s.percentile(99.0) >= 1000);
        assert_eq!(HistogramSnapshot::default().percentile(99.0), 0);
    }

    #[test]
    fn merge_equals_observing_the_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 90, 700, 700, 16_000] {
            a.observe(v);
            both.observe(v);
        }
        for v in [5u64, 90, 1 << 30] {
            b.observe(v);
            both.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }
}
