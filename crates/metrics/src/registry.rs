//! The metrics registry: named counters, gauges, histograms and
//! rolling windows behind cheap integer handles.
//!
//! A registry is single-owner (each `TenantScheduler` holds its own);
//! cross-shard aggregation happens by merging the immutable
//! [`MetricsSnapshot`]s in tenant-name order, which keeps the merged
//! result independent of shard/thread count.

use std::collections::BTreeMap;

use crate::histogram::{Histogram, HistogramSnapshot};

/// A metric identity: name plus a label set sorted by label key, so
/// identical series compare equal regardless of declaration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Series name, e.g. `comet_serve_requests_total`.
    pub name: String,
    /// Label pairs, sorted by label key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted by key for a canonical order.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// Render as `name` or `name{k="v",k2="v2"}` (Prometheus series
    /// syntax, also used as the JSON/table key).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::new();
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(u32);
/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(u32);
/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(u32);
/// Handle to a registered rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowHandle(u32);

const NO_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone, Default)]
struct WindowedCounter {
    window_us: u64,
    cells: BTreeMap<u64, (u64, u64)>, // index -> (good, bad)
}

/// A registry of metric instruments. Disabled registries hand out
/// inert handles and every record call is a single branch, mirroring
/// `comet_obs::Collector`'s enabled/disabled split.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<u64>,
    counter_index: BTreeMap<MetricKey, u32>,
    gauges: Vec<i64>,
    gauge_index: BTreeMap<MetricKey, u32>,
    histograms: Vec<Histogram>,
    histogram_index: BTreeMap<MetricKey, u32>,
    windows: Vec<WindowedCounter>,
    window_index: BTreeMap<MetricKey, u32>,
}

impl MetricsRegistry {
    /// A recording registry.
    pub fn enabled() -> Self {
        MetricsRegistry { enabled: true, ..Default::default() }
    }

    /// A no-op registry: registration returns inert handles, record
    /// calls are single-branch no-ops.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or look up) a counter series.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        if !self.enabled {
            return CounterHandle(NO_SLOT);
        }
        let key = MetricKey::new(name, labels);
        if let Some(&slot) = self.counter_index.get(&key) {
            return CounterHandle(slot);
        }
        let slot = self.counters.len() as u32;
        self.counters.push(0);
        self.counter_index.insert(key, slot);
        CounterHandle(slot)
    }

    /// Increment a counter.
    pub fn add(&mut self, h: CounterHandle, by: u64) {
        if h.0 != NO_SLOT {
            self.counters[h.0 as usize] += by;
        }
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        if !self.enabled {
            return GaugeHandle(NO_SLOT);
        }
        let key = MetricKey::new(name, labels);
        if let Some(&slot) = self.gauge_index.get(&key) {
            return GaugeHandle(slot);
        }
        let slot = self.gauges.len() as u32;
        self.gauges.push(0);
        self.gauge_index.insert(key, slot);
        GaugeHandle(slot)
    }

    /// Set a gauge to an absolute value.
    pub fn set(&mut self, h: GaugeHandle, v: i64) {
        if h.0 != NO_SLOT {
            self.gauges[h.0 as usize] = v;
        }
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        if !self.enabled {
            return HistogramHandle(NO_SLOT);
        }
        let key = MetricKey::new(name, labels);
        if let Some(&slot) = self.histogram_index.get(&key) {
            return HistogramHandle(slot);
        }
        let slot = self.histograms.len() as u32;
        self.histograms.push(Histogram::new());
        self.histogram_index.insert(key, slot);
        HistogramHandle(slot)
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, h: HistogramHandle, v: u64) {
        if h.0 != NO_SLOT {
            self.histograms[h.0 as usize].observe(v);
        }
    }

    /// Register (or look up) a rolling good/bad window keyed by sim
    /// time; `window_us` is the cell width (min 1).
    pub fn window(&mut self, name: &str, labels: &[(&str, &str)], window_us: u64) -> WindowHandle {
        if !self.enabled {
            return WindowHandle(NO_SLOT);
        }
        let key = MetricKey::new(name, labels);
        if let Some(&slot) = self.window_index.get(&key) {
            return WindowHandle(slot);
        }
        let slot = self.windows.len() as u32;
        self.windows.push(WindowedCounter { window_us: window_us.max(1), cells: BTreeMap::new() });
        self.window_index.insert(key, slot);
        WindowHandle(slot)
    }

    /// Record one good/bad outcome at sim time `at_us`; the SimClock
    /// tick selects the window cell, so cell boundaries are
    /// deterministic regardless of wall-clock scheduling.
    pub fn record_window(&mut self, h: WindowHandle, at_us: u64, good: bool) {
        if h.0 == NO_SLOT {
            return;
        }
        let w = &mut self.windows[h.0 as usize];
        let cell = w.cells.entry(at_us / w.window_us).or_insert((0, 0));
        if good {
            cell.0 += 1;
        } else {
            cell.1 += 1;
        }
    }

    /// Freeze every instrument into an immutable, mergeable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters =
            self.counter_index.iter().map(|(k, &s)| (k.clone(), self.counters[s as usize]));
        let gauges = self.gauge_index.iter().map(|(k, &s)| (k.clone(), self.gauges[s as usize]));
        let histograms = self
            .histogram_index
            .iter()
            .map(|(k, &s)| (k.clone(), self.histograms[s as usize].snapshot()));
        let windows = self.window_index.iter().map(|(k, &s)| {
            let w = &self.windows[s as usize];
            (
                k.clone(),
                WindowSnapshot {
                    window_us: w.window_us,
                    cells: w.cells.iter().map(|(&i, &(g, b))| (i, g, b)).collect(),
                },
            )
        });
        MetricsSnapshot {
            counters: counters.collect(),
            gauges: gauges.collect(),
            histograms: histograms.collect(),
            windows: windows.collect(),
        }
    }
}

/// Frozen rolling-window contents: `(cell_index, good, bad)` triples
/// sorted by cell index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowSnapshot {
    /// Cell width in sim µs.
    pub window_us: u64,
    /// Non-empty cells as `(index, good, bad)`, ascending by index.
    pub cells: Vec<(u64, u64, u64)>,
}

impl WindowSnapshot {
    /// Total `(good, bad)` across all cells.
    pub fn totals(&self) -> (u64, u64) {
        self.cells.iter().fold((0, 0), |(g, b), &(_, cg, cb)| (g + cg, b + cb))
    }

    /// Merge another window into this one (cell-wise addition).
    pub fn merge(&mut self, other: &WindowSnapshot) {
        if other.cells.is_empty() {
            return;
        }
        if self.cells.is_empty() {
            *self = other.clone();
            return;
        }
        debug_assert_eq!(self.window_us, other.window_us, "merging windows of different width");
        let mut cells: BTreeMap<u64, (u64, u64)> =
            self.cells.iter().map(|&(i, g, b)| (i, (g, b))).collect();
        for &(i, g, b) in &other.cells {
            let c = cells.entry(i).or_insert((0, 0));
            c.0 += g;
            c.1 += b;
        }
        self.cells = cells.into_iter().map(|(i, (g, b))| (i, g, b)).collect();
    }
}

/// An immutable snapshot of a whole registry. All maps are keyed by
/// [`MetricKey`] (a `BTreeMap`), so iteration order — and therefore
/// every exporter's output — is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter series.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauge series.
    pub gauges: BTreeMap<MetricKey, i64>,
    /// Histogram series.
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
    /// Rolling-window series.
    pub windows: BTreeMap<MetricKey, WindowSnapshot>,
}

impl MetricsSnapshot {
    /// True when no series were ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.windows.is_empty()
    }

    /// Merge another snapshot into this one: counters and gauges add,
    /// histograms and windows merge bucket/cell-wise. Associative and
    /// commutative, so per-tenant snapshots can be folded in
    /// tenant-name order regardless of which shard produced them.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.windows {
            self.windows.entry(k.clone()).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let mut r = MetricsRegistry::disabled();
        let c = r.counter("x_total", &[]);
        let h = r.histogram("x_us", &[]);
        let w = r.window("x_win", &[], 100);
        r.add(c, 5);
        r.observe(h, 42);
        r.record_window(w, 10, true);
        assert!(!r.is_enabled());
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn registration_is_idempotent_and_label_order_is_canonical() {
        let mut r = MetricsRegistry::enabled();
        let a = r.counter("req", &[("tenant", "t0"), ("kind", "apply")]);
        let b = r.counter("req", &[("kind", "apply"), ("tenant", "t0")]);
        assert_eq!(a, b);
        r.add(a, 1);
        r.add(b, 2);
        let snap = r.snapshot();
        let key = MetricKey::new("req", &[("kind", "apply"), ("tenant", "t0")]);
        assert_eq!(snap.counters.get(&key), Some(&3));
        assert_eq!(key.render(), "req{kind=\"apply\",tenant=\"t0\"}");
    }

    #[test]
    fn snapshot_merge_folds_counters_histograms_and_windows() {
        let mut a = MetricsRegistry::enabled();
        let mut b = MetricsRegistry::enabled();
        for (r, vals) in [(&mut a, [10u64, 20]), (&mut b, [30u64, 40])] {
            let c = r.counter("n_total", &[]);
            let h = r.histogram("lat_us", &[]);
            let w = r.window("slo", &[], 50);
            for v in vals {
                r.add(c, 1);
                r.observe(h, v);
                r.record_window(w, v, v < 35);
            }
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let key = |n| MetricKey::new(n, &[]);
        assert_eq!(m.counters[&key("n_total")], 4);
        let h = &m.histograms[&key("lat_us")];
        assert_eq!((h.count, h.min, h.max), (4, 10, 40));
        assert_eq!(m.windows[&key("slo")].totals(), (3, 1));
    }
}
