//! The "colors" report: which concern introduced which model elements.
//!
//! Section 3: *"Visual tools capable of demarcating model parts that have
//! been added to the model through different specialized/concrete
//! transformations by using different colors. An association list between
//! these colors and the concerns that have already been covered would be
//! helpful ... a list of the remaining concerns would give the developer
//! an idea of what further refinements s/he needs to perform."*

use comet_model::{ElementId, Model};
use std::collections::BTreeMap;
use std::fmt;

/// Per-concern element attribution for one model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColorReport {
    /// Elements introduced by each concern, keyed by concern name.
    pub per_concern: BTreeMap<String, Vec<ElementId>>,
    /// Elements with no concern mark (the functional model).
    pub functional: Vec<ElementId>,
}

impl ColorReport {
    /// Builds the report by scanning concern marks.
    pub fn for_model(model: &Model) -> Self {
        let mut report = ColorReport::default();
        for e in model.iter() {
            match model.concern_of(e.id()) {
                Some(c) => report.per_concern.entry(c.to_owned()).or_default().push(e.id()),
                None => report.functional.push(e.id()),
            }
        }
        report
    }

    /// Concerns already covered (the "association list").
    pub fn covered(&self) -> Vec<&str> {
        self.per_concern.keys().map(String::as_str).collect()
    }

    /// Of the `planned` concerns, those not yet applied — the paper's
    /// "list of the remaining concerns".
    pub fn remaining<'a>(&self, planned: &[&'a str]) -> Vec<&'a str> {
        planned.iter().filter(|c| !self.per_concern.contains_key(**c)).copied().collect()
    }

    /// Number of elements attributed to `concern`.
    pub fn count(&self, concern: &str) -> usize {
        self.per_concern.get(concern).map_or(0, Vec::len)
    }
}

impl fmt::Display for ColorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "functional elements: {}", self.functional.len())?;
        for (concern, ids) in &self.per_concern {
            writeln!(f, "concern `{concern}`: {} element(s)", ids.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;

    #[test]
    fn attributes_elements_to_concerns() {
        let mut m = banking_pim();
        let functional_count = m.len();
        let proxy = m.add_class(m.root(), "BankProxy").unwrap();
        m.mark_concern(proxy, "distribution").unwrap();
        let guard = m.add_class(m.root(), "AccessGuard").unwrap();
        m.mark_concern(guard, "security").unwrap();
        let r = ColorReport::for_model(&m);
        assert_eq!(r.functional.len(), functional_count);
        assert_eq!(r.count("distribution"), 1);
        assert_eq!(r.count("security"), 1);
        assert_eq!(r.count("transactions"), 0);
        assert_eq!(r.covered(), vec!["distribution", "security"]);
        assert_eq!(
            r.remaining(&["distribution", "transactions", "security"]),
            vec!["transactions"]
        );
        let text = r.to_string();
        assert!(text.contains("concern `distribution`: 1"));
    }

    #[test]
    fn unmarked_model_is_all_functional() {
        let m = banking_pim();
        let r = ColorReport::for_model(&m);
        assert_eq!(r.functional.len(), m.len());
        assert!(r.covered().is_empty());
        assert_eq!(r.remaining(&["x"]), vec!["x"]);
    }
}
