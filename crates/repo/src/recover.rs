//! Crash recovery: the durable, log-structured repository backend.
//!
//! A [`DurableRepository`] is a plain in-memory [`Repository`] whose
//! every mutation is shipped to disk *first*:
//!
//! 1. the snapshot bytes go to the append-only
//!    [`SegmentStore`](crate::segment::SegmentStore) (content-addressed
//!    by FNV-1a, full-byte-verified dedupe),
//! 2. the operation record goes to the [`Wal`](crate::wal::Wal),
//! 3. only then is the in-memory state updated.
//!
//! A crash between (1) and (2) leaves an orphan segment — garbage that
//! compaction reclaims, never corruption. A crash *during* (1) or (2)
//! leaves a torn tail that the checksummed framing detects and
//! truncates on the next open. [`DurableRepository::open`] therefore
//! recovers exactly the state of the last completed operation.
//!
//! Recovery invariants (checked by [`DurableRepository::fsck`]):
//!
//! * every WAL commit record resolves to a byte-verified segment;
//! * replaying the WAL yields a repository whose branch histories,
//!   position and tags are internally consistent;
//! * segments unreachable from any live commit are garbage, not errors
//!   (compaction drops them and checkpoints the live state);
//! * compaction's two-file publish is itself crash-ordered: the
//!   checkpoint WAL lands first and resolves against the old *and* the
//!   new segment store (live snapshots keep their `(hash, ordinal)`
//!   address), so a crash between the renames still recovers — see
//!   [`DurableRepository::compact`].

use crate::repo::{CommitDelta, CommitId, RepoError, Repository};
use crate::segment::{SegmentId, SegmentStore};
use crate::wal::{CheckpointCommit, CheckpointState, Wal, WalRecord};
use comet_model::Model;
use comet_xmi::export_model;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Deref;
use std::path::{Path, PathBuf};

const WAL_FILE: &str = "wal.log";
const SEGMENTS_FILE: &str = "segments.log";

fn io_err(e: std::io::Error) -> RepoError {
    RepoError::Storage(format!("io: {e}"))
}

/// Fsyncs `dir` itself so a just-performed rename is durable before any
/// later rename can reach disk (compaction's publish ordering).
fn sync_dir(dir: &Path) -> Result<(), RepoError> {
    if cfg!(unix) {
        std::fs::File::open(dir).and_then(|d| d.sync_all()).map_err(io_err)?;
    }
    Ok(())
}

/// What [`DurableRepository::open`] rebuilt and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records replayed.
    pub records_replayed: usize,
    /// Torn/corrupt WAL tail bytes truncated.
    pub wal_truncated_bytes: u64,
    /// Verified segments indexed.
    pub segments: usize,
    /// Torn/corrupt segment tail bytes truncated.
    pub segment_truncated_bytes: u64,
}

impl RecoveryReport {
    /// True when the open found a fully clean pair of files.
    pub fn clean(&self) -> bool {
        self.wal_truncated_bytes == 0 && self.segment_truncated_bytes == 0
    }
}

/// What compaction reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments dropped as unreachable.
    pub segments_dropped: usize,
    /// Segments kept alive.
    pub segments_kept: usize,
    /// WAL records replaced by the checkpoint.
    pub wal_records_folded: usize,
}

/// The result of a consistency check over a durable repository
/// directory.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// The recovery the check performed to get a view of the state.
    pub recovery: RecoveryReport,
    /// Live commits reachable after replay.
    pub commits: usize,
    /// Branches.
    pub branches: usize,
    /// Tags.
    pub tags: usize,
    /// Segments no live commit references (compaction candidates).
    pub unreachable_segments: usize,
    /// Hard inconsistencies found (empty ⇒ healthy).
    pub problems: Vec<String>,
}

impl FsckReport {
    /// True when no hard inconsistency was found.
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fsck: {} commits, {} branches, {} tags, {} unreachable segment(s)",
            self.commits, self.branches, self.tags, self.unreachable_segments
        )?;
        writeln!(
            f,
            "  wal: {} record(s) replayed, {} torn byte(s) truncated",
            self.recovery.records_replayed, self.recovery.wal_truncated_bytes
        )?;
        writeln!(
            f,
            "  segments: {} verified, {} torn byte(s) truncated",
            self.recovery.segments, self.recovery.segment_truncated_bytes
        )?;
        if self.problems.is_empty() {
            writeln!(f, "  status: OK")
        } else {
            for p in &self.problems {
                writeln!(f, "  PROBLEM: {p}")?;
            }
            writeln!(f, "  status: CORRUPT")
        }
    }
}

/// A [`Repository`] backed by a write-ahead journal and a
/// content-addressed segment store; survives crashes at any byte
/// boundary.
///
/// Read access goes through `Deref<Target = Repository>`; every
/// mutating operation has a mirror here that journals first.
#[derive(Debug)]
pub struct DurableRepository {
    repo: Repository,
    wal: Wal,
    segments: SegmentStore,
    dir: PathBuf,
    /// Set when the journal is known to have diverged from memory (a
    /// compensating append failed after its primary append succeeded).
    /// Every later mutation refuses with this reason: widening the
    /// divergence would silently corrupt the next recovery.
    poisoned: Option<String>,
}

impl Deref for DurableRepository {
    type Target = Repository;

    fn deref(&self) -> &Repository {
        &self.repo
    }
}

impl DurableRepository {
    /// True when `dir` already holds a journal.
    pub fn exists(dir: &Path) -> bool {
        dir.join(WAL_FILE).is_file()
    }

    /// The directory holding this repository's files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durability barriers issued by the journal since this handle
    /// opened — one `sync_data` per appended record. Serving hosts
    /// bridge this into their metrics.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// Read view of the replayed repository (also available via
    /// `Deref`).
    pub fn repo(&self) -> &Repository {
        &self.repo
    }

    /// Test-only mutable access to the in-memory view — mutations made
    /// through it bypass the journal and will not survive a reopen; it
    /// exists so fault-injection tests can arm the one-shot
    /// [`FaultHook`](comet_middleware::FaultHook) points.
    pub fn repo_mut_unjournaled(&mut self) -> &mut Repository {
        &mut self.repo
    }

    /// Creates a fresh durable repository in `dir` (created if absent).
    ///
    /// # Errors
    /// Fails when `dir` already holds a journal, or on I/O failure.
    pub fn create(dir: &Path, name: &str) -> Result<DurableRepository, RepoError> {
        if Self::exists(dir) {
            return Err(RepoError::Storage(format!(
                "refusing to create over an existing journal in {}",
                dir.display()
            )));
        }
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let (segments, _) = SegmentStore::open(dir.join(SEGMENTS_FILE)).map_err(io_err)?;
        let mut wal = Wal::open_at(dir.join(WAL_FILE), 0).map_err(io_err)?;
        wal.append(&WalRecord::Init { name: name.to_owned() }).map_err(io_err)?;
        Ok(DurableRepository {
            repo: Repository::new(name),
            wal,
            segments,
            dir: dir.to_owned(),
            poisoned: None,
        })
    }

    /// Opens an existing durable repository, replaying the journal over
    /// the segment store. Torn tails in either file are truncated; the
    /// state recovered is exactly that of the last completed operation.
    ///
    /// # Errors
    /// Fails when no journal exists, when a commit record references a
    /// missing segment (real corruption, not a torn tail), or on I/O
    /// failure.
    pub fn open(dir: &Path) -> Result<(DurableRepository, RecoveryReport), RepoError> {
        if !Self::exists(dir) {
            return Err(RepoError::Storage(format!("no journal in {}", dir.display())));
        }
        let (mut segments, seg_report) =
            SegmentStore::open(dir.join(SEGMENTS_FILE)).map_err(io_err)?;
        let wal_path = dir.join(WAL_FILE);
        let (records, wal_report, end) = Wal::read_all(&wal_path).map_err(io_err)?;
        let mut repo: Option<Repository> = None;
        for record in &records {
            replay(&mut repo, record, &mut segments)?;
        }
        let repo = repo.ok_or_else(|| {
            RepoError::Storage(format!("journal in {} has no init record", dir.display()))
        })?;
        let wal = Wal::open_at(wal_path, end).map_err(io_err)?;
        let report = RecoveryReport {
            records_replayed: records.len(),
            wal_truncated_bytes: wal_report.truncated_bytes,
            segments: seg_report.segments,
            segment_truncated_bytes: seg_report.truncated_bytes,
        };
        Ok((DurableRepository { repo, wal, segments, dir: dir.to_owned(), poisoned: None }, report))
    }

    /// [`open`](Self::open) when a journal exists, [`create`](Self::create)
    /// otherwise.
    ///
    /// # Errors
    /// See `open` / `create`.
    pub fn open_or_create(
        dir: &Path,
        name: &str,
    ) -> Result<(DurableRepository, RecoveryReport), RepoError> {
        if Self::exists(dir) {
            Self::open(dir)
        } else {
            Ok((Self::create(dir, name)?, RecoveryReport::default()))
        }
    }

    /// Commits a snapshot of `model`; see [`Repository::commit`].
    ///
    /// # Errors
    /// Fails on injected faults or I/O failure.
    pub fn commit(
        &mut self,
        model: &Model,
        message: &str,
        concern: Option<&str>,
    ) -> Result<CommitId, RepoError> {
        self.commit_inner(model, message, concern, None)
    }

    /// Commits with a journal-reported delta; see
    /// [`Repository::commit_with_delta`]. Unlike the in-memory path,
    /// the durable backend **verifies** an empty delta against the
    /// exported bytes and hard-errors on a lie — a stale snapshot
    /// persisted under a wrong hash would poison every later recovery.
    ///
    /// # Errors
    /// Fails on a lying empty delta, injected faults, or I/O failure.
    pub fn commit_with_delta(
        &mut self,
        model: &Model,
        message: &str,
        concern: Option<&str>,
        delta: CommitDelta,
    ) -> Result<CommitId, RepoError> {
        self.commit_inner(model, message, concern, Some(delta))
    }

    /// Guard run before every mutation: once a compensating append has
    /// failed, the on-disk journal no longer matches memory and any
    /// further append would bake the divergence into the next recovery.
    fn check_poisoned(&self) -> Result<(), RepoError> {
        match &self.poisoned {
            Some(why) => Err(RepoError::Storage(format!(
                "durable repository poisoned ({why}); reopen the directory to recover the \
                 journalled state"
            ))),
            None => Ok(()),
        }
    }

    fn commit_inner(
        &mut self,
        model: &Model,
        message: &str,
        concern: Option<&str>,
        delta: Option<CommitDelta>,
    ) -> Result<CommitId, RepoError> {
        self.check_poisoned()?;
        if self.repo.take_commit_fault() {
            return Err(RepoError::Storage("injected commit failure".to_owned()));
        }
        // Always export: the durable backend trades the empty-delta
        // snapshot-reuse optimization for verification.
        let snapshot = export_model(model);
        let hash = crate::hash::fnv1a64(snapshot.as_bytes());
        if delta.as_ref().is_some_and(CommitDelta::is_empty) {
            if let Some(parent) = self.repo.head() {
                if parent.hash != hash || parent.snapshot != snapshot {
                    return Err(RepoError::Storage(format!(
                        "empty CommitDelta for `{message}` but the model content differs \
                         from parent commit {} — refusing to journal a lying delta",
                        parent.id
                    )));
                }
            }
        }
        let seg = self.segments.append(snapshot.as_bytes()).map_err(io_err)?;
        self.wal
            .append(&WalRecord::Commit {
                message: message.to_owned(),
                concern: concern.map(str::to_owned),
                hash,
                ordinal: seg.ordinal,
                delta: delta.clone(),
            })
            .map_err(io_err)?;
        Ok(self.repo.commit_raw(snapshot, hash, message, concern, delta))
    }

    /// Journals and applies an undo; see [`Repository::undo`].
    pub fn undo(&mut self) -> Option<Result<Model, RepoError>> {
        if let Err(e) = self.check_poisoned() {
            return Some(Err(e));
        }
        if self.repo.undo_depth() == 0 {
            return None;
        }
        if self.repo.take_undo_fault() {
            return Some(Err(RepoError::Storage("injected undo failure".to_owned())));
        }
        if let Err(e) = self.wal.append(&WalRecord::Undo) {
            return Some(Err(io_err(e)));
        }
        match self.repo.undo() {
            Some(Ok(model)) => Some(Ok(model)),
            Some(Err(e)) => {
                // The in-memory undo did not happen; compensate the
                // journal so replay matches memory.
                Some(Err(self.compensate(WalRecord::Redo, "undo", e)))
            }
            None => None,
        }
    }

    /// Journals and applies a redo; see [`Repository::redo`].
    pub fn redo(&mut self) -> Option<Result<Model, RepoError>> {
        if let Err(e) = self.check_poisoned() {
            return Some(Err(e));
        }
        if self.repo.redo_depth() == 0 {
            return None;
        }
        if let Err(e) = self.wal.append(&WalRecord::Redo) {
            return Some(Err(io_err(e)));
        }
        match self.repo.redo() {
            Some(Err(e)) => Some(Err(self.compensate(WalRecord::Undo, "redo", e))),
            other => other,
        }
    }

    /// Appends the record cancelling a just-journalled undo/redo whose
    /// in-memory half failed. If the compensating append itself fails,
    /// the journal has permanently diverged from memory — the handle is
    /// poisoned (every later mutation refuses) and the combined failure
    /// is returned instead of the bare in-memory error, so the caller
    /// sees the divergence rather than a silently different recovery.
    fn compensate(&mut self, record: WalRecord, op: &str, cause: RepoError) -> RepoError {
        let fault = self.repo.take_compensation_fault();
        let result = if fault {
            Err(std::io::Error::other("injected compensation failure"))
        } else {
            self.wal.append(&record)
        };
        match result {
            Ok(()) => cause,
            Err(comp) => {
                let why = format!(
                    "in-memory {op} failed ({cause}) and the compensating journal append also \
                     failed ({comp}) — the journal no longer matches memory"
                );
                self.poisoned = Some(why.clone());
                RepoError::Storage(why)
            }
        }
    }

    /// Journals and applies a branch creation; see
    /// [`Repository::branch`].
    ///
    /// # Errors
    /// Fails when the branch exists or on I/O failure.
    pub fn branch(&mut self, name: &str) -> Result<(), RepoError> {
        self.check_poisoned()?;
        if self.repo.branch_names().contains(&name) {
            return Err(RepoError::BranchExists(name.to_owned()));
        }
        self.wal.append(&WalRecord::Branch { name: name.to_owned() }).map_err(io_err)?;
        self.repo.branch(name)
    }

    /// Journals and applies a branch switch; see
    /// [`Repository::switch_branch`].
    ///
    /// # Errors
    /// Fails when the branch is unknown or on I/O failure.
    pub fn switch_branch(&mut self, name: &str) -> Result<(), RepoError> {
        self.check_poisoned()?;
        if !self.repo.branch_names().contains(&name) {
            return Err(RepoError::UnknownBranch(name.to_owned()));
        }
        self.wal.append(&WalRecord::SwitchBranch { name: name.to_owned() }).map_err(io_err)?;
        self.repo.switch_branch(name)
    }

    /// Journals and applies a tag; see [`Repository::tag`].
    ///
    /// # Errors
    /// Fails when there is no head or on I/O failure.
    pub fn tag(&mut self, name: &str) -> Result<CommitId, RepoError> {
        self.check_poisoned()?;
        if self.repo.head().is_none() {
            return Err(RepoError::UnknownCommit(0));
        }
        self.wal.append(&WalRecord::Tag { name: name.to_owned() }).map_err(io_err)?;
        self.repo.tag(name)
    }

    /// Rewrites both files: live segments only, one checkpoint record
    /// instead of the full operation history. Reclaims segments no
    /// commit references (orphans from crashes between segment append
    /// and WAL append, and snapshots of garbage-collected commits).
    ///
    /// ## Crash safety
    ///
    /// The rewrite is published as two renames, and a crash may land
    /// between them, so every intermediate pairing must recover:
    ///
    /// * live snapshots keep their exact `(hash, ordinal)` address —
    ///   for every hash a live commit uses, **all** of the old store's
    ///   same-hash segments are copied in ordinal order (under an FNV
    ///   collision this carries a dead sibling along; a later
    ///   compaction reclaims it once the collision is gone). The
    ///   checkpoint therefore resolves against the old store and the
    ///   new one alike;
    /// * the WAL (one checkpoint record) is renamed into place *first*,
    ///   with a directory fsync ordering the two renames on disk. A
    ///   crash before the first rename leaves the old pair; between
    ///   them, checkpoint + old store — both replay. The reverse order
    ///   would pair the full old history with a store the GC'd
    ///   snapshots were dropped from, dangling those commits and
    ///   failing every later open.
    ///
    /// # Errors
    /// Propagates I/O failures; on error the original files are intact.
    pub fn compact(&mut self) -> Result<CompactionReport, RepoError> {
        self.check_poisoned()?;
        let seg_tmp = self.dir.join("segments.log.compact");
        let wal_tmp = self.dir.join("wal.log.compact");
        let _ = std::fs::remove_file(&seg_tmp);
        let _ = std::fs::remove_file(&wal_tmp);
        let (mut new_segments, _) = SegmentStore::open(&seg_tmp).map_err(io_err)?;
        let live_hashes: BTreeSet<u64> = self.repo.commits.values().map(|c| c.hash).collect();
        for &hash in &live_hashes {
            for ordinal in 0.. {
                match self.segments.get(SegmentId { hash, ordinal }).map_err(io_err)? {
                    None => break,
                    Some(bytes) => {
                        new_segments.append(&bytes).map_err(io_err)?;
                    }
                }
            }
        }
        let mut commits = Vec::with_capacity(self.repo.commits.len());
        for c in self.repo.commits.values() {
            // Dedupe hit against the copy above — returns the preserved
            // (hash, ordinal) address.
            let seg = new_segments.append(c.snapshot.as_bytes()).map_err(io_err)?;
            commits.push(CheckpointCommit {
                id: c.id,
                parent: c.parent,
                message: c.message.clone(),
                concern: c.concern.clone(),
                hash: c.hash,
                ordinal: seg.ordinal,
                delta: c.delta.clone(),
            });
        }
        let state = CheckpointState {
            name: self.repo.name.clone(),
            next_id: self.repo.next_id,
            current_branch: self.repo.current_branch.clone(),
            position: self.repo.position as u64,
            commits,
            branches: self
                .repo
                .branches
                .iter()
                .map(|(name, ids)| (name.clone(), ids.clone()))
                .collect(),
            tags: self.repo.tags.iter().map(|(name, id)| (name.clone(), *id)).collect(),
        };
        let mut new_wal = Wal::open_at(&wal_tmp, 0).map_err(io_err)?;
        new_wal.append(&WalRecord::Checkpoint(state)).map_err(io_err)?;
        drop(new_wal);
        let (_, old_wal_report, _) = Wal::read_all(self.wal.path()).map_err(io_err)?;
        let report = CompactionReport {
            segments_dropped: self.segments.len() - new_segments.len(),
            segments_kept: new_segments.len(),
            wal_records_folded: old_wal_report.records,
        };
        drop(new_segments);
        // Publish: checkpoint first (resolves against both stores), the
        // segment store second, a directory fsync between and after so
        // the renames reach disk in that order.
        std::fs::rename(&wal_tmp, self.dir.join(WAL_FILE)).map_err(io_err)?;
        sync_dir(&self.dir)?;
        std::fs::rename(&seg_tmp, self.dir.join(SEGMENTS_FILE)).map_err(io_err)?;
        sync_dir(&self.dir)?;
        let (segments, _) = SegmentStore::open(self.dir.join(SEGMENTS_FILE)).map_err(io_err)?;
        let (_, _, end) = Wal::read_all(&self.dir.join(WAL_FILE)).map_err(io_err)?;
        self.segments = segments;
        self.wal = Wal::open_at(self.dir.join(WAL_FILE), end).map_err(io_err)?;
        Ok(report)
    }

    /// Simulates a crash cutting a journal append short (the chaos
    /// harness's kill point): appends a torn record to the WAL that the
    /// next [`open`](Self::open) must discard.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn simulate_torn_tail(dir: &Path) -> Result<(), RepoError> {
        Wal::append_torn(&dir.join(WAL_FILE)).map_err(io_err)
    }

    /// Consistency check: recovers the state (read-only view), verifies
    /// every commit resolves to a byte-verified segment, that branch
    /// histories and tags only reference live commits, and counts the
    /// unreachable segments compaction would reclaim.
    ///
    /// # Errors
    /// Fails only when the directory cannot be opened at all; found
    /// inconsistencies are reported in
    /// [`FsckReport::problems`], not as `Err`.
    pub fn fsck(dir: &Path) -> Result<FsckReport, RepoError> {
        let (mut dur, recovery) = Self::open(dir)?;
        let mut report = FsckReport {
            recovery,
            commits: dur.repo.commits.len(),
            branches: dur.repo.branches.len(),
            tags: dur.repo.tags.len(),
            ..FsckReport::default()
        };
        let mut live: BTreeSet<SegmentId> = BTreeSet::new();
        let commits: Vec<(CommitId, u64, String)> =
            dur.repo.commits.values().map(|c| (c.id, c.hash, c.snapshot.clone())).collect();
        for (id, hash, snapshot) in &commits {
            let mut found = false;
            // Locate the segment holding this commit's bytes (ordinal
            // scan: collisions are possible, aliasing is not).
            for ordinal in 0.. {
                match dur.segments.get(SegmentId { hash: *hash, ordinal }).map_err(io_err)? {
                    None => break,
                    Some(bytes) if bytes == snapshot.as_bytes() => {
                        live.insert(SegmentId { hash: *hash, ordinal });
                        found = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if !found {
                report.problems.push(format!("commit {id}: snapshot missing from segment store"));
            }
            if crate::hash::fnv1a64(snapshot.as_bytes()) != *hash {
                report.problems.push(format!("commit {id}: content hash mismatch"));
            }
        }
        for (name, ids) in &dur.repo.branches {
            for id in ids {
                if !dur.repo.commits.contains_key(id) {
                    report.problems.push(format!("branch `{name}` references unknown commit {id}"));
                }
            }
        }
        if dur.repo.position > dur.repo.branches[&dur.repo.current_branch].len() {
            report.problems.push("head position past the end of the current branch".to_owned());
        }
        for (name, id) in &dur.repo.tags {
            if !dur.repo.commits.contains_key(id) {
                report.problems.push(format!("tag `{name}` references unknown commit {id}"));
            }
        }
        report.unreachable_segments = dur.segments.len() - live.len();
        Ok(report)
    }
}

/// Applies one journal record to the repository being rebuilt.
fn replay(
    repo: &mut Option<Repository>,
    record: &WalRecord,
    segments: &mut SegmentStore,
) -> Result<(), RepoError> {
    fn need(repo: &mut Option<Repository>) -> Result<&mut Repository, RepoError> {
        repo.as_mut()
            .ok_or_else(|| RepoError::Storage("journal record before init record".to_owned()))
    }
    match record {
        WalRecord::Init { name } => {
            *repo = Some(Repository::new(name.clone()));
        }
        WalRecord::Commit { message, concern, hash, ordinal, delta } => {
            let snapshot = fetch_snapshot(segments, *hash, *ordinal)?;
            need(repo)?.commit_raw(snapshot, *hash, message, concern.as_deref(), delta.clone());
        }
        WalRecord::Undo => {
            if let Some(Err(e)) = need(repo)?.undo() {
                return Err(e);
            }
        }
        WalRecord::Redo => {
            if let Some(Err(e)) = need(repo)?.redo() {
                return Err(e);
            }
        }
        WalRecord::Branch { name } => {
            need(repo)?.branch(name)?;
        }
        WalRecord::SwitchBranch { name } => {
            need(repo)?.switch_branch(name)?;
        }
        WalRecord::Tag { name } => {
            need(repo)?.tag(name)?;
        }
        WalRecord::Checkpoint(state) => {
            *repo = Some(repository_from_checkpoint(state, segments)?);
        }
    }
    Ok(())
}

fn fetch_snapshot(
    segments: &mut SegmentStore,
    hash: u64,
    ordinal: u32,
) -> Result<String, RepoError> {
    let bytes = segments.get(SegmentId { hash, ordinal }).map_err(io_err)?.ok_or_else(|| {
        RepoError::Storage(format!("commit references missing segment {hash:016x}/{ordinal}"))
    })?;
    String::from_utf8(bytes)
        .map_err(|_| RepoError::Storage(format!("segment {hash:016x}/{ordinal} is not UTF-8")))
}

fn repository_from_checkpoint(
    state: &CheckpointState,
    segments: &mut SegmentStore,
) -> Result<Repository, RepoError> {
    let mut repo = Repository::new(state.name.clone());
    repo.next_id = state.next_id;
    repo.commits = BTreeMap::new();
    for c in &state.commits {
        let snapshot = fetch_snapshot(segments, c.hash, c.ordinal)?;
        repo.commits.insert(
            c.id,
            crate::repo::Commit {
                id: c.id,
                parent: c.parent,
                message: c.message.clone(),
                concern: c.concern.clone(),
                hash: c.hash,
                delta: c.delta.clone(),
                snapshot,
            },
        );
    }
    repo.branches = state.branches.iter().cloned().collect();
    if repo.branches.is_empty() {
        return Err(RepoError::Storage("checkpoint with no branches".to_owned()));
    }
    if !repo.branches.contains_key(&state.current_branch) {
        return Err(RepoError::Storage(format!(
            "checkpoint's current branch `{}` is not in its branch set",
            state.current_branch
        )));
    }
    repo.current_branch = state.current_branch.clone();
    let history_len = repo.branches[&repo.current_branch].len() as u64;
    if state.position > history_len {
        return Err(RepoError::Storage("checkpoint position past branch end".to_owned()));
    }
    repo.position = state.position as usize;
    repo.tags = state.tags.iter().cloned().collect();
    Ok(repo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("comet-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn two_models() -> (Model, Model) {
        let v1 = banking_pim();
        let mut v2 = v1.clone();
        let bank = v2.find_class("Bank").unwrap();
        v2.apply_stereotype(bank, "Remote").unwrap();
        (v1, v2)
    }

    fn assert_same_state(a: &Repository, b: &Repository) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.current_branch(), b.current_branch());
        assert_eq!(a.branch_names(), b.branch_names());
        assert_eq!(a.undo_depth(), b.undo_depth());
        assert_eq!(a.redo_depth(), b.redo_depth());
        assert_eq!(a.len(), b.len());
        let log_a: Vec<_> = a.log().into_iter().cloned().collect();
        let log_b: Vec<_> = b.log().into_iter().cloned().collect();
        assert_eq!(log_a, log_b);
    }

    #[test]
    fn create_commit_reopen_recovers_everything() {
        let dir = tmp("basic");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        dur.commit(&v2, "distribution", Some("distribution")).unwrap();
        dur.tag("psm-v1").unwrap();
        dur.undo().unwrap().unwrap();
        dur.branch("experiment").unwrap();
        dur.switch_branch("main").unwrap();
        let before = dur.repo().clone();
        drop(dur);
        let (dur, report) = DurableRepository::open(&dir).unwrap();
        assert!(report.clean());
        assert_eq!(report.records_replayed, 7);
        assert_same_state(&before, dur.repo());
        assert_eq!(dur.head_model().unwrap().unwrap(), v2);
        assert_eq!(dur.checkout_tag("psm-v1").unwrap(), v2);
    }

    #[test]
    fn torn_wal_tail_recovers_to_last_complete_operation() {
        let dir = tmp("torn");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        dur.commit(&v2, "distribution", Some("distribution")).unwrap();
        let before = dur.repo().clone();
        drop(dur);
        DurableRepository::simulate_torn_tail(&dir).unwrap();
        let (mut dur, report) = DurableRepository::open(&dir).unwrap();
        assert!(report.wal_truncated_bytes > 0);
        assert_same_state(&before, dur.repo());
        // The journal is clean again: new operations append and survive.
        dur.undo().unwrap().unwrap();
        drop(dur);
        let (dur, report) = DurableRepository::open(&dir).unwrap();
        assert!(report.clean());
        assert_eq!(dur.head_model().unwrap().unwrap(), v1);
    }

    #[test]
    fn durable_backend_hard_errors_on_lying_empty_delta() {
        let dir = tmp("lying");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        let err = dur
            .commit_with_delta(&v2, "lying", Some("distribution"), CommitDelta::default())
            .unwrap_err();
        assert!(
            matches!(&err, RepoError::Storage(d) if d.contains("lying delta")),
            "unexpected error: {err}"
        );
        // Differential check: the in-memory path silently accepted the
        // same lie in release builds (the bug this PR pins down), the
        // durable path must leave no trace of it.
        assert_eq!(dur.len(), 1);
        drop(dur);
        let (dur, _) = DurableRepository::open(&dir).unwrap();
        assert_eq!(dur.len(), 1);
        assert_eq!(dur.head_model().unwrap().unwrap(), v1);
        // An honest empty delta (model genuinely unchanged) is fine.
        let mut dur = dur;
        dur.commit_with_delta(&v1, "no-op", None, CommitDelta::default()).unwrap();
        assert_eq!(dur.len(), 2);
    }

    #[test]
    fn identical_snapshots_share_one_segment() {
        let dir = tmp("dedupe");
        let (v1, _) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "a", None).unwrap();
        dur.commit(&v1, "b", None).unwrap();
        dur.commit(&v1, "c", None).unwrap();
        assert_eq!(dur.len(), 3, "three commits");
        assert_eq!(dur.segments.len(), 1, "one deduped segment");
    }

    #[test]
    fn compaction_reclaims_orphaned_segments_and_survives_reopen() {
        let dir = tmp("compact");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        // Orphan a commit: undo + commit truncates v2's snapshot out.
        dur.commit(&v2, "doomed", Some("distribution")).unwrap();
        dur.undo().unwrap().unwrap();
        let mut v3 = v1.clone();
        v3.add_class(v3.root(), "Other").unwrap();
        dur.commit(&v3, "alternative", None).unwrap();
        assert_eq!(dur.len(), 2);
        assert_eq!(dur.segments.len(), 3, "v2's segment is now garbage");
        let before = dur.repo().clone();
        let report = dur.compact().unwrap();
        assert_eq!(report.segments_dropped, 1);
        assert_eq!(report.segments_kept, 2);
        assert!(report.wal_records_folded >= 5);
        assert_same_state(&before, dur.repo());
        // Post-compaction state must replay from the checkpoint alone.
        drop(dur);
        let (mut dur, open_report) = DurableRepository::open(&dir).unwrap();
        assert!(open_report.clean());
        assert_eq!(open_report.records_replayed, 1, "one checkpoint record");
        assert_same_state(&before, dur.repo());
        assert_eq!(dur.head_model().unwrap().unwrap(), v3);
        // And it keeps accepting operations afterwards.
        dur.commit(&v2, "after-compaction", None).unwrap();
        drop(dur);
        let (dur, _) = DurableRepository::open(&dir).unwrap();
        assert_eq!(dur.head_model().unwrap().unwrap(), v2);
    }

    #[test]
    fn crash_between_compaction_renames_still_recovers() {
        let dir = tmp("compact-crash");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        // Garbage to reclaim: the GC'd commit's segment only exists in
        // the pre-compaction store, which is exactly what made the old
        // segments-first publish order dangle commits on a crash.
        dur.commit(&v2, "doomed", Some("distribution")).unwrap();
        dur.undo().unwrap().unwrap();
        let mut v3 = v1.clone();
        v3.add_class(v3.root(), "Other").unwrap();
        dur.commit(&v3, "alternative", None).unwrap();
        let old_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let old_segments = std::fs::read(dir.join(SEGMENTS_FILE)).unwrap();
        let before = dur.repo().clone();
        dur.compact().unwrap();
        let new_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let new_segments = std::fs::read(dir.join(SEGMENTS_FILE)).unwrap();
        drop(dur);
        // Every state a crash during the publish can leave behind:
        // before the first rename, between the two, and after both.
        // Each must open to the same repository and pass fsck.
        for (label, wal, segments) in [
            ("pre-publish", &old_wal, &old_segments),
            ("between-renames", &new_wal, &old_segments),
            ("complete", &new_wal, &new_segments),
        ] {
            let crash_dir = tmp(&format!("compact-crash-{label}"));
            std::fs::create_dir_all(&crash_dir).unwrap();
            std::fs::write(crash_dir.join(WAL_FILE), wal).unwrap();
            std::fs::write(crash_dir.join(SEGMENTS_FILE), segments).unwrap();
            let (mut dur, _) = DurableRepository::open(&crash_dir)
                .unwrap_or_else(|e| panic!("{label}: open failed: {e}"));
            assert_same_state(&before, dur.repo());
            assert_eq!(dur.head_model().unwrap().unwrap(), v3, "{label}");
            // The recovered repository keeps accepting operations.
            dur.commit(&v2, "after-crash", None).unwrap();
            drop(dur);
            let report = DurableRepository::fsck(&crash_dir).unwrap();
            assert!(report.ok(), "{label}: {report}");
        }
    }

    #[test]
    fn compensated_failed_undo_keeps_journal_matching_memory() {
        let dir = tmp("compensate");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        dur.commit(&v2, "distribution", Some("distribution")).unwrap();
        // Corrupt — in memory only — the snapshot undo would restore,
        // so the in-memory undo fails *after* its journal record is
        // already appended and the compensating append must cancel it.
        let first = *dur.repo.commits.keys().next().unwrap();
        dur.repo.commits.get_mut(&first).unwrap().snapshot = "<not xmi".to_owned();
        let err = dur.undo().unwrap().unwrap_err();
        assert!(matches!(err, RepoError::Corrupt(_)), "unexpected error: {err}");
        // Compensation succeeded: the handle stays usable...
        dur.tag("still-alive").unwrap();
        drop(dur);
        // ...and replay (Undo cancelled by Redo) lands on the pre-undo
        // head, matching what memory saw.
        let (dur, _) = DurableRepository::open(&dir).unwrap();
        assert_eq!(dur.head_model().unwrap().unwrap(), v2);
        assert_eq!(dur.checkout_tag("still-alive").unwrap(), v2);
    }

    #[test]
    fn failed_compensation_poisons_the_handle() {
        use comet_middleware::FaultHook;
        let dir = tmp("poison");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        dur.commit(&v2, "distribution", Some("distribution")).unwrap();
        let first = *dur.repo.commits.keys().next().unwrap();
        dur.repo.commits.get_mut(&first).unwrap().snapshot = "<not xmi".to_owned();
        dur.repo_mut_unjournaled().arm_fault(crate::repo::FAULT_POINT_WAL_COMPENSATION).unwrap();
        let err = dur.undo().unwrap().unwrap_err();
        assert!(
            matches!(&err, RepoError::Storage(d) if d.contains("no longer matches memory")),
            "unexpected error: {err}"
        );
        // The journal diverged from memory; every further mutation must
        // refuse rather than widen the divergence.
        let poisoned = |e: &RepoError| matches!(e, RepoError::Storage(d) if d.contains("poisoned"));
        assert!(poisoned(&dur.commit(&v1, "x", None).unwrap_err()));
        assert!(poisoned(&dur.undo().unwrap().unwrap_err()));
        assert!(poisoned(&dur.redo().unwrap().unwrap_err()));
        assert!(poisoned(&dur.branch("b").unwrap_err()));
        assert!(poisoned(&dur.switch_branch("main").unwrap_err()));
        assert!(poisoned(&dur.tag("t").unwrap_err()));
        assert!(poisoned(&dur.compact().unwrap_err()));
        // Reads still work on the poisoned handle.
        assert_eq!(dur.len(), 2);
        drop(dur);
        // Reopening replays the journalled (un-compensated) undo over
        // the intact on-disk snapshots: head steps back — the recovery
        // honours the journal, and the divergence was surfaced, not
        // silent.
        let (dur, report) = DurableRepository::open(&dir).unwrap();
        assert!(report.clean());
        assert_eq!(dur.head_model().unwrap().unwrap(), v1);
    }

    #[test]
    fn fsck_reports_health_and_garbage() {
        let dir = tmp("fsck");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        dur.commit(&v2, "doomed", None).unwrap();
        dur.undo().unwrap().unwrap();
        dur.commit(&v2, "kept", None).unwrap();
        drop(dur);
        let report = DurableRepository::fsck(&dir).unwrap();
        assert!(report.ok(), "{report}");
        assert_eq!(report.commits, 2);
        // "doomed" was GC'd in memory but its segment bytes equal
        // "kept"'s (same model) — so nothing is unreachable here.
        assert_eq!(report.unreachable_segments, 0);
        let text = report.to_string();
        assert!(text.contains("status: OK"), "{text}");
    }

    #[test]
    fn injected_faults_fail_before_touching_the_journal() {
        use comet_middleware::FaultHook;
        let dir = tmp("faults");
        let (v1, v2) = two_models();
        let mut dur = DurableRepository::create(&dir, "bank").unwrap();
        dur.commit(&v1, "initial", None).unwrap();
        dur.repo_mut_unjournaled().arm_fault(crate::repo::FAULT_POINT_COMMIT).unwrap();
        assert!(matches!(dur.commit(&v2, "x", None), Err(RepoError::Storage(_))));
        dur.repo_mut_unjournaled().arm_fault(crate::repo::FAULT_POINT_UNDO).unwrap();
        assert!(matches!(dur.undo(), Some(Err(RepoError::Storage(_)))));
        let before = dur.repo().clone();
        drop(dur);
        // Neither faulted operation reached the journal.
        let (dur, report) = DurableRepository::open(&dir).unwrap();
        assert!(report.clean());
        assert_same_state(&before, dur.repo());
    }
}
