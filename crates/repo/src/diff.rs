//! Element-level structural diff between two models.

use comet_model::{ElementId, Model};
use std::fmt;

/// The structural difference `b - a` between two models.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelDiff {
    /// Ids present in `b` but not `a`.
    pub added: Vec<ElementId>,
    /// Ids present in `a` but not `b`.
    pub removed: Vec<ElementId>,
    /// Ids present in both whose element content differs.
    pub modified: Vec<ElementId>,
}

impl ModelDiff {
    /// True when the models are element-wise identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.modified.is_empty()
    }

    /// Total number of differing elements.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.modified.len()
    }
}

impl fmt::Display for ModelDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "diff: +{} -{} ~{}",
            self.added.len(),
            self.removed.len(),
            self.modified.len()
        )?;
        for id in &self.added {
            writeln!(f, "  + {id}")?;
        }
        for id in &self.removed {
            writeln!(f, "  - {id}")?;
        }
        for id in &self.modified {
            writeln!(f, "  ~ {id}")?;
        }
        Ok(())
    }
}

/// Computes the element-level diff from `a` to `b`. Because element ids
/// are never reused within a lineage, id identity is meaningful across
/// versions of the same model.
pub fn diff_models(a: &Model, b: &Model) -> ModelDiff {
    let mut diff = ModelDiff::default();
    for eb in b.iter() {
        match a.element(eb.id()) {
            Err(_) => diff.added.push(eb.id()),
            Ok(ea) => {
                if ea != eb {
                    diff.modified.push(eb.id());
                }
            }
        }
    }
    for ea in a.iter() {
        if b.element(ea.id()).is_err() {
            diff.removed.push(ea.id());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;
    use comet_model::Primitive;

    #[test]
    fn identical_models_empty_diff() {
        let m = banking_pim();
        let d = diff_models(&m, &m.clone());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn detects_added_removed_modified() {
        let a = banking_pim();
        let mut b = a.clone();
        let bank = b.find_class("Bank").unwrap();
        b.apply_stereotype(bank, "Remote").unwrap(); // modified
        let added = b.add_class(b.root(), "NewThing").unwrap(); // added
        let customer = b.find_class("Customer").unwrap();
        let removed = b.remove_element(customer).unwrap(); // removed (cascade)
        let d = diff_models(&a, &b);
        assert!(d.added.contains(&added));
        assert!(d.modified.contains(&bank));
        for r in &removed {
            assert!(d.removed.contains(r));
        }
        assert_eq!(d.len(), d.added.len() + d.removed.len() + d.modified.len());
        let text = d.to_string();
        assert!(text.contains("+1"));
        assert!(text.contains(&format!("+ {added}")));
    }

    #[test]
    fn diff_is_directional() {
        let a = banking_pim();
        let mut b = a.clone();
        let c = b.add_class(b.root(), "X").unwrap();
        b.add_attribute(c, "y", Primitive::Int.into()).unwrap();
        let fwd = diff_models(&a, &b);
        let bwd = diff_models(&b, &a);
        assert_eq!(fwd.added.len(), 2);
        assert_eq!(fwd.removed.len(), 0);
        assert_eq!(bwd.removed.len(), 2);
        assert_eq!(bwd.added.len(), 0);
    }
}
