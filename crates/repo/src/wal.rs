//! The write-ahead journal: every repository mutation is shipped to
//! disk *before* it is applied in memory.
//!
//! Records are framed exactly like segments —
//! `[u32 payload len][u64 FNV-1a of payload][payload]` — and the reader
//! stops at the first incomplete or checksum-failing frame: a crash in
//! the middle of an append loses at most the in-flight record, never an
//! earlier one, and [`Wal::read_all`] reports how many tail bytes it
//! discarded so `open` can truncate the file back to the last complete
//! record.
//!
//! Payloads use a dependency-free little-endian encoding (tag byte +
//! length-prefixed fields). Commit records reference their snapshot by
//! [`SegmentId`](crate::segment::SegmentId) — `(hash, ordinal)` — so
//! the WAL stays small; the bytes live in the segment store, which is
//! flushed first (an orphan segment is garbage, a dangling commit
//! record would be corruption).

use crate::hash::fnv1a64;
use crate::repo::{CommitDelta, CommitId};
use comet_model::ElementId;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header size: u32 length + u64 checksum.
const HEADER: u64 = 12;
/// Corruption guard for the length field.
const MAX_RECORD: u32 = 256 * 1024 * 1024;

/// One journaled repository operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Repository creation; always the first record of a fresh journal.
    Init {
        /// Repository name.
        name: String,
    },
    /// A commit; the snapshot bytes live in the segment store under
    /// `(hash, ordinal)`.
    Commit {
        /// Commit message.
        message: String,
        /// Producing concern, if any.
        concern: Option<String>,
        /// FNV-1a content hash of the snapshot.
        hash: u64,
        /// Ordinal among same-hash segments (collision disambiguator).
        ordinal: u32,
        /// Element-level delta over the parent, when supplied.
        delta: Option<CommitDelta>,
    },
    /// Head stepped one commit back.
    Undo,
    /// Head stepped one commit forward.
    Redo,
    /// A branch was created from the visible head and switched to.
    Branch {
        /// New branch name.
        name: String,
    },
    /// The current branch changed.
    SwitchBranch {
        /// Target branch name.
        name: String,
    },
    /// The visible head was tagged.
    Tag {
        /// Tag name.
        name: String,
    },
    /// A compaction checkpoint: the full repository state at rewrite
    /// time. Replay resets to it; all earlier history was rewritten
    /// into the accompanying segment file.
    Checkpoint(CheckpointState),
}

/// The complete repository state a compaction writes as one record.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Repository name.
    pub name: String,
    /// Next commit id to allocate.
    pub next_id: CommitId,
    /// Current branch name.
    pub current_branch: String,
    /// Visible-commit count on the current branch.
    pub position: u64,
    /// Every live commit, snapshot referenced by `(hash, ordinal)`.
    pub commits: Vec<CheckpointCommit>,
    /// Branch name → commit ids, oldest first.
    pub branches: Vec<(String, Vec<CommitId>)>,
    /// Tag name → commit id.
    pub tags: Vec<(String, CommitId)>,
}

/// One commit inside a [`CheckpointState`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointCommit {
    /// Commit id.
    pub id: CommitId,
    /// Parent commit id, if any.
    pub parent: Option<CommitId>,
    /// Commit message.
    pub message: String,
    /// Producing concern, if any.
    pub concern: Option<String>,
    /// FNV-1a content hash of the snapshot.
    pub hash: u64,
    /// Segment ordinal.
    pub ordinal: u32,
    /// Element-level delta over the parent.
    pub delta: Option<CommitDelta>,
}

// ---- payload codec ----------------------------------------------------

const TAG_INIT: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_UNDO: u8 = 3;
const TAG_REDO: u8 = 4;
const TAG_BRANCH: u8 = 5;
const TAG_SWITCH: u8 = 6;
const TAG_TAG: u8 = 7;
const TAG_CHECKPOINT: u8 = 8;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[ElementId]) {
    put_u32(out, ids.len() as u32);
    for id in ids {
        put_u64(out, id.raw());
    }
}

fn put_opt_delta(out: &mut Vec<u8>, delta: Option<&CommitDelta>) {
    match delta {
        None => out.push(0),
        Some(d) => {
            out.push(1);
            put_ids(out, &d.created);
            put_ids(out, &d.modified);
            put_ids(out, &d.removed);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(bytes)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn opt_str(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }

    fn ids(&mut self) -> Option<Vec<ElementId>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(ElementId::from_raw(self.u64()?));
        }
        Some(out)
    }

    fn opt_delta(&mut self) -> Option<Option<CommitDelta>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(CommitDelta {
                created: self.ids()?,
                modified: self.ids()?,
                removed: self.ids()?,
            })),
            _ => None,
        }
    }
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Init { name } => {
                out.push(TAG_INIT);
                put_str(&mut out, name);
            }
            WalRecord::Commit { message, concern, hash, ordinal, delta } => {
                out.push(TAG_COMMIT);
                put_str(&mut out, message);
                put_opt_str(&mut out, concern.as_deref());
                put_u64(&mut out, *hash);
                put_u32(&mut out, *ordinal);
                put_opt_delta(&mut out, delta.as_ref());
            }
            WalRecord::Undo => out.push(TAG_UNDO),
            WalRecord::Redo => out.push(TAG_REDO),
            WalRecord::Branch { name } => {
                out.push(TAG_BRANCH);
                put_str(&mut out, name);
            }
            WalRecord::SwitchBranch { name } => {
                out.push(TAG_SWITCH);
                put_str(&mut out, name);
            }
            WalRecord::Tag { name } => {
                out.push(TAG_TAG);
                put_str(&mut out, name);
            }
            WalRecord::Checkpoint(state) => {
                out.push(TAG_CHECKPOINT);
                put_str(&mut out, &state.name);
                put_u64(&mut out, state.next_id);
                put_str(&mut out, &state.current_branch);
                put_u64(&mut out, state.position);
                put_u32(&mut out, state.commits.len() as u32);
                for c in &state.commits {
                    put_u64(&mut out, c.id);
                    match c.parent {
                        None => out.push(0),
                        Some(p) => {
                            out.push(1);
                            put_u64(&mut out, p);
                        }
                    }
                    put_str(&mut out, &c.message);
                    put_opt_str(&mut out, c.concern.as_deref());
                    put_u64(&mut out, c.hash);
                    put_u32(&mut out, c.ordinal);
                    put_opt_delta(&mut out, c.delta.as_ref());
                }
                put_u32(&mut out, state.branches.len() as u32);
                for (name, ids) in &state.branches {
                    put_str(&mut out, name);
                    put_u32(&mut out, ids.len() as u32);
                    for id in ids {
                        put_u64(&mut out, *id);
                    }
                }
                put_u32(&mut out, state.tags.len() as u32);
                for (name, id) in &state.tags {
                    put_str(&mut out, name);
                    put_u64(&mut out, *id);
                }
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut r = Reader { buf: payload, pos: 0 };
        let record = match r.u8()? {
            TAG_INIT => WalRecord::Init { name: r.str()? },
            TAG_COMMIT => WalRecord::Commit {
                message: r.str()?,
                concern: r.opt_str()?,
                hash: r.u64()?,
                ordinal: r.u32()?,
                delta: r.opt_delta()?,
            },
            TAG_UNDO => WalRecord::Undo,
            TAG_REDO => WalRecord::Redo,
            TAG_BRANCH => WalRecord::Branch { name: r.str()? },
            TAG_SWITCH => WalRecord::SwitchBranch { name: r.str()? },
            TAG_TAG => WalRecord::Tag { name: r.str()? },
            TAG_CHECKPOINT => {
                let name = r.str()?;
                let next_id = r.u64()?;
                let current_branch = r.str()?;
                let position = r.u64()?;
                let n = r.u32()? as usize;
                let mut commits = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let id = r.u64()?;
                    let parent = match r.u8()? {
                        0 => None,
                        1 => Some(r.u64()?),
                        _ => return None,
                    };
                    commits.push(CheckpointCommit {
                        id,
                        parent,
                        message: r.str()?,
                        concern: r.opt_str()?,
                        hash: r.u64()?,
                        ordinal: r.u32()?,
                        delta: r.opt_delta()?,
                    });
                }
                let nb = r.u32()? as usize;
                let mut branches = Vec::with_capacity(nb.min(1 << 16));
                for _ in 0..nb {
                    let name = r.str()?;
                    let ni = r.u32()? as usize;
                    let mut ids = Vec::with_capacity(ni.min(1 << 16));
                    for _ in 0..ni {
                        ids.push(r.u64()?);
                    }
                    branches.push((name, ids));
                }
                let nt = r.u32()? as usize;
                let mut tags = Vec::with_capacity(nt.min(1 << 16));
                for _ in 0..nt {
                    let name = r.str()?;
                    tags.push((name, r.u64()?));
                }
                WalRecord::Checkpoint(CheckpointState {
                    name,
                    next_id,
                    current_branch,
                    position,
                    commits,
                    branches,
                    tags,
                })
            }
            _ => return None,
        };
        // Trailing payload bytes are corruption, not a longer record.
        if r.pos != payload.len() {
            return None;
        }
        Some(record)
    }
}

/// What reading a journal found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Complete, checksum-valid records read.
    pub records: usize,
    /// Bytes of torn/corrupt tail discarded.
    pub truncated_bytes: u64,
}

/// The append-side handle to a journal file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    end: u64,
    fsyncs: u64,
}

impl Wal {
    /// Opens `path` for appending at `end` (the byte offset past the
    /// last complete record, as reported by [`Wal::read_all`]); the file
    /// is truncated there first, discarding any torn tail.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open_at(path: impl Into<PathBuf>, end: u64) -> io::Result<Wal> {
        let path = path.into();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        file.set_len(end)?;
        Ok(Wal { file, path, end, fsyncs: 0 })
    }

    /// The file backing this journal.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to disk.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(HEADER as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.end += frame.len() as u64;
        Ok(())
    }

    /// How many `sync_data` barriers this handle has issued — one per
    /// appended record. Exposed so serving hosts can bridge durability
    /// cost into their metrics.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Simulates a crash cutting an append short: writes the header and
    /// first bytes of a record, then stops. The chaos harness calls
    /// this at its kill point; the next [`Wal::read_all`] must discard
    /// exactly this tail.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn append_torn(path: &Path) -> io::Result<()> {
        let payload = WalRecord::Undo.encode();
        let mut frame = Vec::new();
        frame.extend_from_slice(&64u32.to_le_bytes()); // claims 64 payload bytes
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload); // ...delivers 1
        let mut file = OpenOptions::new().append(true).create(true).open(path)?;
        file.write_all(&frame)?;
        file.sync_data()?;
        Ok(())
    }

    /// Reads every complete record of the journal at `path`, stopping at
    /// the first incomplete or checksum-failing frame. Returns the
    /// records, the report, and the byte offset past the last complete
    /// record (pass it to [`Wal::open_at`] to truncate the torn tail).
    ///
    /// # Errors
    /// Propagates I/O failures; torn tails are *not* errors.
    pub fn read_all(path: &Path) -> io::Result<(Vec<WalRecord>, WalOpenReport, u64)> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut report = WalOpenReport::default();
        let mut pos: usize = 0;
        while let Some(header) = bytes.get(pos..pos + HEADER as usize) {
            let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
            if len > MAX_RECORD {
                break;
            }
            let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
            let Some(payload) =
                bytes.get(pos + HEADER as usize..pos + HEADER as usize + len as usize)
            else {
                break;
            };
            if fnv1a64(payload) != checksum {
                break;
            }
            let Some(record) = WalRecord::decode(payload) else { break };
            records.push(record);
            report.records += 1;
            pos += HEADER as usize + len as usize;
        }
        report.truncated_bytes = (bytes.len() - pos) as u64;
        Ok((records, report, pos as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("comet-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Init { name: "bank".into() },
            WalRecord::Commit {
                message: "initial PIM".into(),
                concern: None,
                hash: 0xdead_beef,
                ordinal: 0,
                delta: None,
            },
            WalRecord::Commit {
                message: "AddTx<Bank.transfer>".into(),
                concern: Some("transactions".into()),
                hash: 42,
                ordinal: 1,
                delta: Some(CommitDelta {
                    created: vec![ElementId::from_raw(7)],
                    modified: vec![ElementId::from_raw(8), ElementId::from_raw(9)],
                    removed: vec![],
                }),
            },
            WalRecord::Undo,
            WalRecord::Redo,
            WalRecord::Branch { name: "experiment".into() },
            WalRecord::SwitchBranch { name: "main".into() },
            WalRecord::Tag { name: "psm-v1".into() },
            WalRecord::Checkpoint(CheckpointState {
                name: "bank".into(),
                next_id: 3,
                current_branch: "main".into(),
                position: 2,
                commits: vec![CheckpointCommit {
                    id: 1,
                    parent: None,
                    message: "initial PIM".into(),
                    concern: None,
                    hash: 0xdead_beef,
                    ordinal: 0,
                    delta: None,
                }],
                branches: vec![("main".into(), vec![1])],
                tags: vec![("psm-v1".into(), 1)],
            }),
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_record_kind() {
        for record in sample_records() {
            let payload = record.encode();
            assert_eq!(WalRecord::decode(&payload).as_ref(), Some(&record), "{record:?}");
        }
    }

    #[test]
    fn append_then_read_all_round_trips() {
        let path = tmp("round");
        let mut wal = Wal::open_at(&path, 0).unwrap();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        let (records, report, _) = Wal::read_all(&path).unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn truncation_at_every_byte_recovers_a_prefix() {
        let path = tmp("tear");
        let mut wal = Wal::open_at(&path, 0).unwrap();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let all = sample_records();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (records, _, end) = Wal::read_all(&path).unwrap();
            assert!(records.len() <= all.len());
            assert_eq!(records, all[..records.len()], "cut at {cut}");
            assert!(end <= cut as u64);
        }
    }

    #[test]
    fn torn_append_is_discarded_and_writes_resume() {
        let path = tmp("resume");
        let mut wal = Wal::open_at(&path, 0).unwrap();
        wal.append(&WalRecord::Init { name: "r".into() }).unwrap();
        drop(wal);
        Wal::append_torn(&path).unwrap();
        let (records, report, end) = Wal::read_all(&path).unwrap();
        assert_eq!(records, vec![WalRecord::Init { name: "r".into() }]);
        assert!(report.truncated_bytes > 0);
        let mut wal = Wal::open_at(&path, end).unwrap();
        wal.append(&WalRecord::Undo).unwrap();
        let (records, report, _) = Wal::read_all(&path).unwrap();
        assert_eq!(records, vec![WalRecord::Init { name: "r".into() }, WalRecord::Undo]);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn checksum_corruption_stops_the_reader() {
        let path = tmp("chk");
        let mut wal = Wal::open_at(&path, 0).unwrap();
        wal.append(&WalRecord::Init { name: "r".into() }).unwrap();
        wal.append(&WalRecord::Undo).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a bit inside the second record
        std::fs::write(&path, &bytes).unwrap();
        let (records, report, _) = Wal::read_all(&path).unwrap();
        assert_eq!(records, vec![WalRecord::Init { name: "r".into() }]);
        assert!(report.truncated_bytes > 0);
    }
}
