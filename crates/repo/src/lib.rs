//! # comet-repo — versioned model repository
//!
//! Section 3 of the paper asks for "version management capabilities for
//! the model repository" and "an Undo/Redo facility for model
//! transformations", plus visual demarcation of model parts added by
//! different concrete transformations ("colors"). This crate provides:
//!
//! * [`Repository`] — linear-history-per-branch version store whose
//!   snapshots are XMI documents (via `comet-xmi`), content-hashed with
//!   FNV-1a; commit/undo/redo/branch/tag/checkout;
//! * [`ModelDiff`] / [`diff_models`] — element-level structural diff
//!   (added/removed/modified) between any two models or commits;
//! * [`ColorReport`] — the per-concern element listing a visual tool
//!   would render as colors, plus the remaining-concern hint the paper
//!   suggests;
//! * [`DurableRepository`] — the same repository backed by an
//!   append-only, content-addressed [`SegmentStore`] and a write-ahead
//!   journal ([`Wal`]): every operation is shipped to disk before it is
//!   applied in memory, and open replays the journal, truncating torn
//!   tails, back to the last completed operation.
//!
//! ## Example
//!
//! ```
//! use comet_model::sample::banking_pim;
//! use comet_repo::Repository;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut repo = Repository::new("bank-models");
//! let mut model = banking_pim();
//! repo.commit(&model, "initial PIM", None)?;
//! let bank = model.find_class("Bank").unwrap();
//! model.apply_stereotype(bank, "Remote")?;
//! repo.commit(&model, "apply distribution CMT", Some("distribution"))?;
//! let before = repo.undo().unwrap()?;
//! assert!(!before.has_stereotype(before.find_class("Bank").unwrap(), "Remote")?);
//! let after = repo.redo().unwrap()?;
//! assert!(after.has_stereotype(after.find_class("Bank").unwrap(), "Remote")?);
//! # Ok(())
//! # }
//! ```

mod colors;
mod diff;
mod hash;
mod recover;
mod repo;
mod segment;
mod wal;

pub use colors::ColorReport;
pub use diff::{diff_models, ModelDiff};
pub use hash::fnv1a64;
pub use recover::{CompactionReport, DurableRepository, FsckReport, RecoveryReport};
pub use repo::{
    Commit, CommitDelta, CommitId, RepoError, Repository, FAULT_POINT_COMMIT, FAULT_POINT_UNDO,
    FAULT_POINT_WAL_COMPENSATION,
};
pub use segment::{SegmentId, SegmentOpenReport, SegmentStore};
pub use wal::{CheckpointCommit, CheckpointState, Wal, WalOpenReport, WalRecord};
