//! The append-only segment store: content-addressed snapshot payloads
//! on disk.
//!
//! One segment = one XMI snapshot, framed as
//! `[u32 payload len][u64 FNV-1a of payload][payload bytes]` and
//! appended to a single `segments.log` file. The FNV hash doubles as
//! the content address *and* the integrity checksum: on open the whole
//! file is scanned, every frame is re-hashed, and the first frame that
//! is incomplete or fails verification truncates the file there (a torn
//! write from a crash mid-append loses at most the in-flight segment).
//!
//! ## Collision safety
//!
//! FNV-1a is 64 bits, so two distinct snapshots *can* share a hash. The
//! store never trusts the hash alone: [`SegmentStore::append`] compares
//! the candidate bytes against every stored segment with the same hash
//! and only dedupes on a **full byte match**. Colliding-but-different
//! payloads are stored side by side and addressed by `(hash, ordinal)`
//! — the [`SegmentId`] — so a collision can never alias two snapshots.

use crate::hash::fnv1a64;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header size: u32 length + u64 hash.
const HEADER: u64 = 12;
/// Upper bound on a single segment payload (corruption guard: a mangled
/// length field must not trigger a gigabyte allocation).
const MAX_SEGMENT: u32 = 64 * 1024 * 1024;

/// Address of one stored payload: content hash plus the ordinal among
/// same-hash segments (0 for all payloads until a collision happens).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SegmentId {
    /// FNV-1a content hash of the payload.
    pub hash: u64,
    /// Index among segments sharing `hash`, in append order.
    pub ordinal: u32,
}

/// Where one segment's payload lives in the file.
#[derive(Debug, Clone, Copy)]
struct SegRef {
    /// Byte offset of the payload (past the frame header).
    offset: u64,
    len: u32,
}

/// What opening a segment file found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentOpenReport {
    /// Complete, verified segments indexed.
    pub segments: usize,
    /// Bytes of torn/corrupt tail truncated away.
    pub truncated_bytes: u64,
}

/// The append-only, content-addressed segment file.
#[derive(Debug)]
pub struct SegmentStore {
    file: File,
    path: PathBuf,
    /// End of the last verified frame (= append position).
    end: u64,
    index: BTreeMap<u64, Vec<SegRef>>,
}

impl SegmentStore {
    /// Opens (or creates) the segment file at `path`, rebuilding the
    /// in-memory index by scanning and re-hashing every frame. A torn
    /// or corrupt tail is truncated; everything before it survives.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(SegmentStore, SegmentOpenReport)> {
        let path = path.into();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::with_capacity(file_len as usize);
        file.read_to_end(&mut bytes)?;
        let mut index: BTreeMap<u64, Vec<SegRef>> = BTreeMap::new();
        let mut report = SegmentOpenReport::default();
        let mut pos: u64 = 0;
        while pos < file_len {
            let Some(frame) = read_frame(&bytes, pos) else { break };
            index
                .entry(frame.hash)
                .or_default()
                .push(SegRef { offset: pos + HEADER, len: frame.len });
            report.segments += 1;
            pos += HEADER + u64::from(frame.len);
        }
        if pos < file_len {
            report.truncated_bytes = file_len - pos;
            file.set_len(pos)?;
        }
        file.seek(SeekFrom::Start(pos))?;
        Ok((SegmentStore { file, path, end: pos, index }, report))
    }

    /// The file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored segments (post-dedupe).
    pub fn len(&self) -> usize {
        self.index.values().map(Vec::len).sum()
    }

    /// True when no segment is stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Every stored segment's address, in `(hash, ordinal)` order.
    pub fn segment_ids(&self) -> Vec<SegmentId> {
        self.index
            .iter()
            .flat_map(|(&hash, refs)| {
                (0..refs.len()).map(move |i| SegmentId { hash, ordinal: i as u32 })
            })
            .collect()
    }

    /// Appends `payload`, deduplicating against stored segments with the
    /// same hash by **comparing the full bytes** — a 64-bit hash
    /// collision yields a new ordinal, never an alias.
    ///
    /// # Errors
    /// Propagates I/O failures; the in-memory index is only updated
    /// after the frame (header + payload) reached the file.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<SegmentId> {
        assert!(payload.len() as u64 <= u64::from(MAX_SEGMENT), "segment payload too large");
        let hash = fnv1a64(payload);
        if let Some(refs) = self.index.get(&hash) {
            for (ordinal, seg) in refs.clone().iter().enumerate() {
                if self.read_ref(*seg)? == payload {
                    return Ok(SegmentId { hash, ordinal: ordinal as u32 });
                }
            }
        }
        let mut frame = Vec::with_capacity(HEADER as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&hash.to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        let seg = SegRef { offset: self.end + HEADER, len: payload.len() as u32 };
        self.end += frame.len() as u64;
        let refs = self.index.entry(hash).or_default();
        refs.push(seg);
        Ok(SegmentId { hash, ordinal: (refs.len() - 1) as u32 })
    }

    /// Reads one segment's payload, or `None` when the address is
    /// unknown.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn get(&mut self, id: SegmentId) -> io::Result<Option<Vec<u8>>> {
        let Some(seg) = self.index.get(&id.hash).and_then(|refs| refs.get(id.ordinal as usize))
        else {
            return Ok(None);
        };
        self.read_ref(*seg).map(Some)
    }

    fn read_ref(&mut self, seg: SegRef) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(seg.offset))?;
        let mut buf = vec![0u8; seg.len as usize];
        self.file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

struct Frame {
    hash: u64,
    len: u32,
}

/// Decodes and verifies the frame at `pos`, or `None` when the bytes
/// from `pos` on are not one complete, checksum-valid frame.
fn read_frame(bytes: &[u8], pos: u64) -> Option<Frame> {
    let pos = pos as usize;
    let header = bytes.get(pos..pos + HEADER as usize)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if len > MAX_SEGMENT {
        return None;
    }
    let hash = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let payload = bytes.get(pos + HEADER as usize..pos + HEADER as usize + len as usize)?;
    if fnv1a64(payload) != hash {
        return None;
    }
    Some(Frame { hash, len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("comet-seg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("segments.log")
    }

    #[test]
    fn append_get_round_trip_and_dedupe() {
        let path = tmp("round");
        let (mut store, report) = SegmentStore::open(&path).unwrap();
        assert_eq!(report, SegmentOpenReport::default());
        let a = store.append(b"alpha").unwrap();
        let b = store.append(b"beta").unwrap();
        let a2 = store.append(b"alpha").unwrap();
        assert_eq!(a, a2, "identical payloads dedupe to one segment");
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(a).unwrap().unwrap(), b"alpha");
        assert_eq!(store.get(b).unwrap().unwrap(), b"beta");
        assert_eq!(store.get(SegmentId { hash: 1, ordinal: 0 }).unwrap(), None);
    }

    #[test]
    fn reopen_rebuilds_the_index() {
        let path = tmp("reopen");
        let (mut store, _) = SegmentStore::open(&path).unwrap();
        let a = store.append(b"alpha").unwrap();
        let b = store.append(b"beta").unwrap();
        drop(store);
        let (mut store, report) = SegmentStore::open(&path).unwrap();
        assert_eq!(report.segments, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(store.get(a).unwrap().unwrap(), b"alpha");
        assert_eq!(store.get(b).unwrap().unwrap(), b"beta");
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        let (mut store, _) = SegmentStore::open(&path).unwrap();
        let a = store.append(b"alpha").unwrap();
        drop(store);
        let full = std::fs::read(&path).unwrap();
        // Tear the file at every byte boundary past the first frame; the
        // first segment must always survive, the torn tail never does.
        let first_frame = HEADER as usize + 5;
        for cut in first_frame..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            // Append garbage to exercise the checksum path too.
            if cut == first_frame + 3 {
                let mut torn = full[..cut].to_vec();
                torn.extend_from_slice(b"\xde\xad");
                std::fs::write(&path, &torn).unwrap();
            }
            let (mut store, report) = SegmentStore::open(&path).unwrap();
            assert_eq!(report.segments, 1, "cut at {cut}");
            assert!(report.truncated_bytes > 0 || cut == first_frame);
            assert_eq!(store.get(a).unwrap().unwrap(), b"alpha");
            // The file is clean again: a fresh append lands correctly.
            let b = store.append(b"beta").unwrap();
            assert_eq!(store.get(b).unwrap().unwrap(), b"beta");
        }
    }

    #[test]
    fn colliding_hashes_keep_distinct_payloads() {
        let path = tmp("collide");
        let (mut store, _) = SegmentStore::open(&path).unwrap();
        // Force a collision by editing the index: append two distinct
        // payloads, then verify ordinal addressing keeps them apart even
        // when both live under one hash bucket.
        let a = store.append(b"one").unwrap();
        store.index.get_mut(&a.hash).unwrap().push(SegRef { offset: store.end + HEADER, len: 3 });
        // Write the colliding frame by hand with a's hash.
        let mut frame = Vec::new();
        frame.extend_from_slice(&3u32.to_le_bytes());
        frame.extend_from_slice(&a.hash.to_le_bytes());
        frame.extend_from_slice(b"two");
        store.file.seek(SeekFrom::Start(store.end)).unwrap();
        store.file.write_all(&frame).unwrap();
        store.end += frame.len() as u64;
        let b = SegmentId { hash: a.hash, ordinal: 1 };
        assert_eq!(store.get(a).unwrap().unwrap(), b"one");
        assert_eq!(store.get(b).unwrap().unwrap(), b"two");
        // A re-append of "one" byte-compares and returns ordinal 0, not
        // the colliding sibling.
        assert_eq!(store.append(b"one").unwrap(), a);
    }
}
