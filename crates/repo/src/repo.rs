//! The repository proper: XMI snapshots, branches, tags, undo/redo.

use crate::diff::{diff_models, ModelDiff};
use crate::hash::fnv1a64;
use comet_middleware::{FaultHook, MiddlewareError};
use comet_model::{ElementId, Model};
use comet_xmi::{export_model, import_model, XmiError};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Fault point name: the next commit fails ([`FaultHook`]).
pub const FAULT_POINT_COMMIT: &str = "repo.commit";
/// Fault point name: the next undo fails ([`FaultHook`]).
pub const FAULT_POINT_UNDO: &str = "repo.undo";
/// Fault point name: the durable backend's next *compensating* journal
/// append fails ([`FaultHook`]) — exercises the journal-divergence
/// poisoning path in `DurableRepository`.
pub const FAULT_POINT_WAL_COMPENSATION: &str = "repo.wal.compensation";

/// Identifier of a commit within one repository.
pub type CommitId = u64;

/// The element-level delta a commit introduced over its parent, as
/// reported by the transformation engine's change journal. Stored with
/// the commit so adjacent-version comparisons need no snapshot decode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitDelta {
    /// Elements created by the step, in id order.
    pub created: Vec<ElementId>,
    /// Elements modified by the step, in id order.
    pub modified: Vec<ElementId>,
    /// Elements removed by the step, in id order.
    pub removed: Vec<ElementId>,
}

impl CommitDelta {
    /// True when the commit changed nothing over its parent.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.modified.is_empty() && self.removed.is_empty()
    }

    /// Total elements touched.
    pub fn touched(&self) -> usize {
        self.created.len() + self.modified.len() + self.removed.len()
    }
}

/// One committed model version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// The commit id.
    pub id: CommitId,
    /// Parent commit, if any.
    pub parent: Option<CommitId>,
    /// Commit message.
    pub message: String,
    /// The concern whose transformation produced this version, if any.
    pub concern: Option<String>,
    /// FNV-1a content hash of the snapshot.
    pub hash: u64,
    /// Element-level delta over the parent, when the committer supplied
    /// one (see [`Repository::commit_with_delta`]).
    pub delta: Option<CommitDelta>,
    pub(crate) snapshot: String,
}

impl Commit {
    /// The XMI snapshot text.
    pub fn snapshot_xmi(&self) -> &str {
        &self.snapshot
    }
}

/// Repository failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RepoError {
    /// A commit id does not exist.
    UnknownCommit(CommitId),
    /// A branch name does not exist.
    UnknownBranch(String),
    /// A branch with this name already exists.
    BranchExists(String),
    /// A tag name does not exist.
    UnknownTag(String),
    /// A snapshot failed to decode (repository corruption).
    Corrupt(XmiError),
    /// The storage backend rejected the operation (also the variant the
    /// fault-injection hooks raise in tests).
    Storage(String),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::UnknownCommit(id) => write!(f, "unknown commit {id}"),
            RepoError::UnknownBranch(b) => write!(f, "unknown branch `{b}`"),
            RepoError::BranchExists(b) => write!(f, "branch `{b}` already exists"),
            RepoError::UnknownTag(t) => write!(f, "unknown tag `{t}`"),
            RepoError::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
            RepoError::Storage(detail) => write!(f, "storage failure: {detail}"),
        }
    }
}

impl std::error::Error for RepoError {}

/// A versioned model repository with linear history per branch.
///
/// Undo/redo is a position pointer into the current branch's history;
/// committing after an undo truncates the redo tail (like an editor).
#[derive(Debug, Clone)]
pub struct Repository {
    pub(crate) name: String,
    pub(crate) commits: BTreeMap<CommitId, Commit>,
    pub(crate) next_id: CommitId,
    pub(crate) branches: BTreeMap<String, Vec<CommitId>>,
    pub(crate) current_branch: String,
    /// Number of *visible* commits on the current branch (undo reduces
    /// it, redo restores it, commit truncates beyond it).
    pub(crate) position: usize,
    pub(crate) tags: BTreeMap<String, CommitId>,
    /// Fault injection for lifecycle consistency tests: when set, the
    /// next commit / undo fails with [`RepoError::Storage`].
    fail_next_commit: bool,
    fail_next_undo: bool,
    fail_next_compensation: bool,
}

impl Repository {
    /// Creates an empty repository with a `main` branch.
    pub fn new(name: impl Into<String>) -> Self {
        let mut branches = BTreeMap::new();
        branches.insert("main".to_owned(), Vec::new());
        Repository {
            name: name.into(),
            commits: BTreeMap::new(),
            next_id: 1,
            branches,
            current_branch: "main".to_owned(),
            position: 0,
            tags: BTreeMap::new(),
            fail_next_commit: false,
            fail_next_undo: false,
            fail_next_compensation: false,
        }
    }

    /// Repository name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current branch name.
    pub fn current_branch(&self) -> &str {
        &self.current_branch
    }

    fn branch_history(&self) -> &Vec<CommitId> {
        self.branches.get(&self.current_branch).expect("current branch always exists")
    }

    /// Commits a snapshot of `model` on the current branch. Truncates any
    /// redo tail first.
    ///
    /// # Errors
    /// Fails only when a storage fault is injected (`Result` kept for
    /// storage-backed versions).
    pub fn commit(
        &mut self,
        model: &Model,
        message: &str,
        concern: Option<&str>,
    ) -> Result<CommitId, RepoError> {
        self.commit_inner(model, message, concern, None)
    }

    /// Commits with a known element-level delta over the parent (the
    /// transformation journal's summary). Two gains over
    /// [`Repository::commit`]: the delta is stored on the commit for
    /// decode-free history queries, and an **empty** delta skips the
    /// O(model) XMI export entirely by reusing the parent's snapshot —
    /// a model identical to its parent serializes identically.
    ///
    /// # Errors
    /// Fails only when a storage fault is injected.
    pub fn commit_with_delta(
        &mut self,
        model: &Model,
        message: &str,
        concern: Option<&str>,
        delta: CommitDelta,
    ) -> Result<CommitId, RepoError> {
        self.commit_inner(model, message, concern, Some(delta))
    }

    fn commit_inner(
        &mut self,
        model: &Model,
        message: &str,
        concern: Option<&str>,
        delta: Option<CommitDelta>,
    ) -> Result<CommitId, RepoError> {
        if self.take_commit_fault() {
            return Err(RepoError::Storage("injected commit failure".to_owned()));
        }
        let parent_visible = self.head();
        let reuse_parent =
            parent_visible.filter(|_| delta.as_ref().map(CommitDelta::is_empty).unwrap_or(false));
        let (snapshot, hash) = match reuse_parent {
            Some(p) => {
                // A lying journal (empty delta over a changed model)
                // would persist a stale snapshot under a wrong hash; the
                // durable backend refuses it outright, the in-memory hot
                // path verifies in debug builds only.
                debug_assert_eq!(
                    fnv1a64(export_model(model).as_bytes()),
                    p.hash,
                    "empty CommitDelta for `{message}` but the model content \
                     differs from parent commit {}",
                    p.id
                );
                (p.snapshot.clone(), p.hash)
            }
            None => {
                let snapshot = export_model(model);
                let hash = fnv1a64(snapshot.as_bytes());
                (snapshot, hash)
            }
        };
        Ok(self.commit_raw(snapshot, hash, message, concern, delta))
    }

    /// Consumes the armed one-shot commit fault, if any.
    pub(crate) fn take_commit_fault(&mut self) -> bool {
        std::mem::take(&mut self.fail_next_commit)
    }

    /// Consumes the armed one-shot undo fault, if any.
    pub(crate) fn take_undo_fault(&mut self) -> bool {
        std::mem::take(&mut self.fail_next_undo)
    }

    /// Consumes the armed one-shot compensation-append fault, if any.
    pub(crate) fn take_compensation_fault(&mut self) -> bool {
        std::mem::take(&mut self.fail_next_compensation)
    }

    /// The infallible commit core shared by the in-memory path (which
    /// exports the snapshot itself) and the durable backend / WAL
    /// replay (which bring pre-serialized bytes): truncates the redo
    /// tail, inserts the commit, advances the head, and garbage-collects
    /// commits the truncation orphaned.
    pub(crate) fn commit_raw(
        &mut self,
        snapshot: String,
        hash: u64,
        message: &str,
        concern: Option<&str>,
        delta: Option<CommitDelta>,
    ) -> CommitId {
        let history =
            self.branches.get_mut(&self.current_branch).expect("current branch always exists");
        let truncated = history.split_off(self.position);
        let parent = history.last().copied();
        let id = self.next_id;
        self.next_id += 1;
        self.commits.insert(
            id,
            Commit {
                id,
                parent,
                message: message.to_owned(),
                concern: concern.map(str::to_owned),
                hash,
                delta,
                snapshot,
            },
        );
        let history =
            self.branches.get_mut(&self.current_branch).expect("current branch always exists");
        history.push(id);
        self.position = history.len();
        if !truncated.is_empty() {
            self.collect_orphans(&truncated);
        }
        id
    }

    /// Drops truncated commits that no branch or tag can reach any
    /// more. Without this, the serve-tier apply/undo/apply steady state
    /// grows `commits` without bound: every commit-after-undo truncates
    /// the redo tail from the branch history but used to leave the
    /// orphaned commits in the map forever.
    fn collect_orphans(&mut self, candidates: &[CommitId]) {
        let mut reachable: BTreeSet<CommitId> = self.branches.values().flatten().copied().collect();
        reachable.extend(self.tags.values().copied());
        // Parent closure: a reachable commit keeps its whole ancestry
        // (diffs and checkouts may address ancestors by id).
        let mut stack: Vec<CommitId> = reachable.iter().copied().collect();
        while let Some(id) = stack.pop() {
            if let Some(parent) = self.commits.get(&id).and_then(|c| c.parent) {
                if reachable.insert(parent) {
                    stack.push(parent);
                }
            }
        }
        for id in candidates {
            if !reachable.contains(id) {
                self.commits.remove(id);
            }
        }
    }

    /// The visible head commit of the current branch, if any.
    pub fn head(&self) -> Option<&Commit> {
        let history = self.branch_history();
        if self.position == 0 {
            None
        } else {
            self.commits.get(&history[self.position - 1])
        }
    }

    /// Checks out the model at the visible head.
    ///
    /// # Errors
    /// Fails only on snapshot corruption.
    pub fn head_model(&self) -> Option<Result<Model, RepoError>> {
        self.head().map(|c| import_model(&c.snapshot).map_err(RepoError::Corrupt))
    }

    /// Checks out an arbitrary commit.
    ///
    /// # Errors
    /// Fails on unknown ids or snapshot corruption.
    pub fn checkout(&self, id: CommitId) -> Result<Model, RepoError> {
        let c = self.commits.get(&id).ok_or(RepoError::UnknownCommit(id))?;
        import_model(&c.snapshot).map_err(RepoError::Corrupt)
    }

    /// Steps the visible head one commit back; returns the model now at
    /// head (i.e. the state *before* the undone transformation), or
    /// `None` when there is nothing to undo.
    ///
    /// Atomic: on any `Err` — storage fault or snapshot corruption —
    /// the head position does not move, so callers never need a
    /// compensating [`redo`](Self::redo).
    pub fn undo(&mut self) -> Option<Result<Model, RepoError>> {
        if self.position == 0 {
            return None;
        }
        if self.fail_next_undo {
            self.fail_next_undo = false;
            return Some(Err(RepoError::Storage("injected undo failure".to_owned())));
        }
        let restored = if self.position == 1 {
            // Undoing the initial commit: the "model before anything"
            // is not stored; report an empty model of the same name.
            Ok(Model::new(self.name.clone()))
        } else {
            let id = self.branch_history()[self.position - 2];
            match self.commits.get(&id) {
                None => Err(RepoError::UnknownCommit(id)),
                Some(c) => import_model(&c.snapshot).map_err(RepoError::Corrupt),
            }
        };
        if restored.is_ok() {
            self.position -= 1;
        }
        Some(restored)
    }

    /// Steps the visible head one commit forward; returns the restored
    /// model, or `None` when there is nothing to redo.
    pub fn redo(&mut self) -> Option<Result<Model, RepoError>> {
        if self.position >= self.branch_history().len() {
            return None;
        }
        self.position += 1;
        self.head_model()
    }

    /// Number of undoable steps.
    pub fn undo_depth(&self) -> usize {
        self.position
    }

    /// Number of redoable steps.
    pub fn redo_depth(&self) -> usize {
        self.branch_history().len() - self.position
    }

    /// Creates a branch starting from the current visible head and
    /// switches to it.
    ///
    /// # Errors
    /// Fails when the branch exists.
    pub fn branch(&mut self, name: &str) -> Result<(), RepoError> {
        if self.branches.contains_key(name) {
            return Err(RepoError::BranchExists(name.to_owned()));
        }
        let visible: Vec<CommitId> = self.branch_history()[..self.position].to_vec();
        self.branches.insert(name.to_owned(), visible);
        self.current_branch = name.to_owned();
        // position stays: same number of visible commits.
        Ok(())
    }

    /// Switches to an existing branch (head = its full history).
    ///
    /// # Errors
    /// Fails when the branch is unknown.
    pub fn switch_branch(&mut self, name: &str) -> Result<(), RepoError> {
        if !self.branches.contains_key(name) {
            return Err(RepoError::UnknownBranch(name.to_owned()));
        }
        self.current_branch = name.to_owned();
        self.position = self.branch_history().len();
        Ok(())
    }

    /// All branch names, sorted.
    pub fn branch_names(&self) -> Vec<&str> {
        self.branches.keys().map(String::as_str).collect()
    }

    /// Tags the current visible head.
    ///
    /// # Errors
    /// Fails when there is no head.
    pub fn tag(&mut self, name: &str) -> Result<CommitId, RepoError> {
        let head = self.head().ok_or(RepoError::UnknownCommit(0))?.id;
        self.tags.insert(name.to_owned(), head);
        Ok(head)
    }

    /// Checks out a tagged model.
    ///
    /// # Errors
    /// Fails on unknown tags or snapshot corruption.
    pub fn checkout_tag(&self, name: &str) -> Result<Model, RepoError> {
        let id = *self.tags.get(name).ok_or_else(|| RepoError::UnknownTag(name.to_owned()))?;
        self.checkout(id)
    }

    /// Structural diff between two commits (from `a` to `b`).
    ///
    /// # Errors
    /// Fails on unknown ids or snapshot corruption.
    pub fn diff(&self, a: CommitId, b: CommitId) -> Result<ModelDiff, RepoError> {
        Ok(diff_models(&self.checkout(a)?, &self.checkout(b)?))
    }

    /// The visible commit log of the current branch, oldest first.
    pub fn log(&self) -> Vec<&Commit> {
        self.branch_history()[..self.position]
            .iter()
            .filter_map(|id| self.commits.get(id))
            .collect()
    }

    /// Total number of commits stored across branches.
    pub fn len(&self) -> usize {
        self.commits.len()
    }

    /// True when no commit was ever made.
    pub fn is_empty(&self) -> bool {
        self.commits.is_empty()
    }
}

/// The repository's one-shot fault points, unified with the middleware
/// runtime behind [`FaultHook`]: arming [`FAULT_POINT_COMMIT`] makes
/// the next commit fail with [`RepoError::Storage`] without touching
/// any state; [`FAULT_POINT_UNDO`] does the same for the next undo
/// without moving the head position;
/// [`FAULT_POINT_WAL_COMPENSATION`] fails the durable backend's next
/// compensating journal append (the write that re-aligns the journal
/// with memory after an in-memory undo/redo failure).
impl FaultHook for Repository {
    fn fault_points(&self) -> Vec<&'static str> {
        vec![FAULT_POINT_COMMIT, FAULT_POINT_UNDO, FAULT_POINT_WAL_COMPENSATION]
    }

    fn arm_fault(&mut self, point: &str) -> Result<(), MiddlewareError> {
        match point {
            FAULT_POINT_COMMIT => self.fail_next_commit = true,
            FAULT_POINT_UNDO => self.fail_next_undo = true,
            FAULT_POINT_WAL_COMPENSATION => self.fail_next_compensation = true,
            other => return Err(MiddlewareError::UnknownFaultPoint(other.to_owned())),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_model::sample::banking_pim;

    fn repo_with_two_versions() -> (Repository, Model, Model) {
        let mut repo = Repository::new("bank");
        let v1 = banking_pim();
        repo.commit(&v1, "initial", None).unwrap();
        let mut v2 = v1.clone();
        let bank = v2.find_class("Bank").unwrap();
        v2.apply_stereotype(bank, "Remote").unwrap();
        repo.commit(&v2, "distribution", Some("distribution")).unwrap();
        (repo, v1, v2)
    }

    #[test]
    fn commit_and_head() {
        let (repo, _v1, v2) = repo_with_two_versions();
        assert_eq!(repo.len(), 2);
        assert!(!repo.is_empty());
        let head = repo.head().unwrap();
        assert_eq!(head.message, "distribution");
        assert_eq!(head.concern.as_deref(), Some("distribution"));
        assert_eq!(repo.head_model().unwrap().unwrap(), v2);
        assert!(head.snapshot_xmi().contains("Remote"));
    }

    #[test]
    fn undo_redo_inverse() {
        let (mut repo, v1, v2) = repo_with_two_versions();
        assert_eq!(repo.undo_depth(), 2);
        assert_eq!(repo.redo_depth(), 0);
        assert_eq!(repo.undo().unwrap().unwrap(), v1);
        assert_eq!(repo.redo_depth(), 1);
        assert_eq!(repo.redo().unwrap().unwrap(), v2);
        // Undo to the very beginning yields an empty model.
        repo.undo();
        let empty = repo.undo().unwrap().unwrap();
        assert_eq!(empty.len(), 1);
        assert!(repo.undo().is_none());
        // Redo all the way back.
        repo.redo();
        assert_eq!(repo.redo().unwrap().unwrap(), v2);
        assert!(repo.redo().is_none());
    }

    #[test]
    fn commit_after_undo_truncates_redo() {
        let (mut repo, v1, _v2) = repo_with_two_versions();
        repo.undo();
        let mut v3 = v1.clone();
        v3.add_class(v3.root(), "Other").unwrap();
        repo.commit(&v3, "alternative", None).unwrap();
        assert!(repo.redo().is_none());
        assert_eq!(repo.head_model().unwrap().unwrap(), v3);
        assert_eq!(repo.log().len(), 2);
        // The truncated commit is unreachable and must be collected.
        assert_eq!(repo.len(), 2);
    }

    #[test]
    fn commit_after_undo_does_not_leak_orphaned_commits() {
        // The serve-tier steady state: apply, undo, apply, undo, ...
        // Every commit-after-undo truncates the redo tail; the orphans
        // must be garbage-collected or `commits` grows without bound.
        let mut repo = Repository::new("bank");
        let v1 = banking_pim();
        repo.commit(&v1, "initial", None).unwrap();
        let mut v2 = v1.clone();
        let bank = v2.find_class("Bank").unwrap();
        v2.apply_stereotype(bank, "Remote").unwrap();
        for i in 0..1000 {
            repo.commit(&v2, &format!("step {i}"), Some("distribution")).unwrap();
            repo.undo().unwrap().unwrap();
        }
        // One live commit (initial) plus at most one redo tail.
        assert!(
            repo.len() <= 2,
            "commits leaked: {} stored after 1000 apply/undo iterations",
            repo.len()
        );
        assert_eq!(repo.log().len(), 1);
        // The history itself is intact: redo still works.
        assert_eq!(repo.redo().unwrap().unwrap(), v2);
    }

    #[test]
    fn truncation_spares_tagged_and_branched_commits() {
        let (mut repo, v1, v2) = repo_with_two_versions();
        repo.tag("keep-me").unwrap();
        repo.undo();
        let mut v3 = v1.clone();
        v3.add_class(v3.root(), "Other").unwrap();
        repo.commit(&v3, "alternative", None).unwrap();
        // The truncated v2 commit survives: the tag still reaches it.
        assert_eq!(repo.len(), 3);
        assert_eq!(repo.checkout_tag("keep-me").unwrap(), v2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "empty CommitDelta")]
    fn lying_empty_delta_trips_the_debug_verification() {
        let (mut repo, _v1, v2) = repo_with_two_versions();
        let mut v3 = v2.clone();
        v3.add_class(v3.root(), "Sneaky").unwrap();
        // The journal lies: the model changed but the delta says empty.
        repo.commit_with_delta(&v3, "lying", None, CommitDelta::default()).unwrap();
    }

    #[test]
    fn honest_empty_delta_reuses_the_parent_snapshot() {
        let (mut repo, _v1, v2) = repo_with_two_versions();
        let head_hash = repo.head().unwrap().hash;
        let id = repo
            .commit_with_delta(&v2, "no-op step", Some("transactions"), CommitDelta::default())
            .unwrap();
        let c = repo.commits.get(&id).unwrap();
        assert_eq!(c.hash, head_hash, "unchanged model shares the parent's content hash");
        assert_eq!(repo.checkout(id).unwrap(), v2);
    }

    #[test]
    fn hashes_distinguish_content() {
        let (repo, _, _) = repo_with_two_versions();
        let log = repo.log();
        assert_ne!(log[0].hash, log[1].hash);
        assert_eq!(log[1].parent, Some(log[0].id));
    }

    #[test]
    fn branches_and_tags() {
        let (mut repo, v1, v2) = repo_with_two_versions();
        repo.tag("psm-v1").unwrap();
        repo.undo();
        repo.branch("experiment").unwrap();
        assert_eq!(repo.current_branch(), "experiment");
        let mut v3 = v1.clone();
        v3.add_class(v3.root(), "Experimental").unwrap();
        repo.commit(&v3, "experiment", None).unwrap();
        assert_eq!(repo.head_model().unwrap().unwrap(), v3);
        // Main still has both commits.
        repo.switch_branch("main").unwrap();
        assert_eq!(repo.head_model().unwrap().unwrap(), v2);
        assert_eq!(repo.checkout_tag("psm-v1").unwrap(), v2);
        assert_eq!(repo.branch_names(), vec!["experiment", "main"]);
        assert!(matches!(repo.branch("main"), Err(RepoError::BranchExists(_))));
        assert!(matches!(repo.switch_branch("ghost"), Err(RepoError::UnknownBranch(_))));
        assert!(matches!(repo.checkout_tag("ghost"), Err(RepoError::UnknownTag(_))));
    }

    #[test]
    fn diff_between_commits() {
        let (repo, _, _) = repo_with_two_versions();
        let log: Vec<CommitId> = repo.log().iter().map(|c| c.id).collect();
        let d = repo.diff(log[0], log[1]).unwrap();
        assert_eq!(d.added.len(), 0);
        assert_eq!(d.modified.len(), 1);
        assert!(matches!(repo.diff(999, log[0]), Err(RepoError::UnknownCommit(999))));
    }

    #[test]
    fn fault_hook_arms_one_shot_failures() {
        let (mut repo, _v1, v2) = repo_with_two_versions();
        assert_eq!(
            repo.fault_points(),
            vec![FAULT_POINT_COMMIT, FAULT_POINT_UNDO, FAULT_POINT_WAL_COMPENSATION]
        );
        repo.arm_fault(FAULT_POINT_COMMIT).unwrap();
        assert!(matches!(repo.commit(&v2, "x", None), Err(RepoError::Storage(_))));
        // One-shot: the retry goes through.
        repo.commit(&v2, "x", None).unwrap();
        repo.arm_fault(FAULT_POINT_UNDO).unwrap();
        assert!(matches!(repo.undo(), Some(Err(RepoError::Storage(_)))));
        assert!(repo.undo().unwrap().is_ok());
        assert!(matches!(
            repo.arm_fault("repo.reindex"),
            Err(MiddlewareError::UnknownFaultPoint(_))
        ));
    }

    #[test]
    fn empty_repo_behaviour() {
        let mut repo = Repository::new("empty");
        assert!(repo.head().is_none());
        assert!(repo.head_model().is_none());
        assert!(repo.undo().is_none());
        assert!(repo.redo().is_none());
        assert!(matches!(repo.tag("x"), Err(RepoError::UnknownCommit(0))));
        assert_eq!(repo.log().len(), 0);
    }
}
