//! FNV-1a content hashing (dependency-free; snapshots are small enough
//! that a cryptographic hash would buy nothing here).

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"hello"), 0xa430_d846_80aa_bd0b);
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(fnv1a64(b"model-a"), fnv1a64(b"model-b"));
        assert_eq!(fnv1a64(b"same"), fnv1a64(b"same"));
    }
}
