//! Property tests for the repository: undo/redo laws, snapshot
//! fidelity, and diff algebra over random version chains.

use comet_model::{Model, Primitive};
use comet_repo::{diff_models, Repository};
use proptest::prelude::*;

/// Builds a chain of model versions, each extending the previous.
fn version_chain(extensions: &[u8]) -> Vec<Model> {
    let mut versions = Vec::new();
    let mut m = Model::new("chain");
    versions.push(m.clone());
    for (i, kind) in extensions.iter().enumerate() {
        let root = m.root();
        match kind % 3 {
            0 => {
                m.add_class(root, &format!("C{i}")).expect("unique");
            }
            1 => {
                let c = m.add_class(root, &format!("D{i}")).expect("unique");
                m.add_attribute(c, "x", Primitive::Int.into()).expect("unique");
            }
            _ => {
                if let Some(&class) = m.classes().first() {
                    m.apply_stereotype(class, &format!("S{i}")).expect("exists");
                } else {
                    m.add_class(root, &format!("E{i}")).expect("unique");
                }
            }
        }
        versions.push(m.clone());
    }
    versions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn head_after_commits_is_last_version(exts in prop::collection::vec(any::<u8>(), 1..12)) {
        let versions = version_chain(&exts);
        let mut repo = Repository::new("chain");
        for (i, v) in versions.iter().enumerate() {
            repo.commit(v, &format!("v{i}"), None).expect("commits");
        }
        let head = repo.head_model().expect("has head").expect("decodes");
        prop_assert_eq!(&head, versions.last().expect("non-empty"));
        prop_assert_eq!(repo.log().len(), versions.len());
    }

    #[test]
    fn undo_then_redo_is_identity(exts in prop::collection::vec(any::<u8>(), 1..10), steps in 1usize..5) {
        let versions = version_chain(&exts);
        let mut repo = Repository::new("chain");
        for (i, v) in versions.iter().enumerate() {
            repo.commit(v, &format!("v{i}"), None).expect("commits");
        }
        let before = repo.head_model().expect("head").expect("decodes");
        let steps = steps.min(repo.undo_depth());
        for _ in 0..steps {
            repo.undo();
        }
        for _ in 0..steps {
            repo.redo();
        }
        let after = repo.head_model().expect("head").expect("decodes");
        prop_assert_eq!(before, after);
    }

    #[test]
    fn undo_walks_versions_backwards(exts in prop::collection::vec(any::<u8>(), 2..10)) {
        let versions = version_chain(&exts);
        let mut repo = Repository::new("chain");
        for (i, v) in versions.iter().enumerate() {
            repo.commit(v, &format!("v{i}"), None).expect("commits");
        }
        for expected in versions.iter().rev().skip(1) {
            let undone = repo.undo().expect("undoable").expect("decodes");
            // Undoing the first commit yields the fresh empty model, not
            // a stored version; stop there.
            if repo.undo_depth() == 0 {
                break;
            }
            prop_assert_eq!(&undone, expected);
        }
    }

    #[test]
    fn diff_is_empty_iff_models_equal(exts in prop::collection::vec(any::<u8>(), 1..10)) {
        let versions = version_chain(&exts);
        for w in versions.windows(2) {
            let d = diff_models(&w[0], &w[1]);
            prop_assert_eq!(d.is_empty(), w[0] == w[1]);
            let self_diff = diff_models(&w[1], &w[1]);
            prop_assert!(self_diff.is_empty());
        }
    }

    #[test]
    fn diff_added_removed_are_mirror_images(exts in prop::collection::vec(any::<u8>(), 1..10)) {
        let versions = version_chain(&exts);
        let first = versions.first().expect("non-empty");
        let last = versions.last().expect("non-empty");
        let fwd = diff_models(first, last);
        let bwd = diff_models(last, first);
        prop_assert_eq!(&fwd.added, &bwd.removed);
        prop_assert_eq!(&fwd.removed, &bwd.added);
        let mut fm = fwd.modified.clone();
        let mut bm = bwd.modified.clone();
        fm.sort();
        bm.sort();
        prop_assert_eq!(fm, bm);
    }

    #[test]
    fn switch_branch_resets_the_redo_stack(
        exts in prop::collection::vec(any::<u8>(), 3..10),
        undos in 1usize..4,
    ) {
        let versions = version_chain(&exts);
        let mut repo = Repository::new("chain");
        for (i, v) in versions.iter().enumerate() {
            repo.commit(v, &format!("v{i}"), None).expect("commits");
        }
        // Open a redo window on main, then fork from the undone state.
        let undos = undos.min(repo.undo_depth().saturating_sub(1));
        for _ in 0..undos {
            repo.undo();
        }
        prop_assert_eq!(repo.redo_depth(), undos);
        repo.branch("side").expect("fresh branch name");
        // Branching keeps only the visible prefix: nothing to redo on
        // the new branch, ever.
        prop_assert_eq!(repo.redo_depth(), 0);

        // Switching back to main lands on the branch tip: the redo
        // window that was open before the switch is gone.
        repo.switch_branch("main").expect("main exists");
        prop_assert_eq!(repo.redo_depth(), 0);
        prop_assert_eq!(repo.undo_depth(), versions.len());
        let head = repo.head_model().expect("head").expect("decodes");
        prop_assert_eq!(&head, versions.last().expect("non-empty"));

        // Undo/redo still works after the round-trip of switches.
        repo.switch_branch("side").expect("side exists");
        prop_assert_eq!(repo.undo_depth(), versions.len() - undos);
        prop_assert_eq!(repo.redo_depth(), 0);
        if repo.undo_depth() > 1 {
            let before = repo.head_model().expect("head").expect("decodes");
            repo.undo().expect("undoable").expect("decodes");
            prop_assert_eq!(repo.redo_depth(), 1);
            let after = repo.redo().expect("redoable").expect("decodes");
            prop_assert_eq!(after, before);
        }
    }

    #[test]
    fn commit_hashes_collide_only_for_equal_snapshots(exts in prop::collection::vec(any::<u8>(), 1..10)) {
        let versions = version_chain(&exts);
        let mut repo = Repository::new("chain");
        for (i, v) in versions.iter().enumerate() {
            repo.commit(v, &format!("v{i}"), None).expect("commits");
        }
        let log = repo.log();
        for i in 0..log.len() {
            for j in (i + 1)..log.len() {
                if log[i].hash == log[j].hash {
                    prop_assert_eq!(log[i].snapshot_xmi(), log[j].snapshot_xmi());
                }
            }
        }
    }
}
