//! Property tests for the durable backend: arbitrary operation
//! sequences survive close → reopen with identical repository state,
//! and a WAL torn at *every* byte boundary recovers to exactly the
//! state after the last complete record — never a panic, never
//! corruption.

use comet_model::Model;
use comet_repo::{CommitDelta, DurableRepository, Repository, Wal};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(label: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("comet-durprop-{}-{label}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Full-state fingerprint: `Repository` is a plain data structure whose
/// `Debug` output covers every field (BTreeMaps print in key order), so
/// equal fingerprints mean equal state including snapshots and hashes.
fn fingerprint(repo: &Repository) -> String {
    format!("{repo:?}")
}

/// Drives one opcode against the durable repository and the working
/// model; returns `true` when the op journaled a WAL record.
fn drive(dur: &mut DurableRepository, model: &mut Model, op: u8, i: usize) -> bool {
    match op % 8 {
        0 | 1 => {
            let root = model.root();
            model.add_class(root, &format!("C{i}")).expect("unique class name");
            dur.commit(model, &format!("v{i}"), Some("distribution")).expect("commit");
            true
        }
        2 => {
            // Honest empty delta: re-commit the head content unchanged.
            match dur.head_model() {
                Some(head) => {
                    *model = head.expect("decodes");
                    dur.commit_with_delta(model, &format!("noop{i}"), None, CommitDelta::default())
                        .expect("honest empty delta");
                    true
                }
                None => false,
            }
        }
        3 => match dur.undo() {
            Some(restored) => {
                *model = restored.expect("decodes");
                true
            }
            None => false,
        },
        4 => match dur.redo() {
            Some(restored) => {
                *model = restored.expect("decodes");
                true
            }
            None => false,
        },
        5 => {
            dur.branch(&format!("b{i}")).expect("fresh branch name");
            true
        }
        6 => {
            let names: Vec<String> = dur.branch_names().into_iter().map(str::to_owned).collect();
            let target = names[i % names.len()].clone();
            dur.switch_branch(&target).expect("known branch");
            *model = match dur.head_model() {
                Some(head) => head.expect("decodes"),
                None => Model::new(dur.name().to_owned()),
            };
            true
        }
        _ => {
            if dur.head().is_some() {
                dur.tag(&format!("t{i}")).expect("taggable");
                true
            } else {
                false
            }
        }
    }
}

/// Builds a durable repository from an op sequence; returns the
/// directory and the fingerprint after every journaled record (index k
/// = state after k+1 records, the init record included).
fn build(dir: &Path, ops: &[u8]) -> Vec<String> {
    let mut dur = DurableRepository::create(dir, "bank").expect("create");
    let mut states = vec![fingerprint(dur.repo())];
    let mut model = Model::new("bank");
    for (i, &op) in ops.iter().enumerate() {
        if drive(&mut dur, &mut model, op, i) {
            states.push(fingerprint(dur.repo()));
        }
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn close_then_reopen_preserves_every_state(ops in prop::collection::vec(any::<u8>(), 1..16)) {
        let dir = tmp_dir("reopen");
        let states = build(&dir, &ops);
        let (dur, report) = DurableRepository::open(&dir).expect("reopen");
        prop_assert!(report.clean());
        prop_assert_eq!(report.records_replayed, states.len());
        prop_assert_eq!(&fingerprint(dur.repo()), states.last().expect("non-empty"));
        let fsck = DurableRepository::fsck(&dir).expect("fsck runs");
        prop_assert!(fsck.ok(), "{}", fsck);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_state_and_replays_from_one_record(
        ops in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let dir = tmp_dir("compact");
        let states = build(&dir, &ops);
        let (mut dur, _) = DurableRepository::open(&dir).expect("reopen");
        dur.compact().expect("compaction");
        prop_assert_eq!(&fingerprint(dur.repo()), states.last().expect("non-empty"));
        drop(dur);
        let (dur, report) = DurableRepository::open(&dir).expect("post-compaction open");
        prop_assert!(report.clean());
        prop_assert_eq!(report.records_replayed, 1);
        prop_assert_eq!(&fingerprint(dur.repo()), states.last().expect("non-empty"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_torn_at_every_byte_recovers_the_last_complete_record(
        ops in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let dir = tmp_dir("torn");
        let states = build(&dir, &ops);
        let wal_path = dir.join("wal.log");
        let full = std::fs::read(&wal_path).expect("wal exists");
        for cut in 0..=full.len() {
            std::fs::write(&wal_path, &full[..cut]).expect("truncate");
            // Reading never panics and yields a strict record prefix.
            let (records, _, end) = Wal::read_all(&wal_path).expect("read");
            prop_assert!(end <= cut as u64, "cut at {cut}");
            match DurableRepository::open(&dir) {
                Ok((dur, report)) => {
                    let k = report.records_replayed;
                    prop_assert_eq!(k, records.len(), "cut at {}", cut);
                    // Recovery = the state after the last complete record.
                    prop_assert_eq!(
                        &fingerprint(dur.repo()),
                        &states[k - 1],
                        "cut at {}",
                        cut
                    );
                }
                // Only acceptable failure: the init record itself is torn.
                Err(_) => prop_assert!(records.is_empty(), "cut at {cut}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
