//! # comet-bench — shared workloads for the experiment benchmarks
//!
//! One Criterion bench target exists per experiment in DESIGN.md's
//! index (E1–E10). This library holds the workload builders they share:
//! the executable banking system (PIM + functional bodies), standard
//! parameter sets, and synthetic scaling models.

use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, IrType, LValue, Stmt};
use comet_model::{Model, ModelBuilder, Primitive, TypeRef};
use comet_transform::{ParamSet, ParamValue};

pub use comet_model::sample::synthetic;

/// The executable banking PIM (same shape as the integration-test
/// fixture): `Bank` with two `Account` references, `transfer` and
/// `getBalance`.
pub fn executable_banking_pim() -> Model {
    let mut model = ModelBuilder::new("bank")
        .class("Account", |c| {
            c.attribute("number", Primitive::Str)?.attribute("balance", Primitive::Int)
        })
        .expect("valid model")
        .build();
    let account = model.find_class("Account").expect("just added");
    let root = model.root();
    let bank = model.add_class(root, "Bank").expect("valid");
    model.add_attribute(bank, "a1", TypeRef::Element(account)).expect("valid");
    model.add_attribute(bank, "a2", TypeRef::Element(account)).expect("valid");
    let transfer = model.add_operation(bank, "transfer").expect("valid");
    for p in ["from", "to"] {
        model.add_parameter(transfer, p, Primitive::Str.into()).expect("valid");
    }
    model.add_parameter(transfer, "amount", Primitive::Int.into()).expect("valid");
    model.set_return_type(transfer, Primitive::Bool.into()).expect("valid");
    let get_balance = model.add_operation(bank, "getBalance").expect("valid");
    model.add_parameter(get_balance, "number", Primitive::Str.into()).expect("valid");
    model.set_return_type(get_balance, Primitive::Int.into()).expect("valid");
    model
}

fn select_account(var: &str, number_param: &str) -> Vec<Stmt> {
    vec![
        Stmt::local(var, IrType::Object("Account".into()), Expr::this_field("a1")),
        Stmt::If {
            cond: Expr::binary(
                IrBinOp::Ne,
                Expr::Field { recv: Box::new(Expr::var(var)), name: "number".into() },
                Expr::var(number_param),
            ),
            then_block: Block::of(vec![Stmt::set_var(var, Expr::this_field("a2"))]),
            else_block: None,
        },
    ]
}

/// Functional bodies for [`executable_banking_pim`].
pub fn banking_bodies() -> BodyProvider {
    let field =
        |obj: &str, name: &str| Expr::Field { recv: Box::new(Expr::var(obj)), name: name.into() };
    let mut transfer = Vec::new();
    transfer.extend(select_account("src", "from"));
    transfer.extend(select_account("dst", "to"));
    transfer.extend([
        Stmt::If {
            cond: Expr::binary(IrBinOp::Lt, field("src", "balance"), Expr::var("amount")),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("insufficient funds"))]),
            else_block: None,
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::var("src"), name: "balance".into() },
            value: Expr::binary(IrBinOp::Sub, field("src", "balance"), Expr::var("amount")),
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::var("dst"), name: "balance".into() },
            value: Expr::binary(IrBinOp::Add, field("dst", "balance"), Expr::var("amount")),
        },
        Stmt::ret(Expr::bool(true)),
    ]);
    let mut get_balance = select_account("acc", "number");
    get_balance.push(Stmt::ret(field("acc", "balance")));
    BodyProvider::new()
        .provide("Bank::transfer", Block::of(transfer))
        .provide("Bank::getBalance", Block::of(get_balance))
}

/// Standard distribution `Si` for the banking workload.
pub fn dist_si() -> ParamSet {
    ParamSet::new()
        .with("server_class", ParamValue::from("Bank"))
        .with("node", ParamValue::from("server"))
        .with("operations", ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]))
}

/// Standard transactions `Si` for the banking workload.
pub fn tx_si() -> ParamSet {
    ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
}

/// Standard security `Si` for the banking workload.
pub fn sec_si() -> ParamSet {
    ParamSet::new().with("protected", ParamValue::from(vec!["Bank.transfer:teller".to_owned()]))
}

/// Instantiates the banking object graph; returns `(interp, bank)` ready
/// for `transfer` calls (alice logged in, executing on the server node).
pub fn ready_interp(
    program: comet_codegen::Program,
) -> (comet_interp::Interp, comet_interp::Value) {
    use comet_interp::{Interp, Value};
    let mut interp = Interp::new(program);
    interp.add_node("client");
    interp.add_node("server");
    interp.add_principal("alice", &["teller"]);
    let bank = interp.create_on("Bank", "server").expect("Bank generated");
    let a1 = interp.create_on("Account", "server").expect("Account generated");
    let a2 = interp.create_on("Account", "server").expect("Account generated");
    interp.set_field(&a1, "number", Value::from("A-1")).expect("field");
    interp.set_field(&a1, "balance", Value::Int(1_000_000_000)).expect("field");
    interp.set_field(&a2, "number", Value::from("A-2")).expect("field");
    interp.set_field(&a2, "balance", Value::Int(0)).expect("field");
    interp.set_field(&bank, "a1", a1).expect("field");
    interp.set_field(&bank, "a2", a2).expect("field");
    if interp.program().find_method("Bank", "registerRemote").is_some() {
        interp.call(bank.clone(), "registerRemote", vec![]).expect("registration");
    }
    interp.middleware_mut().bus.set_current_node("server").expect("node exists");
    interp.login("alice").expect("principal exists");
    interp.set_step_budget(u64::MAX);
    (interp, bank)
}

/// The E10 weaver scaling workload: `classes` classes of
/// `methods_per_class` methods, each with a realistically sized body —
/// a stretch of local arithmetic and branching around call shadows
/// (plain, in a conditional, and in a loop) — so both the execution and
/// the call passes do real work and snapshot clones cost what they
/// would on production IR.
pub fn weaver_program(classes: usize, methods_per_class: usize) -> comet_codegen::Program {
    use comet_codegen::{ClassDecl, IrType, MethodDecl, Param, Program};
    let mut p = Program::new("scale");
    for c in 0..classes {
        let mut class = ClassDecl::new(format!("C{c}"));
        for m in 0..methods_per_class {
            let mut method = MethodDecl::new(format!("m{m}"));
            method.params.push(Param::new("x", IrType::Int));
            method.ret = IrType::Int;
            let callee = |i: usize| {
                Stmt::Expr(Expr::call_this(
                    format!("m{}", (m + i) % methods_per_class),
                    vec![Expr::var("x")],
                ))
            };
            let mut stmts = vec![Stmt::local("acc", IrType::Int, Expr::var("x"))];
            for k in 0..8i64 {
                stmts.push(Stmt::set_var(
                    "acc",
                    Expr::binary(IrBinOp::Add, Expr::var("acc"), Expr::int(k)),
                ));
                stmts.push(Stmt::If {
                    cond: Expr::binary(IrBinOp::Lt, Expr::var("acc"), Expr::int(1000 + k)),
                    then_block: Block::of(vec![Stmt::set_var(
                        "acc",
                        Expr::binary(IrBinOp::Sub, Expr::var("acc"), Expr::int(1)),
                    )]),
                    else_block: Some(Block::of(vec![Stmt::set_var("acc", Expr::int(k))])),
                });
            }
            stmts.extend([
                callee(1),
                Stmt::If {
                    cond: Expr::bool(true),
                    then_block: Block::of(vec![callee(2)]),
                    else_block: None,
                },
                Stmt::While { cond: Expr::bool(false), body: Block::of(vec![callee(3)]) },
                Stmt::ret(Expr::var("acc")),
            ]);
            method.body = Block::of(stmts);
            class.methods.push(method);
        }
        p.classes.push(class);
    }
    p
}

/// The E10 aspect set: a mix of execution advice (before / around /
/// after-returning) and call advice, half targeted at name patterns,
/// half universal — `n` aspects in precedence order.
pub fn weaver_aspects(n: usize) -> Vec<comet_aop::Aspect> {
    use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect};
    let log = |tag: &str| {
        Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "log.emit",
            vec![Expr::str("info"), Expr::str(tag)],
        ))])
    };
    (0..n)
        .map(|i| {
            let mut aspect = Aspect::new(format!("a{i}"));
            aspect = match i % 4 {
                0 => aspect.with_advice(Advice::new(
                    AdviceKind::Before,
                    parse_pointcut("execution(*.*)").expect("valid"),
                    log("before-all"),
                )),
                1 => aspect.with_advice(Advice::new(
                    AdviceKind::Around,
                    parse_pointcut("execution(C*.m0)").expect("valid"),
                    Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
                )),
                2 => aspect.with_advice(Advice::new(
                    AdviceKind::Before,
                    parse_pointcut("call(*.m1)").expect("valid"),
                    log("before-call"),
                )),
                _ => aspect.with_advice(Advice::new(
                    AdviceKind::AfterReturning,
                    parse_pointcut("execution(*.m2) || execution(*.m3)").expect("valid"),
                    log("after-ret"),
                )),
            };
            aspect
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_run() {
        use comet_interp::Value;
        let program = comet_codegen::FunctionalGenerator::new()
            .generate(&executable_banking_pim(), &banking_bodies());
        let (mut interp, bank) = ready_interp(program);
        let ok = interp
            .call(bank, "transfer", vec![Value::from("A-1"), Value::from("A-2"), Value::Int(5)])
            .unwrap();
        assert_eq!(ok, Value::Bool(true));
    }

    #[test]
    fn weaver_workload_weaves_identically_on_both_paths() {
        let p = weaver_program(8, 4);
        let weaver = comet_aop::Weaver::new(weaver_aspects(8));
        let indexed = weaver.weave(&p).expect("weaves");
        let naive = weaver.weave_naive(&p).expect("weaves");
        assert_eq!(indexed.program, naive.program);
        assert_eq!(indexed.trace, naive.trace);
        assert!(!indexed.trace.is_empty(), "workload must exercise advice");
    }
}
