//! # comet-bench — shared workloads for the experiment benchmarks
//!
//! One Criterion bench target exists per experiment in DESIGN.md's
//! index (E1–E10). This library holds the workload builders they share:
//! the executable banking system (PIM + functional bodies), standard
//! parameter sets, and synthetic scaling models.

use comet_codegen::{Block, BodyProvider, Expr, IrBinOp, IrType, LValue, Stmt};
use comet_model::{Model, ModelBuilder, Primitive, TypeRef};
use comet_transform::{ParamSet, ParamValue};

pub use comet_model::sample::synthetic;

/// The executable banking PIM (same shape as the integration-test
/// fixture): `Bank` with two `Account` references, `transfer` and
/// `getBalance`.
pub fn executable_banking_pim() -> Model {
    let mut model = ModelBuilder::new("bank")
        .class("Account", |c| {
            c.attribute("number", Primitive::Str)?.attribute("balance", Primitive::Int)
        })
        .expect("valid model")
        .build();
    let account = model.find_class("Account").expect("just added");
    let root = model.root();
    let bank = model.add_class(root, "Bank").expect("valid");
    model.add_attribute(bank, "a1", TypeRef::Element(account)).expect("valid");
    model.add_attribute(bank, "a2", TypeRef::Element(account)).expect("valid");
    let transfer = model.add_operation(bank, "transfer").expect("valid");
    for p in ["from", "to"] {
        model.add_parameter(transfer, p, Primitive::Str.into()).expect("valid");
    }
    model.add_parameter(transfer, "amount", Primitive::Int.into()).expect("valid");
    model.set_return_type(transfer, Primitive::Bool.into()).expect("valid");
    let get_balance = model.add_operation(bank, "getBalance").expect("valid");
    model.add_parameter(get_balance, "number", Primitive::Str.into()).expect("valid");
    model.set_return_type(get_balance, Primitive::Int.into()).expect("valid");
    model
}

fn select_account(var: &str, number_param: &str) -> Vec<Stmt> {
    vec![
        Stmt::local(var, IrType::Object("Account".into()), Expr::this_field("a1")),
        Stmt::If {
            cond: Expr::binary(
                IrBinOp::Ne,
                Expr::Field { recv: Box::new(Expr::var(var)), name: "number".into() },
                Expr::var(number_param),
            ),
            then_block: Block::of(vec![Stmt::set_var(var, Expr::this_field("a2"))]),
            else_block: None,
        },
    ]
}

/// Functional bodies for [`executable_banking_pim`].
pub fn banking_bodies() -> BodyProvider {
    let field = |obj: &str, name: &str| Expr::Field {
        recv: Box::new(Expr::var(obj)),
        name: name.into(),
    };
    let mut transfer = Vec::new();
    transfer.extend(select_account("src", "from"));
    transfer.extend(select_account("dst", "to"));
    transfer.extend([
        Stmt::If {
            cond: Expr::binary(IrBinOp::Lt, field("src", "balance"), Expr::var("amount")),
            then_block: Block::of(vec![Stmt::Throw(Expr::str("insufficient funds"))]),
            else_block: None,
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::var("src"), name: "balance".into() },
            value: Expr::binary(IrBinOp::Sub, field("src", "balance"), Expr::var("amount")),
        },
        Stmt::Assign {
            target: LValue::Field { recv: Expr::var("dst"), name: "balance".into() },
            value: Expr::binary(IrBinOp::Add, field("dst", "balance"), Expr::var("amount")),
        },
        Stmt::ret(Expr::bool(true)),
    ]);
    let mut get_balance = select_account("acc", "number");
    get_balance.push(Stmt::ret(field("acc", "balance")));
    BodyProvider::new()
        .provide("Bank::transfer", Block::of(transfer))
        .provide("Bank::getBalance", Block::of(get_balance))
}

/// Standard distribution `Si` for the banking workload.
pub fn dist_si() -> ParamSet {
    ParamSet::new()
        .with("server_class", ParamValue::from("Bank"))
        .with("node", ParamValue::from("server"))
        .with(
            "operations",
            ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]),
        )
}

/// Standard transactions `Si` for the banking workload.
pub fn tx_si() -> ParamSet {
    ParamSet::new().with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
}

/// Standard security `Si` for the banking workload.
pub fn sec_si() -> ParamSet {
    ParamSet::new().with(
        "protected",
        ParamValue::from(vec!["Bank.transfer:teller".to_owned()]),
    )
}

/// Instantiates the banking object graph; returns `(interp, bank)` ready
/// for `transfer` calls (alice logged in, executing on the server node).
pub fn ready_interp(program: comet_codegen::Program) -> (comet_interp::Interp, comet_interp::Value) {
    use comet_interp::{Interp, Value};
    let mut interp = Interp::new(program);
    interp.add_node("client");
    interp.add_node("server");
    interp.add_principal("alice", &["teller"]);
    let bank = interp.create_on("Bank", "server").expect("Bank generated");
    let a1 = interp.create_on("Account", "server").expect("Account generated");
    let a2 = interp.create_on("Account", "server").expect("Account generated");
    interp.set_field(&a1, "number", Value::from("A-1")).expect("field");
    interp.set_field(&a1, "balance", Value::Int(1_000_000_000)).expect("field");
    interp.set_field(&a2, "number", Value::from("A-2")).expect("field");
    interp.set_field(&a2, "balance", Value::Int(0)).expect("field");
    interp.set_field(&bank, "a1", a1).expect("field");
    interp.set_field(&bank, "a2", a2).expect("field");
    if interp.program().find_method("Bank", "registerRemote").is_some() {
        interp.call(bank.clone(), "registerRemote", vec![]).expect("registration");
    }
    interp.middleware_mut().bus.set_current_node("server").expect("node exists");
    interp.login("alice").expect("principal exists");
    interp.set_step_budget(u64::MAX);
    (interp, bank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_run() {
        use comet_interp::Value;
        let program = comet_codegen::FunctionalGenerator::new()
            .generate(&executable_banking_pim(), &banking_bodies());
        let (mut interp, bank) = ready_interp(program);
        let ok = interp
            .call(
                bank,
                "transfer",
                vec![Value::from("A-1"), Value::from("A-2"), Value::Int(5)],
            )
            .unwrap();
        assert_eq!(ok, Value::Bool(true));
    }
}
