//! Emits `BENCH_interaction.json`: the cost profile of critical-pair
//! interaction analysis and of the serve-time admission gate it feeds.
//!
//! Two measurements:
//!
//! * **matrix build** — full analysis of the 7 standard serving
//!   bindings (21 cells, each backed by the weave-both-orders
//!   differential oracle unless a static detector vetoes it first).
//!   This is the once-per-run cost `BankingFactory::with_steps` pays.
//! * **admission lookup** — the per-request cost of consulting the
//!   matrix for one `(applied, requested)` pair, the gate's hot path.
//!   Reported in nanoseconds per verdict lookup.
//!
//! Usage: `cargo run --release -p comet-bench --bin
//! bench_interaction_json [output-path]` (default
//! `BENCH_interaction.json` in the working directory).

use comet::serve_interaction_matrix;
use std::hint::black_box;
use std::time::Instant;

const WARMUP: usize = 1;
const SAMPLES: usize = 5;
const LOOKUPS: usize = 100_000;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_interaction.json".to_owned());
    let steps: Vec<String> =
        comet_concerns::standard_pairs().iter().map(|p| p.concern().to_owned()).collect();

    let matrix = serve_interaction_matrix(&steps).expect("standard bindings analyse cleanly");
    let cells = matrix.concerns().len() * (matrix.concerns().len() - 1) / 2;
    let conflicts = matrix.conflicts().len();
    let order_sensitive = matrix.required_orders().len();

    eprintln!("timing matrix build over {} concerns ({cells} cells) ...", steps.len());
    let build_secs = median_secs(|| {
        black_box(serve_interaction_matrix(black_box(&steps)).expect("valid bindings"));
    });

    eprintln!("timing admission verdict lookups ...");
    let names = matrix.concerns().to_vec();
    let lookup_secs = median_secs(|| {
        let mut hits = 0usize;
        for i in 0..LOOKUPS {
            let a = &names[i % names.len()];
            let b = &names[(i / names.len() + 1 + i) % names.len()];
            if black_box(matrix.verdict(a, b)).is_some() {
                hits += 1;
            }
        }
        black_box(hits);
    });
    let lookup_ns = lookup_secs / LOOKUPS as f64 * 1e9;

    let json = format!(
        "{{\n  \"experiment\": \"pr8_interaction_admission\",\n  \"matrix\": {{\"concerns\": {}, \"cells\": {cells}, \"conflicts\": {conflicts}, \"order_sensitive\": {order_sensitive}}},\n  \"build_median_secs\": {build_secs:.6},\n  \"lookup_median_ns\": {lookup_ns:.1},\n  \"lookups_per_sample\": {LOOKUPS}\n}}\n",
        steps.len(),
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path} (build {build_secs:.3}s, lookup {lookup_ns:.0}ns)");
}
