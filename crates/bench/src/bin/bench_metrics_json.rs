//! Emits `BENCH_metrics.json`: the overhead budget of the serve-time
//! telemetry pipeline.
//!
//! Two comparisons over one fixed banking workload:
//!
//! 1. **Registry overhead** — the same untraced run with metrics off vs
//!    metrics on (per-request histogram observations, counters, SLO
//!    window cells). The enabled path must stay within 1.05× of the
//!    disabled path, which the bin asserts.
//! 2. **Sampling dividend** — a fully traced run vs the same run with
//!    `PerTenantHash{rate: 1/16}` sampling, which discards most tenants'
//!    span trees at the end of each service batch.
//!
//! Usage: `cargo run --release -p comet-bench --bin bench_metrics_json
//! [output-path]` (default `BENCH_metrics.json` in the working
//! directory).

use comet::run_banking_serve_cfg;
use comet_serve::{RunConfig, SampleMode, SloPolicy, WorkloadPlan};
use std::hint::black_box;
use std::time::Instant;

const SHARDS: usize = 4;
const THREADS: usize = 8;
const WARMUP: usize = 1;
const SAMPLES: usize = 5;
const OVERHEAD_BUDGET: f64 = 1.05;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// The workload: enough tenants to spread over the shards, a mixed
/// request stream so every histogram family fills.
fn bench_plan() -> WorkloadPlan {
    let mut plan = WorkloadPlan::new(7);
    plan.tenants = 16;
    plan.clients = 2;
    plan.requests = 32;
    plan.mix.apply = 0.25;
    plan.mix.generate = 0.40;
    plan.mix.query = 0.20;
    plan.mix.snapshot = 0.10;
    plan.mix.undo = 0.05;
    plan
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_metrics.json".to_owned());
    let plan = bench_plan();
    let mut slo_plan = bench_plan();
    slo_plan.slo = Some(SloPolicy::default());
    let mut sampled_plan = bench_plan();
    sampled_plan.sampling = SampleMode::PerTenantHash { rate: 1.0 / 16.0 };
    let pool = rayon::ThreadPoolBuilder::new().num_threads(THREADS).build().expect("pool builds");

    // Determinism gate: the metrics snapshot must not depend on the
    // shard count.
    let cfg_metrics = RunConfig { traced: false, metrics: true };
    let baseline = pool
        .install(|| run_banking_serve_cfg(&slo_plan, 1, None, &cfg_metrics))
        .expect("valid plan");
    let base_prom = baseline.metrics.as_ref().expect("metrics on").to_prometheus();
    for shards in [2usize, 4, 8] {
        let other = pool
            .install(|| run_banking_serve_cfg(&slo_plan, shards, None, &cfg_metrics))
            .expect("valid plan");
        assert_eq!(
            base_prom,
            other.metrics.as_ref().expect("metrics on").to_prometheus(),
            "metrics snapshot diverged at {shards} shards"
        );
        assert_eq!(baseline.report.slo, other.report.slo, "verdicts diverged at {shards} shards");
    }

    let time = |plan: &WorkloadPlan, cfg: RunConfig| {
        median_secs(|| {
            black_box(
                pool.install(|| run_banking_serve_cfg(black_box(plan), SHARDS, None, &cfg))
                    .expect("valid plan"),
            );
        })
    };

    eprintln!("timing metrics-off baseline ...");
    let off = time(&plan, RunConfig { traced: false, metrics: false });
    eprintln!("timing metrics-on run ...");
    let on = time(&slo_plan, RunConfig { traced: false, metrics: true });
    eprintln!("timing full-trace run ...");
    let traced_full = time(&plan, RunConfig { traced: true, metrics: false });
    eprintln!("timing sampled-trace run (rate 1/16) ...");
    let traced_sampled = time(&sampled_plan, RunConfig { traced: true, metrics: false });

    let overhead = on / off;
    let sampling_ratio = traced_sampled / traced_full;
    let json = format!(
        "{{\n  \"experiment\": \"pr9_metrics_overhead\",\n  \"workload\": {{\"tenants\": {}, \"clients\": {}, \"requests_per_client\": {}, \"seed\": {}, \"shards\": {SHARDS}, \"threads\": {THREADS}}},\n  \"metrics_off_secs\": {off:.6},\n  \"metrics_on_secs\": {on:.6},\n  \"metrics_overhead\": {overhead:.4},\n  \"overhead_budget\": {OVERHEAD_BUDGET},\n  \"trace_full_secs\": {traced_full:.6},\n  \"trace_sampled_secs\": {traced_sampled:.6},\n  \"sampled_vs_full\": {sampling_ratio:.4}\n}}\n",
        plan.tenants, plan.clients, plan.requests, plan.seed,
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    assert!(
        overhead <= OVERHEAD_BUDGET,
        "metrics overhead {overhead:.4}x exceeds the {OVERHEAD_BUDGET}x budget"
    );
    eprintln!(
        "wrote {out_path} (metrics overhead {overhead:.3}x, sampled trace {sampling_ratio:.3}x of full)"
    );
}
