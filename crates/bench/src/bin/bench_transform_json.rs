//! Emits `BENCH_transform.json`: machine-readable numbers for the
//! transformation engine's two rollback strategies — "before" is the
//! retained clone-and-restore engine
//! ([`ConcreteTransformation::apply_cloned`]), "after" the
//! delta-journaled engine ([`ConcreteTransformation::apply`]) — across
//! synthetic model sizes. The journal pays O(delta) on failure where
//! the clone engine pays O(model), so the gap widens with model size.
//!
//! Usage: `cargo run --release -p comet-bench --bin bench_transform_json
//! [output-path]` (default `BENCH_transform.json` in the working
//! directory).

use comet_bench::synthetic;
use comet_model::Model;
use comet_transform::{
    specialize, ConcreteTransformation, ParamSet, TransformError, TransformationBuilder,
};
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 4] = [10, 50, 100, 200];
const ATTRS: usize = 4;
const OPS: usize = 4;
const WARMUP: usize = 2;
const SAMPLES: usize = 9;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// A constant-size body: one class, one operation, one stereotype. The
/// delta does not grow with the model, isolating rollback/report cost.
fn small_delta(model: &mut Model) -> Result<(), TransformError> {
    let root = model.root();
    let audit = model.add_class(root, "AuditLog")?;
    model.add_operation(audit, "append")?;
    let c0 = model.find_class("C0").expect("synthetic class");
    model.apply_stereotype(c0, "Audited")?;
    Ok(())
}

fn failing_cmt() -> ConcreteTransformation {
    let gmt = TransformationBuilder::new("bench-fail", "bench")
        .body(|model, _| {
            small_delta(model)?;
            Err(TransformError::Custom("induced rollback".into()))
        })
        .build();
    specialize(gmt, ParamSet::new()).expect("empty schema validates")
}

fn succeeding_cmt() -> ConcreteTransformation {
    let gmt = TransformationBuilder::new("bench-ok", "bench").body(|model, _| small_delta(model));
    specialize(gmt.build(), ParamSet::new()).expect("empty schema validates")
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_transform.json".to_owned());
    let failing = failing_cmt();
    let ok = succeeding_cmt();

    // Sanity: both engines agree on success report, model, and on
    // failure restoring the pristine input.
    {
        let pristine = synthetic(20, ATTRS, OPS);
        let mut a = pristine.clone();
        let mut b = pristine.clone();
        let ra = ok.apply(&mut a).expect("applies");
        let rb = ok.apply_cloned(&mut b).expect("applies");
        assert_eq!(ra, rb, "journal and sweep reports diverged");
        assert_eq!(a, b, "journal and clone final models diverged");
        let mut f = pristine.clone();
        assert!(failing.apply(&mut f).is_err());
        assert_eq!(f, pristine, "journal rollback left residue");
    }

    let mut rollback_rows = Vec::new();
    let mut success_rows = Vec::new();
    let mut speedup_at_100 = 0.0f64;
    for classes in SIZES {
        let mut model = synthetic(classes, ATTRS, OPS);
        let elements = model.iter().count();

        // Failure path: body succeeds, then errors — the engine must
        // restore the model. `apply` replays the journal (O(delta));
        // `apply_cloned` restores a full upfront clone (O(model)).
        eprintln!("[{classes} classes] timing clone rollback (before) ...");
        let before = median_secs(|| {
            let _ = black_box(failing.apply_cloned(black_box(&mut model)));
        });
        eprintln!("[{classes} classes] timing journal rollback (after) ...");
        let after = median_secs(|| {
            let _ = black_box(failing.apply(black_box(&mut model)));
        });
        let speedup = before / after;
        if classes == 100 {
            speedup_at_100 = speedup;
        }
        rollback_rows.push(format!(
            "    {{\"classes\": {classes}, \"elements\": {elements}, \"before_median_secs\": {before:.9}, \"after_median_secs\": {after:.9}, \"speedup\": {speedup:.3}}}"
        ));

        // Success path: each run starts from a fresh clone (identical
        // overhead in both arms); the arms differ in report derivation —
        // journal summary versus before/after full-model sweep.
        eprintln!("[{classes} classes] timing sweep-report apply (before) ...");
        let s_before = median_secs(|| {
            let mut m = model.clone();
            black_box(ok.apply_cloned(black_box(&mut m)).expect("applies"));
        });
        eprintln!("[{classes} classes] timing journal-report apply (after) ...");
        let s_after = median_secs(|| {
            let mut m = model.clone();
            black_box(ok.apply(black_box(&mut m)).expect("applies"));
        });
        success_rows.push(format!(
            "    {{\"classes\": {classes}, \"elements\": {elements}, \"before_median_secs\": {s_before:.9}, \"after_median_secs\": {s_after:.9}, \"speedup\": {:.3}}}",
            s_before / s_after
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"e11_transform_rollback\",\n  \"workload\": {{\"sizes\": [10, 50, 100, 200], \"attrs_per_class\": {ATTRS}, \"ops_per_class\": {OPS}, \"body\": \"constant 3-element delta, then induced failure\"}},\n  \"before\": \"apply_cloned (upfront clone, restore on failure, before/after sweep report)\",\n  \"after\": \"apply (change journal: inverse-op rollback, journal-derived report)\",\n  \"rollback\": [\n{}\n  ],\n  \"successful_apply\": [\n{}\n  ]\n}}\n",
        rollback_rows.join(",\n"),
        success_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path} (rollback speedup at 100 classes: {speedup_at_100:.2}x)");
    assert!(
        speedup_at_100 > 1.0,
        "journal rollback must beat clone rollback on the 100-class model"
    );
}
