//! Emits `BENCH_codegen.json`: the generator-factory numbers.
//!
//! Workload: the E10 100-class / 6-method program woven with 8 aspects,
//! paired with a 100-class synthetic model. For every registered
//! backend the bench times (a) the **cold** path — a fresh [`GenCache`]
//! rendering the artifact, which pays the canonical-XMI content hash
//! plus the backend render, exactly what a tenant's first `Generate`
//! pays — and (b) the **hit** path — the same render repeated at an
//! unchanged model, which the revision memo and the content-addressed
//! entry turn into one map lookup plus an artifact clone. Hits are
//! asserted byte-identical to their cold renders before anything is
//! timed, and the run gates on `hit ≥ 50× cold` for every backend.
//!
//! A serve steady-state sweep then runs a backend-weighted `Generate`
//! mix over the banking engine and asserts the report and trace stay
//! byte-identical across shard counts with `gen.cache.hit` live in the
//! trace counters.
//!
//! Usage: `cargo run --release -p comet-bench --bin bench_codegen_json
//! [output-path]` (default `BENCH_codegen.json` in the working
//! directory).

use comet::run_banking_serve;
use comet_aop::Weaver;
use comet_bench::{weaver_aspects, weaver_program};
use comet_codegen::BodyProvider;
use comet_gen::{Backend, GenCache, GenInput, GeneratorFactory};
use comet_serve::WorkloadPlan;
use std::hint::black_box;
use std::time::Instant;

const CLASSES: usize = 100;
const METHODS: usize = 6;
const ASPECTS: usize = 8;
const WARMUP: usize = 2;
const SAMPLES: usize = 9;
const SHARDS: [usize; 3] = [1, 2, 4];
const HIT_GATE: f64 = 50.0;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_codegen.json".to_owned());
    let model = comet_model::sample::synthetic(CLASSES, 2, METHODS);
    let bodies = BodyProvider::default();
    let functional = weaver_program(CLASSES, METHODS);
    let woven = Weaver::new(weaver_aspects(ASPECTS)).weave(&functional).expect("weaves").program;
    let concerns: Vec<String> =
        ["distribution", "transactions", "security"].map(str::to_owned).to_vec();
    let input = GenInput {
        model: &model,
        functional: &functional,
        woven: &woven,
        concerns: &concerns,
        bodies: &bodies,
    };
    let factory = GeneratorFactory::with_standard_backends();

    let mut backend_rows = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    for backend in Backend::ALL {
        let generator = factory.get(backend).expect("standard backend registered");

        // Sanity: the hit is byte-identical to the cold render.
        let mut probe = GenCache::new();
        let (cold_artifact, miss) = probe.render(generator, &input);
        assert!(!miss, "fresh cache must miss");
        let (warm_artifact, hit) = probe.render(generator, &input);
        assert!(hit, "repeat render must hit");
        assert_eq!(cold_artifact, warm_artifact, "{backend}: hit diverged from cold render");

        eprintln!("timing {backend} cold render (content hash + render) ...");
        let cold = median_secs(|| {
            let mut cache = GenCache::new();
            let (artifact, was_hit) = cache.render(generator, black_box(&input));
            assert!(!was_hit);
            black_box(artifact);
        });

        eprintln!("timing {backend} cache hit ...");
        let mut cache = GenCache::new();
        cache.render(generator, &input);
        let hit = median_secs(|| {
            let (artifact, was_hit) = cache.render(generator, black_box(&input));
            assert!(was_hit);
            black_box(artifact);
        });

        let ratio = cold / hit;
        worst_ratio = worst_ratio.min(ratio);
        eprintln!("  {backend}: cold {cold:.6}s, hit {hit:.6}s, ratio {ratio:.1}x");
        backend_rows.push(format!(
            "    {{\"backend\": \"{backend}\", \"artifact_bytes\": {}, \"cold_median_secs\": \
             {cold:.6}, \"hit_median_secs\": {hit:.6}, \"hit_speedup\": {ratio:.3}}}",
            cold_artifact.len()
        ));
    }

    // Serve steady-state sweep: backend-weighted Generate traffic,
    // reports byte-identical across shard counts, gen cache observable.
    let mut plan = WorkloadPlan::new(7);
    plan.mix.generate = 2.0;
    plan.mix.generate_backends = Backend::ALL.iter().map(|b| (b.id().to_owned(), 1.0)).collect();
    let baseline = run_banking_serve(&plan, SHARDS[0], None, true).expect("valid plan");
    for shards in SHARDS {
        let outcome = run_banking_serve(&plan, shards, None, true).expect("valid plan");
        assert_eq!(baseline.report, outcome.report, "report diverged at {shards} shards");
        assert_eq!(baseline.trace, outcome.trace, "trace diverged at {shards} shards");
    }
    let counters = baseline.trace.as_ref().expect("traced run").counters.clone();
    let gen_hits = counters.get("gen.cache.hit").copied().unwrap_or(0);
    let gen_misses = counters.get("gen.cache.miss").copied().unwrap_or(0);
    assert!(gen_misses > 0, "serve sweep never generated");
    assert!(gen_hits > 0, "serve steady state produced no gen cache hits");

    let mut serve_medians = Vec::new();
    for shards in SHARDS {
        eprintln!("timing serve steady state at {shards} shard(s) ...");
        let secs = median_secs(|| {
            black_box(run_banking_serve(black_box(&plan), shards, None, false).expect("valid"));
        });
        serve_medians.push(format!("    {{\"shards\": {shards}, \"median_secs\": {secs:.6}}}"));
    }

    let json = format!(
        "{{\n  \"experiment\": \"e14_codegen_backends\",\n  \"workload\": {{\"classes\": \
         {CLASSES}, \"methods_per_class\": {METHODS}, \"aspects\": {ASPECTS}}},\n  \"backends\": \
         [\n{}\n  ],\n  \"worst_hit_speedup\": {worst_ratio:.3},\n  \"serve_steady_state\": \
         {{\n    \"plan\": \"WorkloadPlan(7), generate weight 2.0, all backends weighted \
         1.0\",\n    \
         \"gen_cache_counters\": {{\"hit\": {gen_hits}, \"miss\": {gen_misses}}},\n    \
         \"report_identical_across_shards\": true,\n    \"shard_sweep\": [\n{}\n    ]\n  }}\n}}\n",
        backend_rows.join(",\n"),
        serve_medians.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path} (worst hit speedup {worst_ratio:.1}x)");
    assert!(
        worst_ratio >= HIT_GATE,
        "cache-hit speedup {worst_ratio:.1}x below the {HIT_GATE}x target"
    );
}
