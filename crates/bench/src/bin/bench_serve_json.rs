//! Emits `BENCH_serve.json`: the shard-scaling sweep of the
//! multi-tenant serving core.
//!
//! One fixed apply-heavy workload (every tenant walks the full
//! refinement workflow, generates code, and answers queries) is run at
//! 1, 2, 4, and 8 shards on an 8-thread pool. Shards execute in real
//! parallelism, so wall-clock time should fall as shards grow — while
//! the `ServeReport` stays byte-identical at every shard count, which
//! the sweep asserts before timing anything.
//!
//! Usage: `cargo run --release -p comet-bench --bin bench_serve_json
//! [output-path]` (default `BENCH_serve.json` in the working
//! directory).

use comet::run_banking_serve;
use comet_serve::WorkloadPlan;
use std::hint::black_box;
use std::time::Instant;

const SHARDS: [usize; 4] = [1, 2, 4, 8];
const THREADS: usize = 8;
const WARMUP: usize = 1;
const SAMPLES: usize = 5;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// The sweep workload: enough tenants to spread over 8 shards, an
/// apply/generate-heavy mix so each request does real lifecycle work.
fn sweep_plan() -> WorkloadPlan {
    let mut plan = WorkloadPlan::new(7);
    plan.tenants = 16;
    plan.clients = 2;
    plan.requests = 32;
    plan.mix.apply = 0.25;
    plan.mix.generate = 0.40;
    plan.mix.query = 0.20;
    plan.mix.snapshot = 0.10;
    plan.mix.undo = 0.05;
    plan
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let plan = sweep_plan();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(THREADS).build().expect("pool builds");

    // Determinism gate: the report must not depend on the shard count.
    let baseline =
        pool.install(|| run_banking_serve(&plan, 1, None, false)).expect("valid plan").report;
    for shards in SHARDS {
        let report = pool
            .install(|| run_banking_serve(&plan, shards, None, false))
            .expect("valid plan")
            .report;
        assert_eq!(baseline, report, "report diverged at {shards} shards");
    }

    let mut medians = Vec::new();
    for shards in SHARDS {
        eprintln!("timing serve at {shards} shard(s) ...");
        let secs = median_secs(|| {
            black_box(
                pool.install(|| run_banking_serve(black_box(&plan), shards, None, false))
                    .expect("valid plan"),
            );
        });
        medians.push(secs);
    }

    let shard_lines: Vec<String> = SHARDS
        .iter()
        .zip(&medians)
        .map(|(shards, secs)| {
            format!(
                "    {{\"shards\": {shards}, \"median_secs\": {secs:.6}, \"speedup_vs_1\": {:.3}}}",
                medians[0] / secs
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"experiment\": \"pr5_serve_shard_sweep\",\n  \"workload\": {{\"tenants\": {}, \"clients\": {}, \"requests_per_client\": {}, \"seed\": {}, \"threads\": {THREADS}, \"host_cores\": {cores}}},\n  \"report\": {{\"issued\": {}, \"completed\": {}, \"ok\": {}, \"p50_us\": {}, \"p99_us\": {}}},\n  \"sweep\": [\n{}\n  ],\n  \"speedup_4_shards\": {:.3}\n}}\n",
        plan.tenants,
        plan.clients,
        plan.requests,
        plan.seed,
        baseline.issued,
        baseline.completed,
        baseline.ok,
        baseline.p50_us,
        baseline.p99_us,
        shard_lines.join(",\n"),
        medians[0] / medians[2],
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path} (1→4 shard speedup {:.2}x)", medians[0] / medians[2]);
}
