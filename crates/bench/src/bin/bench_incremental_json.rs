//! Emits `BENCH_incremental.json`: the dirty-set re-weave numbers.
//!
//! Workload: the E10 100-class / 8-aspect program. "Before" is a full
//! [`Weaver::weave`] after a one-element edit (one statement appended
//! to one method of one class); "after" is
//! [`IncrementalWeaver::weave_at`] re-weaving only the dirty class and
//! splicing the other 99 from cache. Both paths are asserted
//! byte-identical before anything is timed. A serve steady-state sweep
//! then runs the default multi-tenant workload with tracing and reports
//! the `weave.incremental.*` counters, asserting the report stays
//! byte-identical across shard counts with the cache on the hot path.
//!
//! Usage: `cargo run --release -p comet-bench --bin
//! bench_incremental_json [output-path]` (default
//! `BENCH_incremental.json` in the working directory).

use comet::run_banking_serve;
use comet_aop::{IncrementalWeaver, Weaver};
use comet_bench::{weaver_aspects, weaver_program};
use comet_codegen::{Expr, Program, Stmt};
use comet_serve::WorkloadPlan;
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::Instant;

const CLASSES: usize = 100;
const METHODS: usize = 6;
const ASPECTS: usize = 8;
const WARMUP: usize = 2;
const SAMPLES: usize = 9;
const SHARDS: [usize; 3] = [1, 2, 4];

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// The one-element edit: one extra statement in `C0.m0`.
fn edited(base: &Program) -> Program {
    let mut p = base.clone();
    p.classes[0].methods[0]
        .body
        .stmts
        .push(Stmt::Expr(Expr::intrinsic("log.emit", vec![Expr::str("info"), Expr::str("edit")])));
    p
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_incremental.json".to_owned());
    let base = weaver_program(CLASSES, METHODS);
    let edit = edited(&base);
    let weaver = Weaver::new(weaver_aspects(ASPECTS));
    let dirty: BTreeSet<String> = [base.classes[0].name.clone()].into();

    // Sanity: the spliced result is byte-identical to the full weave,
    // and the dirty set really confines the re-weave to one class.
    let oracle = weaver.weave(&edit).expect("weaves");
    let mut iw = IncrementalWeaver::new(weaver.clone());
    iw.weave_at(0, &base, None).expect("weaves");
    let (got, stats) = iw.weave_at(1, &edit, Some(&dirty)).expect("weaves");
    assert_eq!(got.program, oracle.program, "incremental weave diverged");
    assert_eq!(got.trace, oracle.trace, "incremental trace diverged");
    assert!(stats.hit, "edit re-weave missed the cache");
    assert_eq!(stats.rewoven, 1, "one-element edit re-wove {} classes", stats.rewoven);

    eprintln!("timing full re-weave after 1-element edit (before) ...");
    let before = median_secs(|| {
        black_box(weaver.weave(black_box(&edit)).expect("weaves"));
    });

    // Steady-state incremental re-weave: alternate between the two
    // program versions so every timed call re-weaves exactly the one
    // dirty class and splices the other 99 from the previous result.
    eprintln!("timing incremental re-weave of the dirty class (after) ...");
    let mut iw = IncrementalWeaver::new(weaver.clone());
    iw.weave_at(0, &base, None).expect("weaves");
    let mut revision = 0u64;
    let after = median_secs(|| {
        revision += 1;
        let program = if revision.is_multiple_of(2) { &base } else { &edit };
        let (_, stats) =
            black_box(iw.weave_at(revision, black_box(program), Some(&dirty)).expect("weaves"));
        assert_eq!(stats.rewoven, 1);
    });
    let speedup = before / after;

    // Full-hit path: repeat at an unchanged revision (the serve
    // steady-state case — `Generate` with no model change in between).
    // Prime once so the cache holds `base` at the probed revision.
    eprintln!("timing unchanged-revision full hit ...");
    revision += 1;
    iw.weave_at(revision, &base, Some(&dirty)).expect("weaves");
    let hit = median_secs(|| {
        let (_, stats) =
            black_box(iw.weave_at(revision, black_box(&base), Some(&dirty)).expect("weaves"));
        assert_eq!(stats.rewoven, 0);
    });

    // Serve steady-state sweep: default workload, traced, cache on the
    // hot path. Reports must stay byte-identical across shard counts.
    let plan = WorkloadPlan::new(7);
    let baseline = run_banking_serve(&plan, SHARDS[0], None, true).expect("valid plan");
    for shards in SHARDS {
        let outcome = run_banking_serve(&plan, shards, None, true).expect("valid plan");
        assert_eq!(baseline.report, outcome.report, "report diverged at {shards} shards");
        assert_eq!(baseline.trace, outcome.trace, "trace diverged at {shards} shards");
    }
    let counters = baseline.trace.as_ref().expect("traced run").counters.clone();
    let hits = counters.get("weave.incremental.hit").copied().unwrap_or(0);
    let misses = counters.get("weave.incremental.miss").copied().unwrap_or(0);
    let rewoven = counters.get("weave.incremental.rewoven").copied().unwrap_or(0);
    let total = counters.get("weave.incremental.total").copied().unwrap_or(0);
    assert!(hits > 0, "serve steady state produced no weave cache hits");

    let mut serve_medians = Vec::new();
    for shards in SHARDS {
        eprintln!("timing serve steady state at {shards} shard(s) ...");
        let secs = median_secs(|| {
            black_box(run_banking_serve(black_box(&plan), shards, None, false).expect("valid"));
        });
        serve_medians.push(format!("    {{\"shards\": {shards}, \"median_secs\": {secs:.6}}}"));
    }

    let json = format!(
        "{{\n  \"experiment\": \"e13_incremental_reweave\",\n  \"workload\": {{\"classes\": {CLASSES}, \"methods_per_class\": {METHODS}, \"aspects\": {ASPECTS}, \"edit\": \"one statement appended to one method\"}},\n  \"before\": {{\"impl\": \"full weave after 1-element edit\", \"median_secs\": {before:.6}}},\n  \"after\": {{\"impl\": \"incremental re-weave (1 dirty class of {CLASSES})\", \"median_secs\": {after:.6}}},\n  \"speedup\": {speedup:.3},\n  \"full_hit\": {{\"impl\": \"unchanged revision, cached result returned\", \"median_secs\": {hit:.6}, \"speedup_vs_before\": {:.3}}},\n  \"serve_steady_state\": {{\n    \"plan\": \"default WorkloadPlan(7)\",\n    \"weave_counters\": {{\"hit\": {hits}, \"miss\": {misses}, \"rewoven\": {rewoven}, \"total\": {total}}},\n    \"report_identical_across_shards\": true,\n    \"shard_sweep\": [\n{}\n    ]\n  }}\n}}\n",
        before / hit,
        serve_medians.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path} (speedup {speedup:.2}x)");
    assert!(speedup >= 5.0, "incremental re-weave speedup {speedup:.2}x below the 5x target");
}
