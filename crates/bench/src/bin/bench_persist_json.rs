//! Emits `BENCH_persist.json`: the cost of durability.
//!
//! Two measurements over the same growing model chain:
//!
//! 1. **Commit throughput** — commits/second into the in-memory
//!    `Repository` versus the durable backend (segment append + fsync,
//!    WAL append + fsync per commit). The ratio is the price of the
//!    write-ahead guarantee.
//! 2. **Recovery time vs journal length** — wall-clock time for
//!    `DurableRepository::open` (full WAL replay + segment-store index
//!    rebuild with per-frame hash verification) as the journal grows.
//!    Replay is linear in the journal, which the sweep makes visible.
//!
//! Usage: `cargo run --release -p comet-bench --bin bench_persist_json
//! [output-path]` (default `BENCH_persist.json` in the working
//! directory).

use comet_model::Model;
use comet_repo::{DurableRepository, Repository};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const COMMITS: usize = 200;
const RECOVERY_SWEEP: [usize; 3] = [50, 200, 800];
const WARMUP: usize = 1;
const SAMPLES: usize = 5;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// A chain of `n` model versions, each adding one class to the last —
/// every commit carries a distinct snapshot, so the segment store's
/// dedupe never short-circuits the write path being measured.
fn version_chain(n: usize) -> Vec<Model> {
    let mut versions = Vec::with_capacity(n);
    let mut m = Model::new("persist-bench");
    for i in 0..n {
        let root = m.root();
        m.add_class(root, &format!("C{i}")).expect("unique class name");
        versions.push(m.clone());
    }
    versions
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("comet-bench-persist-{}-{tag}", std::process::id()))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_persist.json".to_owned());
    let versions = version_chain(COMMITS);

    let memory_secs = median_secs(|| {
        let mut repo = Repository::new("persist-bench");
        for (i, v) in versions.iter().enumerate() {
            black_box(repo.commit(v, &format!("v{i}"), None).expect("commits"));
        }
    });
    let durable_secs = median_secs(|| {
        let dir = scratch("commit");
        let _ = std::fs::remove_dir_all(&dir);
        let mut repo = DurableRepository::create(&dir, "persist-bench").expect("creates");
        for (i, v) in versions.iter().enumerate() {
            black_box(repo.commit(v, &format!("v{i}"), None).expect("commits"));
        }
    });
    let _ = std::fs::remove_dir_all(scratch("commit"));

    let mut recovery_lines = Vec::new();
    for journal_commits in RECOVERY_SWEEP {
        eprintln!("timing recovery at {journal_commits} journalled commits ...");
        let dir = scratch(&format!("recover-{journal_commits}"));
        let _ = std::fs::remove_dir_all(&dir);
        let chain = version_chain(journal_commits);
        {
            let mut repo = DurableRepository::create(&dir, "persist-bench").expect("creates");
            for (i, v) in chain.iter().enumerate() {
                repo.commit(v, &format!("v{i}"), None).expect("commits");
            }
        }
        let secs = median_secs(|| {
            let (repo, report) = DurableRepository::open(black_box(&dir)).expect("opens");
            assert!(report.clean(), "bench journal must replay cleanly");
            black_box(repo);
        });
        recovery_lines.push(format!(
            "    {{\"commits\": {journal_commits}, \"median_secs\": {secs:.6}, \
             \"replays_per_sec\": {:.1}}}",
            journal_commits as f64 / secs
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let json = format!(
        "{{\n  \"experiment\": \"pr7_persistence\",\n  \"commit_throughput\": {{\"commits\": \
         {COMMITS}, \"memory_secs\": {memory_secs:.6}, \"durable_secs\": {durable_secs:.6}, \
         \"memory_commits_per_sec\": {:.1}, \"durable_commits_per_sec\": {:.1}, \
         \"durable_overhead_x\": {:.3}}},\n  \"recovery\": [\n{}\n  ]\n}}\n",
        COMMITS as f64 / memory_secs,
        COMMITS as f64 / durable_secs,
        durable_secs / memory_secs,
        recovery_lines.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path} (durable overhead {:.2}x)", durable_secs / memory_secs);
}
