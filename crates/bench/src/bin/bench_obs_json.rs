//! Emits `BENCH_obs.json`: the cost of the observability layer on the
//! woven banking workload.
//!
//! Four measurements over the same fault-free workload (the interpreter
//! woven with {distribution, faulttolerance, transactions}):
//! * **plain** — the workload as the seed ran it: a disabled collector
//!   attached, no caller-side tracing (the baseline every other row is
//!   judged against);
//! * **disabled** — the fully instrumented driver (per-call span guards
//!   included) with a disabled collector: the zero-cost-when-disabled
//!   claim, expected within noise of `plain`;
//! * **enabled** — the same driver with an enabled collector recording
//!   spans, events, and intrinsic counters;
//! * **exporting** — `enabled` plus serializing the trace to Chrome
//!   trace-event JSON every run.
//!
//! Usage: `cargo run --release -p comet-bench --bin bench_obs_json
//! [output-path]` (default `BENCH_obs.json` in the working directory).

use comet::chaos::{banking_bodies, executable_banking_pim, workload, INITIAL_BALANCES};
use comet_aop::{Aspect, Weaver};
use comet_codegen::FunctionalGenerator;
use comet_interp::{Interp, Value};
use comet_middleware::MiddlewareConfig;
use comet_obs::Collector;
use comet_transform::{ParamSet, ParamValue};
use std::hint::black_box;
use std::time::Instant;

const TRANSFERS: u32 = 200;
const WARMUP: usize = 2;
const SAMPLES: usize = 9;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn dist_si() -> ParamSet {
    ParamSet::new()
        .with("server_class", ParamValue::from("Bank"))
        .with("node", ParamValue::from("server"))
        .with("operations", ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]))
}

fn tx_si() -> ParamSet {
    ParamSet::new()
        .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        .with("isolation", ParamValue::from("serializable"))
}

fn ft_si() -> ParamSet {
    ParamSet::new()
        .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        .with("idempotent", ParamValue::from(vec!["Bank.transfer".to_owned()]))
}

/// Builds the woven banking interpreter (dist+ft+tx) and the object
/// handles the workload needs.
fn build_interp() -> (Interp, Value, Value, Value) {
    let mut model = executable_banking_pim();
    let mut aspects: Vec<Aspect> = Vec::new();
    for name in ["distribution", "faulttolerance", "transactions"] {
        let pair = comet_concerns::by_name(name).expect("standard concern");
        let si = match name {
            "distribution" => dist_si(),
            "transactions" => tx_si(),
            _ => ft_si(),
        };
        let (cmt, ca) = pair.specialize(si).expect("valid Si");
        cmt.apply(&mut model).expect("preconditions hold");
        aspects.push(ca);
    }
    let functional = FunctionalGenerator::new().generate(&model, &banking_bodies());
    let woven = Weaver::new(aspects).weave(&functional).expect("weaves").program;
    let mut interp = Interp::with_config(woven, MiddlewareConfig::default());
    interp.add_node("client");
    interp.add_node("server");
    let bank = interp.create_on("Bank", "server").expect("generated");
    let a1 = interp.create_on("Account", "server").expect("generated");
    let a2 = interp.create_on("Account", "server").expect("generated");
    interp.set_field(&a1, "number", Value::from("A-1")).expect("field");
    interp.set_field(&a2, "number", Value::from("A-2")).expect("field");
    interp.set_field(&bank, "a1", a1.clone()).expect("field");
    interp.set_field(&bank, "a2", a2.clone()).expect("field");
    interp.set_field(&a1, "balance", Value::Int(INITIAL_BALANCES.0)).expect("field");
    interp.set_field(&a2, "balance", Value::Int(INITIAL_BALANCES.1)).expect("field");
    interp.call(bank.clone(), "registerRemote", vec![]).expect("distribution applied");
    interp.middleware_mut().bus.set_current_node("client").expect("node exists");
    (interp, bank, a1, a2)
}

/// The seed's workload driver: no tracing calls at all.
fn run_plain(interp: &mut Interp, bank: &Value, a1: &Value, a2: &Value) {
    interp.set_field(a1, "balance", Value::Int(INITIAL_BALANCES.0)).expect("field");
    interp.set_field(a2, "balance", Value::Int(INITIAL_BALANCES.1)).expect("field");
    for i in 0..TRANSFERS {
        let (from, to, amount) = workload(i);
        let args = vec![Value::from(from), Value::from(to), Value::Int(amount)];
        black_box(interp.call(bank.clone(), "transfer", args).expect("fault-free call"));
    }
}

/// The instrumented driver: the chaos harness's per-call `runtime`
/// span, guarded exactly as production code guards it.
fn run_traced(interp: &mut Interp, bank: &Value, a1: &Value, a2: &Value, obs: &Collector) {
    interp.set_field(a1, "balance", Value::Int(INITIAL_BALANCES.0)).expect("field");
    interp.set_field(a2, "balance", Value::Int(INITIAL_BALANCES.1)).expect("field");
    for i in 0..TRANSFERS {
        let (from, to, amount) = workload(i);
        let args = vec![Value::from(from), Value::from(to), Value::Int(amount)];
        let span = obs.is_enabled().then(|| {
            let s = obs.begin_span("runtime", "call:Bank.transfer", interp.middleware().now_us());
            obs.span_attr(s, "call_index", &i.to_string());
            s
        });
        black_box(interp.call(bank.clone(), "transfer", args).expect("fault-free call"));
        if let Some(s) = span {
            obs.span_attr(s, "outcome", "ok");
            obs.end_span(s, interp.middleware().now_us());
        }
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_obs.json".to_owned());

    let (mut interp, bank, a1, a2) = build_interp();

    eprintln!("timing plain workload (no tracing calls) ...");
    let plain = median_secs(|| run_plain(&mut interp, &bank, &a1, &a2));

    eprintln!("timing instrumented driver, collector disabled ...");
    let disabled_obs = Collector::disabled();
    interp.set_collector(disabled_obs.clone());
    let disabled = median_secs(|| run_traced(&mut interp, &bank, &a1, &a2, &disabled_obs));

    eprintln!("timing instrumented driver, collector enabled ...");
    let enabled = median_secs(|| {
        let obs = Collector::enabled();
        interp.set_collector(obs.clone());
        run_traced(&mut interp, &bank, &a1, &a2, &obs);
        black_box(obs.take());
    });

    eprintln!("timing instrumented driver, collector enabled + chrome export ...");
    let mut trace_bytes = 0usize;
    let exporting = median_secs(|| {
        let obs = Collector::enabled();
        interp.set_collector(obs.clone());
        run_traced(&mut interp, &bank, &a1, &a2, &obs);
        let json = obs.take().to_chrome_json();
        trace_bytes = json.len();
        black_box(json);
    });

    let json = format!(
        "{{\n  \"experiment\": \"pr4_observability_overhead\",\n  \"workload\": {{\"transfers\": {TRANSFERS}, \"concerns\": \"distribution+faulttolerance+transactions\"}},\n  \"plain\": {{\"impl\": \"no tracing calls, disabled collector attached\", \"median_secs\": {plain:.6}}},\n  \"disabled\": {{\"impl\": \"instrumented driver, disabled collector (one branch per probe)\", \"median_secs\": {disabled:.6}, \"overhead_ratio\": {:.3}}},\n  \"enabled\": {{\"impl\": \"instrumented driver, enabled collector (spans+events+counters)\", \"median_secs\": {enabled:.6}, \"overhead_ratio\": {:.3}}},\n  \"exporting\": {{\"impl\": \"enabled + chrome trace-event serialization\", \"median_secs\": {exporting:.6}, \"overhead_ratio\": {:.3}, \"trace_bytes\": {trace_bytes}}}\n}}\n",
        disabled / plain,
        enabled / plain,
        exporting / plain,
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!(
        "wrote {out_path} (disabled {:.3}x, enabled {:.3}x, exporting {:.3}x vs plain)",
        disabled / plain,
        enabled / plain,
        exporting / plain
    );
}
