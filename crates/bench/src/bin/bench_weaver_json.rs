//! Emits `BENCH_weaver.json`: machine-readable before/after numbers for
//! the weaver pipeline on the E10 100-class / 8-aspect workload —
//! "before" is the retained sequential full-scan weaver
//! (`Weaver::weave_naive`), "after" the MatchIndex-backed parallel
//! weaver (`Weaver::weave`) — plus a worker-thread sweep.
//!
//! Usage: `cargo run --release -p comet-bench --bin bench_weaver_json
//! [output-path]` (default `BENCH_weaver.json` in the working
//! directory).

use comet_aop::Weaver;
use comet_bench::{synthetic, weaver_aspects, weaver_program};
use comet_model::Model;
use std::hint::black_box;
use std::time::Instant;

const CLASSES: usize = 100;
const METHODS: usize = 6;
const ASPECTS: usize = 8;
const QUERY_CLASSES: usize = 200;
const WARMUP: usize = 2;
const SAMPLES: usize = 9;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// The e6 `queries_*` access pattern: per-class feature walks, ancestor
/// closures, and a stereotype lookup over a synthetic model.
fn query_walk_scan(m: &Model) -> usize {
    let mut touched = 0usize;
    for c in m.classes_scan() {
        touched += m.operations_of_scan(c).len();
        touched += m.attributes_of_scan(c).len();
        touched += m.ancestors_of_scan(c).len();
    }
    touched + m.stereotyped_scan("Remote").len()
}

fn query_walk_indexed(m: &Model) -> usize {
    let mut touched = 0usize;
    for c in m.classes() {
        touched += m.operations_of(c).len();
        touched += m.attributes_of(c).len();
        touched += m.ancestors_of(c).len();
    }
    touched + m.stereotyped("Remote").len()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_weaver.json".to_owned());
    let program = weaver_program(CLASSES, METHODS);
    let weaver = Weaver::new(weaver_aspects(ASPECTS));

    // Sanity: both paths agree before we time anything.
    let a = weaver.weave(&program).expect("weaves");
    let b = weaver.weave_naive(&program).expect("weaves");
    assert_eq!(a.program, b.program, "indexed and naive weaves diverged");
    assert_eq!(a.trace, b.trace, "indexed and naive traces diverged");
    let shadows = a.trace.len();

    eprintln!("timing naive (before) ...");
    let before = median_secs(|| {
        black_box(weaver.weave_naive(black_box(&program)).expect("weaves"));
    });
    eprintln!("timing indexed (after) ...");
    let after = median_secs(|| {
        black_box(weaver.weave(black_box(&program)).expect("weaves"));
    });

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut sweep_entries = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        if threads > cores * 2 {
            break;
        }
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool builds");
        eprintln!("timing indexed with {threads} thread(s) ...");
        let t = median_secs(|| {
            pool.install(|| black_box(weaver.weave(black_box(&program)).expect("weaves")));
        });
        sweep_entries.push(format!(
            "    {{\"threads\": {threads}, \"median_secs\": {t:.6}, \"speedup_vs_before\": {:.3}}}",
            before / t
        ));
    }

    // The e6 repository-query comparison: scan twins versus the
    // ModelIndex-backed queries on a synthetic 200-class model.
    let mut model = synthetic(QUERY_CLASSES, 3, 3);
    let c0 = model.find_class("C0").expect("synthetic class");
    model.apply_stereotype(c0, "Remote").expect("exists");
    assert_eq!(
        query_walk_scan(&model),
        query_walk_indexed(&model),
        "indexed and scan queries diverged"
    );
    eprintln!("timing query scans (before) ...");
    let q_before = median_secs(|| {
        black_box(query_walk_scan(black_box(&model)));
    });
    eprintln!("timing indexed queries (after) ...");
    model.classes(); // warm the index; the timed loop measures steady-state reads
    let q_after = median_secs(|| {
        black_box(query_walk_indexed(black_box(&model)));
    });

    let json = format!(
        "{{\n  \"experiment\": \"e10_weaver_pipeline\",\n  \"workload\": {{\"classes\": {CLASSES}, \"methods_per_class\": {METHODS}, \"aspects\": {ASPECTS}, \"advice_applications\": {shadows}}},\n  \"host_cores\": {cores},\n  \"before\": {{\"impl\": \"weave_naive (sequential full-scan)\", \"median_secs\": {before:.6}}},\n  \"after\": {{\"impl\": \"weave (MatchIndex + per-class parallel)\", \"median_secs\": {after:.6}}},\n  \"speedup\": {:.3},\n  \"thread_sweep\": [\n{}\n  ],\n  \"repository_queries\": {{\n    \"workload\": {{\"classes\": {QUERY_CLASSES}, \"pattern\": \"e6 queries: feature walks + ancestor closures + stereotype lookup\"}},\n    \"before\": {{\"impl\": \"full-scan `_scan` queries\", \"median_secs\": {q_before:.6}}},\n    \"after\": {{\"impl\": \"ModelIndex-backed queries (warm)\", \"median_secs\": {q_after:.6}}},\n    \"speedup\": {:.3}\n  }}\n}}\n",
        before / after,
        sweep_entries.join(",\n"),
        q_before / q_after,
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!("wrote {out_path} (speedup {:.2}x)", before / after);
}
