//! Emits `BENCH_faults.json`: the cost of the fault-tolerance concern
//! when nothing goes wrong — the price every call pays for robustness.
//!
//! Two measurements:
//! * **fault-free execution overhead** — the woven banking workload run
//!   with {distribution, transactions} (baseline) versus
//!   {distribution, faulttolerance, transactions} (retry loop, breaker
//!   admission/record, deadline bookkeeping on every call), no fault
//!   plan installed either way;
//! * **weave cost** — weaving the three-aspect set (including the FT
//!   around-advice) with the indexed parallel `weave` versus the
//!   sequential `weave_naive` baseline.
//!
//! Usage: `cargo run --release -p comet-bench --bin bench_faults_json
//! [output-path]` (default `BENCH_faults.json` in the working
//! directory).

use comet::chaos::{banking_bodies, executable_banking_pim, workload, INITIAL_BALANCES};
use comet_aop::{Aspect, Weaver};
use comet_codegen::FunctionalGenerator;
use comet_interp::{Interp, Value};
use comet_middleware::MiddlewareConfig;
use comet_transform::{ParamSet, ParamValue};
use std::hint::black_box;
use std::time::Instant;

const TRANSFERS: u32 = 200;
const WARMUP: usize = 2;
const SAMPLES: usize = 9;

/// Median wall-clock seconds of `SAMPLES` runs (after `WARMUP` runs).
fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        run();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn dist_si() -> ParamSet {
    ParamSet::new()
        .with("server_class", ParamValue::from("Bank"))
        .with("node", ParamValue::from("server"))
        .with("operations", ParamValue::from(vec!["transfer".to_owned(), "getBalance".to_owned()]))
}

fn tx_si() -> ParamSet {
    ParamSet::new()
        .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        .with("isolation", ParamValue::from("serializable"))
}

fn ft_si() -> ParamSet {
    ParamSet::new()
        .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
        .with("idempotent", ParamValue::from(vec!["Bank.transfer".to_owned()]))
}

/// Refines the executable banking PIM with the named concerns and
/// returns the woven interpreter plus the remote bank handle and the
/// two account handles.
fn build_interp(concerns: &[&str]) -> (Interp, Value, Value, Value) {
    let mut model = executable_banking_pim();
    let mut aspects: Vec<Aspect> = Vec::new();
    for name in concerns {
        let pair = comet_concerns::by_name(name).expect("standard concern");
        let si = match *name {
            "distribution" => dist_si(),
            "transactions" => tx_si(),
            _ => ft_si(),
        };
        let (cmt, ca) = pair.specialize(si).expect("valid Si");
        cmt.apply(&mut model).expect("preconditions hold");
        aspects.push(ca);
    }
    let functional = FunctionalGenerator::new().generate(&model, &banking_bodies());
    let woven = Weaver::new(aspects).weave(&functional).expect("weaves").program;
    let mut interp = Interp::with_config(woven, MiddlewareConfig::default());
    interp.add_node("client");
    interp.add_node("server");
    let bank = interp.create_on("Bank", "server").expect("generated");
    let a1 = interp.create_on("Account", "server").expect("generated");
    let a2 = interp.create_on("Account", "server").expect("generated");
    interp.set_field(&a1, "number", Value::from("A-1")).expect("field");
    interp.set_field(&a2, "number", Value::from("A-2")).expect("field");
    interp.set_field(&bank, "a1", a1.clone()).expect("field");
    interp.set_field(&bank, "a2", a2.clone()).expect("field");
    interp.set_field(&a1, "balance", Value::Int(INITIAL_BALANCES.0)).expect("field");
    interp.set_field(&a2, "balance", Value::Int(INITIAL_BALANCES.1)).expect("field");
    interp.call(bank.clone(), "registerRemote", vec![]).expect("distribution applied");
    interp.middleware_mut().bus.set_current_node("client").expect("node exists");
    (interp, bank, a1, a2)
}

/// One benchmark iteration: reset balances, run the deterministic
/// transfer workload. Every call must succeed — this is the fault-free
/// path.
fn run_workload(interp: &mut Interp, bank: &Value, a1: &Value, a2: &Value) {
    interp.set_field(a1, "balance", Value::Int(INITIAL_BALANCES.0)).expect("field");
    interp.set_field(a2, "balance", Value::Int(INITIAL_BALANCES.1)).expect("field");
    for i in 0..TRANSFERS {
        let (from, to, amount) = workload(i);
        let args = vec![Value::from(from), Value::from(to), Value::Int(amount)];
        black_box(interp.call(bank.clone(), "transfer", args).expect("fault-free call"));
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_faults.json".to_owned());

    let baseline_concerns = ["distribution", "transactions"];
    let ft_concerns = ["distribution", "faulttolerance", "transactions"];

    let (mut base_interp, base_bank, base_a1, base_a2) = build_interp(&baseline_concerns);
    let (mut ft_interp, ft_bank, ft_a1, ft_a2) = build_interp(&ft_concerns);

    eprintln!("timing fault-free execution, baseline (dist+tx) ...");
    let exec_before =
        median_secs(|| run_workload(&mut base_interp, &base_bank, &base_a1, &base_a2));
    eprintln!("timing fault-free execution, with FT advice ...");
    let exec_after = median_secs(|| run_workload(&mut ft_interp, &ft_bank, &ft_a1, &ft_a2));

    // Weave cost of the FT-bearing aspect set: indexed parallel weave
    // versus the sequential full-scan baseline.
    let mut model = executable_banking_pim();
    let mut aspects = Vec::new();
    for name in ft_concerns {
        let pair = comet_concerns::by_name(name).expect("standard concern");
        let si = match name {
            "distribution" => dist_si(),
            "transactions" => tx_si(),
            _ => ft_si(),
        };
        let (cmt, ca) = pair.specialize(si).expect("valid Si");
        cmt.apply(&mut model).expect("preconditions hold");
        aspects.push(ca);
    }
    let functional = FunctionalGenerator::new().generate(&model, &banking_bodies());
    let weaver = Weaver::new(aspects);
    let a = weaver.weave(&functional).expect("weaves");
    let b = weaver.weave_naive(&functional).expect("weaves");
    assert_eq!(a.program, b.program, "indexed and naive weaves diverged");
    let shadows = a.trace.len();

    eprintln!("timing weave_naive (before) ...");
    let weave_before = median_secs(|| {
        black_box(weaver.weave_naive(black_box(&functional)).expect("weaves"));
    });
    eprintln!("timing weave (after) ...");
    let weave_after = median_secs(|| {
        black_box(weaver.weave(black_box(&functional)).expect("weaves"));
    });

    let per_call_us = (exec_after - exec_before) / f64::from(TRANSFERS) * 1e6;
    let json = format!(
        "{{\n  \"experiment\": \"pr3_fault_tolerance_overhead\",\n  \"workload\": {{\"transfers\": {TRANSFERS}, \"baseline_concerns\": \"distribution+transactions\", \"ft_concerns\": \"distribution+faulttolerance+transactions\"}},\n  \"fault_free_execution\": {{\n    \"baseline\": {{\"impl\": \"woven dist+tx, no FT advice\", \"median_secs\": {exec_before:.6}}},\n    \"with_ft\": {{\"impl\": \"woven dist+ft+tx (retry loop + breaker + deadline bookkeeping)\", \"median_secs\": {exec_after:.6}}},\n    \"overhead_ratio\": {:.3},\n    \"overhead_us_per_call\": {per_call_us:.3}\n  }},\n  \"weave\": {{\n    \"advice_applications\": {shadows},\n    \"before\": {{\"impl\": \"weave_naive (sequential full-scan)\", \"median_secs\": {weave_before:.6}}},\n    \"after\": {{\"impl\": \"weave (MatchIndex + per-class parallel)\", \"median_secs\": {weave_after:.6}}},\n    \"speedup\": {:.3}\n  }}\n}}\n",
        exec_after / exec_before,
        weave_before / weave_after,
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    println!("{json}");
    eprintln!(
        "wrote {out_path} (fault-free FT overhead {:.2}x, {per_call_us:.1}µs/call)",
        exec_after / exec_before
    );
}
