//! E3: the runtime cost of semantic coupling — a naive wrap-everything
//! transactional aspect versus the `Si`-targeted aspect, measured on the
//! concern-free `getBalance` query path.

use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, Weaver};
use comet_bench::{banking_bodies, executable_banking_pim, ready_interp, tx_si};
use comet_codegen::{Block, Expr, FunctionalGenerator, IrType, Program, Stmt};
use comet_concerns::transactions;
use comet_interp::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn functional() -> Program {
    FunctionalGenerator::new().generate(&executable_banking_pim(), &banking_bodies())
}

fn naive_aspect() -> Aspect {
    Aspect::new("naive").with_advice(Advice::new(
        AdviceKind::Around,
        parse_pointcut("execution(*.*)").expect("valid"),
        Block::of(vec![
            Stmt::If {
                cond: Expr::intrinsic("tx.active", vec![]),
                then_block: Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
                else_block: None,
            },
            Stmt::Expr(Expr::intrinsic("tx.begin", vec![Expr::str("rc")])),
            Stmt::TryCatch {
                body: Block::of(vec![
                    Stmt::Local {
                        name: "__r".into(),
                        ty: IrType::Str,
                        init: Some(Expr::Proceed(vec![])),
                    },
                    Stmt::Expr(Expr::intrinsic("tx.commit", vec![])),
                    Stmt::ret(Expr::var("__r")),
                ]),
                var: "__e".into(),
                handler: Block::of(vec![
                    Stmt::Expr(Expr::intrinsic("tx.rollback", vec![])),
                    Stmt::Throw(Expr::var("__e")),
                ]),
                finally: None,
            },
        ]),
    ))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_coupling");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    let query = |interp: &mut comet_interp::Interp, bank: &Value| {
        interp.call(bank.clone(), "getBalance", vec![Value::from("A-1")]).expect("queries")
    };

    group.bench_function("query_no_aspect", |b| {
        let (mut interp, bank) = ready_interp(functional());
        b.iter(|| query(&mut interp, &bank));
    });

    group.bench_function("query_si_targeted_aspect", |b| {
        let (_, aspect) = transactions::pair().specialize(tx_si()).expect("valid Si");
        let woven = Weaver::new(vec![aspect]).weave(&functional()).expect("weaves").program;
        let (mut interp, bank) = ready_interp(woven);
        b.iter(|| query(&mut interp, &bank));
    });

    group.bench_function("query_naive_wrap_everything", |b| {
        let woven = Weaver::new(vec![naive_aspect()]).weave(&functional()).expect("weaves").program;
        let (mut interp, bank) = ready_interp(woven);
        b.iter(|| query(&mut interp, &bank));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
