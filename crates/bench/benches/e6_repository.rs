//! E6: repository facilities versus model size — snapshot/commit,
//! undo/redo, structural diff, and the colors report.

use comet_bench::synthetic;
use comet_model::Model;
use comet_repo::{diff_models, ColorReport, Repository};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn variant(model: &Model) -> Model {
    let mut v = model.clone();
    let root = v.root();
    let extra = v.add_class(root, "ExtraClass").expect("unique");
    v.mark_concern(extra, "distribution").expect("exists");
    let c0 = v.find_class("C0").expect("synthetic class");
    v.apply_stereotype(c0, "Remote").expect("exists");
    v
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_repository");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    for classes in [10usize, 50, 200] {
        let model = synthetic(classes, 3, 3);
        let modified = variant(&model);

        group.bench_with_input(BenchmarkId::new("commit", classes), &model, |b, model| {
            b.iter(|| {
                let mut repo = Repository::new("bench");
                repo.commit(black_box(model), "v1", None).expect("commits")
            });
        });

        group.bench_with_input(
            BenchmarkId::new("undo_redo_cycle", classes),
            &(model.clone(), modified.clone()),
            |b, (m1, m2)| {
                let mut repo = Repository::new("bench");
                repo.commit(m1, "v1", None).expect("commits");
                repo.commit(m2, "v2", Some("distribution")).expect("commits");
                b.iter(|| {
                    repo.undo().expect("undoable").expect("decodes");
                    repo.redo().expect("redoable").expect("decodes")
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("diff", classes),
            &(model.clone(), modified.clone()),
            |b, (m1, m2)| b.iter(|| diff_models(black_box(m1), black_box(m2))),
        );

        group.bench_with_input(BenchmarkId::new("colors_report", classes), &modified, |b, m| {
            b.iter(|| ColorReport::for_model(black_box(m)))
        });

        // Indexed versus full-scan model queries: a transformation-like
        // access pattern (per-class feature walks + ancestor closures +
        // stereotype lookups) on a warm index versus the naive scans.
        group.bench_with_input(BenchmarkId::new("queries_scan", classes), &modified, |b, m| {
            b.iter(|| {
                let mut touched = 0usize;
                for c in m.classes_scan() {
                    touched += m.operations_of_scan(c).len();
                    touched += m.attributes_of_scan(c).len();
                    touched += m.ancestors_of_scan(c).len();
                }
                touched += m.stereotyped_scan("Remote").len();
                black_box(touched)
            });
        });
        group.bench_with_input(BenchmarkId::new("queries_indexed", classes), &modified, |b, m| {
            b.iter(|| {
                let mut touched = 0usize;
                for c in m.classes() {
                    touched += m.operations_of(c).len();
                    touched += m.attributes_of(c).len();
                    touched += m.ancestors_of(c).len();
                }
                touched += m.stereotyped("Remote").len();
                black_box(touched)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
