//! E11: transformation rollback strategies — the delta-journaled
//! engine (`ConcreteTransformation::apply`) against the retained
//! clone-and-restore oracle (`apply_cloned`) on a failing body whose
//! delta stays constant while the model grows.

use comet_bench::synthetic;
use comet_transform::{specialize, ParamSet, TransformError, TransformationBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_transform");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    let failing = specialize(
        TransformationBuilder::new("bench-fail", "bench")
            .body(|model, _| {
                let root = model.root();
                let audit = model.add_class(root, "AuditLog")?;
                model.add_operation(audit, "append")?;
                Err(TransformError::Custom("induced rollback".into()))
            })
            .build(),
        ParamSet::new(),
    )
    .expect("empty schema validates");

    for classes in [10usize, 50, 200] {
        let mut model = synthetic(classes, 3, 3);
        group.bench_with_input(BenchmarkId::new("rollback_clone", classes), &(), |b, ()| {
            b.iter(|| {
                let _ = black_box(failing.apply_cloned(black_box(&mut model)));
            });
        });
        group.bench_with_input(BenchmarkId::new("rollback_journal", classes), &(), |b, ()| {
            b.iter(|| {
                let _ = black_box(failing.apply(black_box(&mut model)));
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
