//! E5: functional-generator-plus-aspects (the paper's proposal) versus
//! the monolithic most-specialized-PSM generator — single-shot
//! generation cost and incremental-regeneration cost when one concern
//! parameter changes.

use comet::MdaLifecycle;
use comet_bench::{banking_bodies, dist_si, executable_banking_pim, sec_si, tx_si};
use comet_concerns::{distribution, security, transactions};
use comet_transform::{ParamSet, ParamValue};
use comet_workflow::WorkflowModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn lifecycle() -> MdaLifecycle {
    let workflow = WorkflowModel::new("e5")
        .step("security", false)
        .step("distribution", false)
        .step("transactions", false);
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).expect("pim");
    mda.apply_concern(&security::pair(), sec_si()).expect("sec");
    mda.apply_concern(&distribution::pair(), dist_si()).expect("dist");
    mda.apply_concern(&transactions::pair(), tx_si()).expect("tx");
    mda
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_generator_ablation");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let bodies = banking_bodies();
    let mda = lifecycle();

    // Single-shot generation: the monolithic generator is expected to
    // win here (no weaving pass) — the trade-off the paper accepts.
    group.bench_function("single_shot_functional_plus_weave", |b| {
        b.iter(|| {
            mda.generate(black_box(&bodies), comet::Backend::JavaFunctional).expect("weaves")
        });
    });
    group.bench_function("single_shot_monolithic", |b| {
        b.iter(|| mda.generate_monolithic(black_box(&bodies)));
    });

    // Incremental regeneration after an isolation-level change: the
    // proposal regenerates one aspect; the baseline regenerates the
    // whole program.
    group.bench_function("incremental_proposal_aspect_only", |b| {
        let pair = transactions::pair();
        b.iter(|| {
            let si = ParamSet::new()
                .with("methods", ParamValue::from(vec!["Bank.transfer".to_owned()]))
                .with("isolation", ParamValue::from("serializable"));
            let (_, aspect) = pair.specialize(black_box(si)).expect("valid Si");
            aspect
        });
    });
    group.bench_function("incremental_baseline_full_regen", |b| {
        b.iter(|| mda.generate_monolithic(black_box(&bodies)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
