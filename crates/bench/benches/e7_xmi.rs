//! E7: XMI import/export throughput versus model size.

use comet_bench::synthetic;
use comet_xmi::{export_model, import_model};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_xmi");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    for classes in [10usize, 50, 200] {
        let model = synthetic(classes, 3, 3);
        let xmi = export_model(&model);
        group.throughput(Throughput::Bytes(xmi.len() as u64));

        group.bench_with_input(BenchmarkId::new("export", classes), &model, |b, m| {
            b.iter(|| export_model(black_box(m)));
        });
        group.bench_with_input(BenchmarkId::new("import", classes), &xmi, |b, xmi| {
            b.iter(|| import_model(black_box(xmi)).expect("valid document"));
        });
        group.bench_with_input(BenchmarkId::new("round_trip", classes), &model, |b, m| {
            b.iter(|| import_model(&export_model(black_box(m))).expect("round trips"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
