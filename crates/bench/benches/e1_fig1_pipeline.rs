//! E1 (Fig. 1): cost of the generic→concrete pipeline — specializing a
//! concern pair, applying the CMT (with condition checking), and
//! generating + weaving the paired aspect.

use comet_bench::{banking_bodies, executable_banking_pim, tx_si};
use comet_concerns::transactions;
use comet_workflow::WorkflowModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_fig1_pipeline");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    group.bench_function("specialize_pair", |b| {
        let pair = transactions::pair();
        b.iter(|| pair.specialize(black_box(tx_si())).expect("valid Si"));
    });

    group.bench_function("apply_cmt_with_conditions", |b| {
        let (cmt, _) = transactions::pair().specialize(tx_si()).expect("valid Si");
        let pim = executable_banking_pim();
        b.iter(|| {
            let mut model = pim.clone();
            cmt.apply(black_box(&mut model)).expect("applies")
        });
    });

    group.bench_function("generate_and_weave_one_concern", |b| {
        let workflow = WorkflowModel::new("e1").step("transactions", false);
        let mut mda = comet::MdaLifecycle::new(executable_banking_pim(), workflow).expect("pim");
        mda.apply_concern(&transactions::pair(), tx_si()).expect("applies");
        let bodies = banking_bodies();
        b.iter(|| {
            mda.generate(black_box(&bodies), comet::Backend::JavaFunctional).expect("weaves")
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
