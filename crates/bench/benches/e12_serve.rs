//! E12: serving-core characterization — shard scaling of the
//! multi-tenant banking workload, plus the cost of a single tenant
//! session end to end.

use comet::run_banking_serve;
use comet_serve::WorkloadPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn sweep_plan() -> WorkloadPlan {
    let mut plan = WorkloadPlan::new(7);
    plan.tenants = 8;
    plan.clients = 2;
    plan.requests = 8;
    plan.mix.apply = 0.30;
    plan.mix.generate = 0.20;
    plan
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_serve");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    let plan = sweep_plan();
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("shard_sweep", shards), &shards, |b, &shards| {
            b.iter(|| {
                black_box(
                    run_banking_serve(black_box(&plan), shards, None, false).expect("valid plan"),
                )
            });
        });
    }

    group.bench_function("single_tenant_session", |b| {
        let mut plan = WorkloadPlan::new(7);
        plan.tenants = 1;
        plan.clients = 2;
        plan.requests = 8;
        b.iter(|| {
            black_box(run_banking_serve(black_box(&plan), 1, None, false).expect("valid plan"))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
