//! E4: OCL condition-checking cost as the model grows — the price of
//! "testing pre- and postconditions associated with model
//! transformations" at every refinement step.

use comet_bench::synthetic;
use comet_ocl::{evaluate_bool, parse, Context};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_conditions");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    group.bench_function("parse_typical_condition", |b| {
        let src = "Class.allInstances()->exists(c | c.name = 'C5' and \
                   c.operations->exists(o | o.name = 'op1'))";
        b.iter(|| parse(black_box(src)).expect("parses"));
    });

    for classes in [10usize, 50, 200] {
        let model = synthetic(classes, 3, 3);
        group.bench_with_input(BenchmarkId::new("exists_scan", classes), &model, |b, model| {
            let ctx = Context::for_model(model);
            let src = format!("Class.allInstances()->exists(c | c.name = 'C{}')", classes - 1);
            b.iter(|| evaluate_bool(black_box(&src), &ctx).expect("evaluates"));
        });
        group.bench_with_input(BenchmarkId::new("forall_nested", classes), &model, |b, model| {
            let ctx = Context::for_model(model);
            let src = "Class.allInstances()->forAll(c | \
                           c.operations->forAll(o | o.parameters->size() = 2))";
            b.iter(|| evaluate_bool(black_box(src), &ctx).expect("evaluates"));
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
