//! E2 (Fig. 2): the full three-concern refinement — T1/T2/T3 applied,
//! A1/A2/A3 generated and woven — and the end-to-end execution
//! throughput of the resulting system.

use comet::MdaLifecycle;
use comet_bench::{banking_bodies, dist_si, executable_banking_pim, ready_interp, sec_si, tx_si};
use comet_concerns::{distribution, security, transactions};
use comet_interp::Value;
use comet_workflow::WorkflowModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn lifecycle() -> MdaLifecycle {
    let workflow = WorkflowModel::new("fig2")
        .step("distribution", false)
        .step("transactions", false)
        .step("security", false);
    let mut mda = MdaLifecycle::new(executable_banking_pim(), workflow).expect("pim");
    mda.apply_concern(&distribution::pair(), dist_si()).expect("T1");
    mda.apply_concern(&transactions::pair(), tx_si()).expect("T2");
    mda.apply_concern(&security::pair(), sec_si()).expect("T3");
    mda
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_fig2_three_concerns");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    group.bench_function("refine_three_concerns", |b| {
        b.iter(|| black_box(lifecycle()));
    });

    group.bench_function("generate_weave_three_aspects", |b| {
        let mda = lifecycle();
        let bodies = banking_bodies();
        b.iter(|| {
            mda.generate(black_box(&bodies), comet::Backend::JavaFunctional).expect("weaves")
        });
    });

    group.bench_function("transfer_throughput_three_concerns_local", |b| {
        let mda = lifecycle();
        let system =
            mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).expect("weaves");
        let (mut interp, bank) = ready_interp(system.woven);
        b.iter(|| {
            interp
                .call(
                    bank.clone(),
                    "transfer",
                    vec![Value::from("A-1"), Value::from("A-2"), Value::Int(1)],
                )
                .expect("transfers")
        });
    });

    group.bench_function("transfer_throughput_remote_client", |b| {
        let mda = lifecycle();
        let system =
            mda.generate(&banking_bodies(), comet::Backend::JavaFunctional).expect("weaves");
        let (mut interp, bank) = ready_interp(system.woven);
        interp.middleware_mut().bus.set_current_node("client").expect("node");
        b.iter(|| {
            interp
                .call(
                    bank.clone(),
                    "transfer",
                    vec![Value::from("A-1"), Value::from("A-2"), Value::Int(1)],
                )
                .expect("transfers")
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
