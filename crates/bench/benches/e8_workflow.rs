//! E8: workflow guidance cost versus plan size — computing the allowed
//! next steps and validating candidate sequences.

use comet_workflow::{OrderConstraint, WorkflowEngine, WorkflowModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn plan(steps: usize) -> WorkflowModel {
    let mut model = WorkflowModel::new("bench");
    for i in 0..steps {
        model = model.step(&format!("c{i}"), false);
        if i > 0 {
            model =
                model.constraint(OrderConstraint::Before(format!("c{}", i - 1), format!("c{i}")));
        }
    }
    model
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_workflow");
    group.sample_size(30).measurement_time(Duration::from_secs(2));

    for steps in [5usize, 20, 80] {
        let model = plan(steps);
        group.bench_with_input(
            BenchmarkId::new("allowed_next_half_applied", steps),
            &model,
            |b, model| {
                let mut engine = WorkflowEngine::new(model.clone());
                for i in 0..steps / 2 {
                    engine.record(&format!("c{i}")).expect("chain order");
                }
                b.iter(|| black_box(engine.allowed_next()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("validate_full_sequence", steps),
            &model,
            |b, model| {
                let engine = WorkflowEngine::new(model.clone());
                let seq: Vec<String> = (0..steps).map(|i| format!("c{i}")).collect();
                let seq_refs: Vec<&str> = seq.iter().map(String::as_str).collect();
                b.iter(|| engine.validate_sequence(black_box(&seq_refs)).expect("valid"));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
