//! E13: incremental re-weaving — the dirty-set splice versus the full
//! weave on the E10 100-class / 8-aspect workload, across three
//! steady-state shapes: a one-class edit, an unchanged-revision full
//! hit, and the unknown-delta worst case (where the cache cannot help
//! and the splice pays the full weave plus its own bookkeeping — the
//! bound on what a caller risks by reporting `None`).

use comet_aop::{IncrementalWeaver, Weaver};
use comet_bench::{weaver_aspects, weaver_program};
use comet_codegen::{Expr, Program, Stmt};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::Duration;

const CLASSES: usize = 100;
const METHODS: usize = 6;
const ASPECTS: usize = 8;

/// One statement appended to one method of one class.
fn edited(base: &Program) -> Program {
    let mut p = base.clone();
    p.classes[0].methods[0]
        .body
        .stmts
        .push(Stmt::Expr(Expr::intrinsic("log.emit", vec![Expr::str("info"), Expr::str("edit")])));
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_incremental");
    group.sample_size(15).measurement_time(Duration::from_secs(2));

    let base = weaver_program(CLASSES, METHODS);
    let edit = edited(&base);
    let weaver = Weaver::new(weaver_aspects(ASPECTS));
    let dirty: BTreeSet<String> = [base.classes[0].name.clone()].into();

    group.bench_function("full_weave", |b| {
        b.iter(|| weaver.weave(black_box(&edit)).expect("weaves"));
    });

    group.bench_function("splice_one_dirty_class", |b| {
        let mut iw = IncrementalWeaver::new(weaver.clone());
        iw.weave_at(0, &base, None).expect("weaves");
        let mut revision = 0u64;
        b.iter(|| {
            revision += 1;
            let program = if revision.is_multiple_of(2) { &base } else { &edit };
            black_box(iw.weave_at(revision, black_box(program), Some(&dirty)).expect("weaves"))
        });
    });

    group.bench_function("unchanged_revision_hit", |b| {
        let mut iw = IncrementalWeaver::new(weaver.clone());
        iw.weave_at(1, &base, Some(&dirty)).expect("weaves");
        b.iter(|| black_box(iw.weave_at(1, black_box(&base), Some(&dirty)).expect("weaves")));
    });

    group.bench_function("unknown_delta_full_reweave", |b| {
        let mut iw = IncrementalWeaver::new(weaver.clone());
        let mut revision = 0u64;
        b.iter(|| {
            revision += 1;
            black_box(iw.weave_at(revision, black_box(&edit), None).expect("weaves"))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
