//! E9: middleware-substrate characterization — raw bus/RPC cost, local
//! versus distributed transaction commit, lock traffic, and the aspect
//! overhead on the invocation path (functional vs woven call).

use comet_aop::Weaver;
use comet_bench::{banking_bodies, executable_banking_pim, ready_interp, tx_si};
use comet_codegen::FunctionalGenerator;
use comet_concerns::transactions;
use comet_interp::Value;
use comet_middleware::{Middleware, MiddlewareConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_middleware");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    group.bench_function("bus_round_trip", |b| {
        let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
        mw.bus.add_node("a");
        mw.bus.add_node("b");
        b.iter(|| mw.bus.round_trip("a", "b", 64, 16).expect("delivers"));
    });

    group.bench_function("local_tx_commit", |b| {
        let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
        b.iter(|| {
            let tx = mw.tx.begin("rc").expect("begins");
            mw.tx.log_write(tx, 1, "balance", black_box(100)).expect("logs");
            mw.tx.commit(tx).expect("commits")
        });
    });

    group.bench_function("distributed_tx_2pc_commit", |b| {
        let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
        mw.bus.add_node("a");
        mw.bus.add_node("b");
        b.iter(|| {
            let tx = mw.tx.begin("rc").expect("begins");
            mw.tx.touch_node(tx, "a").expect("touches");
            mw.tx.touch_node(tx, "b").expect("touches");
            mw.tx.log_write(tx, 1, "v", black_box(1)).expect("logs");
            mw.tx.commit(tx).expect("commits")
        });
    });

    group.bench_function("lock_acquire_release", |b| {
        let mut mw: Middleware<i64> = Middleware::new(MiddlewareConfig::default());
        b.iter(|| {
            mw.locks.try_acquire("hot", 1).expect("free");
            mw.locks.release("hot", 1).expect("held")
        });
    });

    // Aspect overhead on the invocation path.
    let functional =
        FunctionalGenerator::new().generate(&executable_banking_pim(), &banking_bodies());
    group.bench_function("call_functional_transfer", |b| {
        let (mut interp, bank) = ready_interp(functional.clone());
        b.iter(|| {
            interp
                .call(
                    bank.clone(),
                    "transfer",
                    vec![Value::from("A-1"), Value::from("A-2"), Value::Int(1)],
                )
                .expect("transfers")
        });
    });
    group.bench_function("call_woven_transactional_transfer", |b| {
        let (_, aspect) = transactions::pair().specialize(tx_si()).expect("valid Si");
        let woven = Weaver::new(vec![aspect]).weave(&functional).expect("weaves").program;
        let (mut interp, bank) = ready_interp(woven);
        b.iter(|| {
            interp
                .call(
                    bank.clone(),
                    "transfer",
                    vec![Value::from("A-1"), Value::from("A-2"), Value::Int(1)],
                )
                .expect("transfers")
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
