//! E10: weaver scaling — weaving time versus number of join-point
//! shadows (methods) and number of aspects, plus pointcut matching cost,
//! the naive-versus-indexed pipeline comparison, and the thread sweep
//! over the parallel per-class weave.

use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, Weaver};
use comet_bench::{weaver_aspects, weaver_program};
use comet_codegen::{Block, ClassDecl, Expr, IrType, MethodDecl, Param, Program, Stmt};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn program(classes: usize, methods: usize) -> Program {
    let mut p = Program::new("scale");
    for c in 0..classes {
        let mut class = ClassDecl::new(format!("C{c}"));
        for m in 0..methods {
            let mut method = MethodDecl::new(format!("m{m}"));
            method.params.push(Param::new("x", IrType::Int));
            method.ret = IrType::Int;
            method.body = Block::of(vec![Stmt::ret(Expr::var("x"))]);
            class.methods.push(method);
        }
        p.classes.push(class);
    }
    p
}

fn aspects(n: usize) -> Vec<Aspect> {
    (0..n)
        .map(|i| {
            Aspect::new(format!("a{i}")).with_advice(Advice::new(
                AdviceKind::Before,
                parse_pointcut("execution(*.*)").expect("valid"),
                Block::of(vec![Stmt::Expr(Expr::intrinsic(
                    "log.emit",
                    vec![Expr::str("info"), Expr::var("__jp")],
                ))]),
            ))
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_weaver");
    group.sample_size(15).measurement_time(Duration::from_secs(2));

    // Scaling in join-point shadows (one aspect).
    for shadows in [40usize, 160, 640] {
        let p = program(shadows / 4, 4);
        group.bench_with_input(BenchmarkId::new("shadows", shadows), &p, |b, p| {
            let weaver = Weaver::new(aspects(1));
            b.iter(|| weaver.weave(black_box(p)).expect("weaves"));
        });
    }

    // Scaling in aspects (fixed shadow count).
    let p = program(10, 4);
    for n in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("aspects", n), &p, |b, p| {
            let weaver = Weaver::new(aspects(n));
            b.iter(|| weaver.weave(black_box(p)).expect("weaves"));
        });
    }

    // Pointcut matching alone.
    group.bench_function("pointcut_match", |b| {
        let pc = parse_pointcut("execution(C*.m*) && !within(Test*) && args(1)").expect("valid");
        let class = ClassDecl::new("C7");
        let mut method = MethodDecl::new("m3");
        method.params.push(Param::new("x", IrType::Int));
        b.iter(|| pc.matches_execution(black_box(&class), black_box(&method)));
    });

    // The headline comparison: the 100-class / 8-aspect mixed workload
    // (execution + call advice, method bodies with call shadows) through
    // the naive full-scan weaver versus the MatchIndex-backed one.
    let big = weaver_program(100, 6);
    let weaver = Weaver::new(weaver_aspects(8));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_with_input(BenchmarkId::new("weave_100x8", "naive"), &big, |b, p| {
        b.iter(|| weaver.weave_naive(black_box(p)).expect("weaves"));
    });
    group.bench_with_input(BenchmarkId::new("weave_100x8", "indexed"), &big, |b, p| {
        b.iter(|| weaver.weave(black_box(p)).expect("weaves"));
    });

    // Thread sweep over the parallel per-class weave: 1..N worker
    // threads pinned via a dedicated rayon pool.
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut sweep: Vec<usize> = vec![1, 2, 4, 8];
    sweep.retain(|&t| t <= max_threads.max(1) * 2); // keep oversubscription modest
    for threads in sweep {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool builds");
        group.bench_with_input(BenchmarkId::new("threads", threads), &big, |b, p| {
            b.iter(|| pool.install(|| weaver.weave(black_box(p)).expect("weaves")));
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
