//! Glob-style name patterns used by pointcut designators.

use std::fmt;

/// A name pattern where `*` matches any (possibly empty) run of
/// characters; all other characters match literally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamePattern {
    source: String,
}

impl NamePattern {
    /// Creates a pattern from its textual form.
    pub fn new(source: impl Into<String>) -> Self {
        NamePattern { source: source.into() }
    }

    /// The textual form of the pattern.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Returns true when the pattern matches the entire `name`.
    pub fn matches(&self, name: &str) -> bool {
        glob_match(self.source.as_bytes(), name.as_bytes())
    }

    /// True for the universal pattern `*`.
    pub fn is_wildcard(&self) -> bool {
        self.source == "*"
    }
}

impl fmt::Display for NamePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl From<&str> for NamePattern {
    fn from(s: &str) -> Self {
        NamePattern::new(s)
    }
}

/// Iterative glob matcher (no recursion, no backtracking blow-up):
/// standard two-pointer algorithm with star backtracking.
fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while t < text.len() {
        if p < pattern.len() && (pattern[p] == text[t]) {
            p += 1;
            t += 1;
        } else if p < pattern.len() && pattern[p] == b'*' {
            star = Some((p, t));
            p += 1;
        } else if let Some((sp, st)) = star {
            p = sp + 1;
            t = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'*' {
        p += 1;
    }
    p == pattern.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_wildcard() {
        assert!(NamePattern::new("deposit").matches("deposit"));
        assert!(!NamePattern::new("deposit").matches("deposits"));
        assert!(NamePattern::new("*").matches(""));
        assert!(NamePattern::new("*").matches("anything"));
        assert!(NamePattern::new("*").is_wildcard());
        assert!(!NamePattern::new("a*").is_wildcard());
    }

    #[test]
    fn prefix_suffix_infix() {
        let p = NamePattern::new("get*");
        assert!(p.matches("getBalance"));
        assert!(p.matches("get"));
        assert!(!p.matches("setBalance"));
        let p = NamePattern::new("*Service");
        assert!(p.matches("AuthService"));
        assert!(!p.matches("ServiceAuth"));
        let p = NamePattern::new("a*b*c");
        assert!(p.matches("abc"));
        assert!(p.matches("aXbYc"));
        assert!(!p.matches("acb"));
    }

    #[test]
    fn multiple_stars_backtrack() {
        let p = NamePattern::new("*a*a*");
        assert!(p.matches("banana"));
        assert!(!p.matches("bnn"));
        assert!(NamePattern::new("**").matches("x"));
        assert!(NamePattern::new("**").matches(""));
    }

    #[test]
    fn display_round_trip() {
        let p = NamePattern::from("get*");
        assert_eq!(p.to_string(), "get*");
        assert_eq!(p.as_str(), "get*");
    }
}
