//! Advice and aspects.

use crate::pointcut::Pointcut;
use comet_codegen::Block;
use std::fmt;

/// When the advice body runs relative to the join point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdviceKind {
    /// Before the join point.
    Before,
    /// After the join point, whether it returned or threw (finally).
    After,
    /// After the join point returned normally. The woven body may read
    /// the result through the `__result` local (non-void methods only).
    AfterReturning,
    /// After the join point threw. The woven body may read the exception
    /// through the `__error` local.
    AfterThrowing,
    /// Instead of the join point; the advice body must contain at least
    /// one `proceed(...)` expression to invoke the original.
    Around,
}

impl fmt::Display for AdviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdviceKind::Before => "before",
            AdviceKind::After => "after",
            AdviceKind::AfterReturning => "afterReturning",
            AdviceKind::AfterThrowing => "afterThrowing",
            AdviceKind::Around => "around",
        };
        f.write_str(s)
    }
}

/// One piece of advice: a kind, a pointcut, and a body template.
///
/// Inside the body template the weaver makes these names available:
/// * the original method's parameters, by name;
/// * `__jp` — a string local `"Class.method"` identifying the join point;
/// * `__result` — in `afterReturning` bodies of non-void methods;
/// * `__error` — in `afterThrowing` bodies;
/// * `proceed(...)` — in `around` bodies only.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// When the body runs.
    pub kind: AdviceKind,
    /// Which join points it applies to.
    pub pointcut: Pointcut,
    /// The body template.
    pub body: Block,
}

impl Advice {
    /// Creates an advice.
    pub fn new(kind: AdviceKind, pointcut: Pointcut, body: Block) -> Self {
        Advice { kind, pointcut, body }
    }
}

/// A named aspect: an ordered list of advice.
///
/// Precedence among aspects is positional in the weaver's aspect list —
/// the paper's rule: the order in which concrete model transformations
/// were applied at model level dictates the precedence of the concrete
/// aspects at code level. Earlier aspects wrap *outside* later ones.
#[derive(Debug, Clone, PartialEq)]
pub struct Aspect {
    /// Aspect name, e.g. `"transactions<isolation=serializable>"`.
    pub name: String,
    /// Advice, applied in declaration order within the aspect.
    pub advices: Vec<Advice>,
}

impl Aspect {
    /// Creates an empty aspect.
    pub fn new(name: impl Into<String>) -> Self {
        Aspect { name: name.into(), advices: Vec::new() }
    }

    /// Adds an advice, builder style.
    pub fn with_advice(mut self, advice: Advice) -> Self {
        self.advices.push(advice);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointcut::parse_pointcut;

    #[test]
    fn builder_collects_advice_in_order() {
        let a = Aspect::new("tx")
            .with_advice(Advice::new(
                AdviceKind::Before,
                parse_pointcut("execution(*.a)").unwrap(),
                Block::default(),
            ))
            .with_advice(Advice::new(
                AdviceKind::After,
                parse_pointcut("execution(*.b)").unwrap(),
                Block::default(),
            ));
        assert_eq!(a.advices.len(), 2);
        assert_eq!(a.advices[0].kind, AdviceKind::Before);
        assert_eq!(a.name, "tx");
    }

    #[test]
    fn kind_display() {
        assert_eq!(AdviceKind::AfterReturning.to_string(), "afterReturning");
        assert_eq!(AdviceKind::Around.to_string(), "around");
    }
}
