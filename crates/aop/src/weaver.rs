//! The weaver: applies aspects to a program at the IR level.
//!
//! ## Weaving scheme (execution join points)
//!
//! For every method selected by at least one advice, the weaver reifies
//! the original body as a helper `name__functional` (the same move
//! AspectJ's compiler makes for `proceed`), then builds one layer per
//! matching aspect, **innermost = last aspect, outermost = first
//! aspect** — precedence follows the aspect list order, which the MDA
//! lifecycle derives from the order of the concrete model
//! transformations (the paper's precedence rule).
//!
//! Each layer is a helper method; the public method keeps its signature
//! and annotations and simply delegates to the outermost layer, so
//! callers are oblivious to weaving.
//!
//! ## Call join points
//!
//! `call(...)` pointcuts advise statement-position calls
//! (`x.m(...);`, `local r = x.m(...);`, `v = x.m(...);`) with `before`
//! and `after` advice. Calls to weaver-generated helpers (names
//! containing `__`) are never advised, so woven code is not re-advised.
//!
//! ## Performance: match indexing and per-class parallelism
//!
//! [`Weaver::weave`] first builds a read-only [`MatchIndex`] (one pass,
//! every pointcut evaluated once per method / once per distinct callee
//! — see `index.rs` for the tables and for the critical-pair argument
//! that classes are independent units of work), then weaves classes in
//! parallel with rayon, cloning each class exactly once as it is woven
//! instead of cloning the whole program up front. The trace is
//! assembled phase-by-phase in class order, so output and trace are
//! byte-identical to the sequential reference implementation
//! [`Weaver::weave_naive`], which is retained as the differential
//! oracle for the property tests and as the "before" benchmark
//! baseline. The worker thread count follows the ambient rayon pool:
//! wrap the call in `ThreadPool::install` (as `comet-cli --threads`
//! does) to pin it.

use crate::advice::{Advice, AdviceKind, Aspect};
use crate::index::{ClassMatches, MatchIndex, MethodMatches};
use comet_codegen::marks::intrinsics::{CFLOW_ACTIVE, CFLOW_ENTER, CFLOW_EXIT};
use comet_codegen::{Block, ClassDecl, Expr, IrType, IrUnOp, LValue, MethodDecl, Program, Stmt};
use rayon::prelude::*;
use std::fmt;

/// Weaving failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeaveError {
    /// A `call(...)` pointcut was combined with an advice kind that is
    /// not supported at call shadows.
    UnsupportedCallAdvice {
        /// The offending aspect.
        aspect: String,
        /// The advice kind.
        kind: String,
    },
    /// A `cflow(...)` designator appeared in a position the weaver cannot
    /// residue-compile (under `!` or `||`, or nested in another cflow).
    UnsupportedCflow {
        /// The offending aspect.
        aspect: String,
        /// What exactly was wrong.
        detail: String,
    },
}

impl fmt::Display for WeaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeaveError::UnsupportedCallAdvice { aspect, kind } => write!(
                f,
                "aspect `{aspect}`: `{kind}` advice is not supported at call join points \
                 (only before/after)"
            ),
            WeaveError::UnsupportedCflow { aspect, detail } => {
                write!(f, "aspect `{aspect}`: unsupported cflow position: {detail}")
            }
        }
    }
}

impl std::error::Error for WeaveError {}

/// Where a woven join point lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shadow {
    /// Execution of `class.method`.
    Execution,
    /// A call inside `class.method`.
    Call {
        /// The callee method name.
        callee: String,
    },
}

/// Trace record: one advice applied at one join-point shadow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WovenJoinPoint {
    /// Declaring class of the shadow.
    pub class: String,
    /// Method containing (execution: being) the shadow.
    pub method: String,
    /// Aspect that contributed the advice.
    pub aspect: String,
    /// Advice kind.
    pub kind: AdviceKind,
    /// Shadow kind.
    pub shadow: Shadow,
}

/// Which execution strategy a weave actually used. Recorded on the
/// [`WeaveResult`] (not in the obs trace: the strategy depends on the
/// ambient rayon pool, and traces must stay byte-identical across
/// thread counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeavePath {
    /// Plain loop on the calling thread — chosen when the pool has one
    /// worker or the class count is below [`PARALLEL_MIN_CLASSES`],
    /// where rayon dispatch costs more than it buys.
    Sequential,
    /// rayon per-class parallel weave.
    Parallel,
}

/// Class count below which the per-class parallel weave is not worth
/// its dispatch overhead (the BENCH_weaver thread sweep shows the
/// 2-thread run *losing* to 1 thread on small inputs).
pub const PARALLEL_MIN_CLASSES: usize = 8;

/// Decides the weave path for a unit of `classes` independent classes.
pub(crate) fn use_sequential(classes: usize) -> bool {
    rayon::current_num_threads() == 1 || classes < PARALLEL_MIN_CLASSES
}

/// Result of weaving: the transformed program plus the trace.
///
/// Equality compares `program` and `trace` only — `path` is an
/// execution detail that legitimately varies with the ambient thread
/// pool while the output stays byte-identical.
#[derive(Debug, Clone)]
pub struct WeaveResult {
    /// The woven program.
    pub program: Program,
    /// One record per advice application.
    pub trace: Vec<WovenJoinPoint>,
    /// Which strategy produced the result.
    pub path: WeavePath,
}

impl PartialEq for WeaveResult {
    fn eq(&self, other: &Self) -> bool {
        self.program == other.program && self.trace == other.trace
    }
}

/// The weaver: an ordered list of aspects (order = precedence, earlier =
/// outer).
#[derive(Debug, Clone, Default)]
pub struct Weaver {
    aspects: Vec<Aspect>,
}

/// Records the post-hoc weave spans/events for a finished weave: one
/// `weave` pass span, one `class:<name>` child span per advised class,
/// one `weave.advice` event per join point. Shared by the full and the
/// incremental weavers so a cached re-weave traces byte-identically to
/// a fresh one (the trace is derived from the result, never from the
/// execution path that produced it).
pub(crate) fn record_weave_trace(
    obs: &comet_obs::Collector,
    aspect_count: usize,
    result: &WeaveResult,
) {
    let pass = obs.begin_span("weave", "weave", 0);
    obs.span_attr(pass, "aspects", &aspect_count.to_string());
    obs.span_attr(pass, "joinpoints", &result.trace.len().to_string());
    for class in &result.program.classes {
        let records: Vec<&WovenJoinPoint> =
            result.trace.iter().filter(|r| r.class == class.name).collect();
        if records.is_empty() {
            continue;
        }
        let span = obs.begin_span("weave", &format!("class:{}", class.name), 0);
        for r in records {
            let shadow = match &r.shadow {
                Shadow::Execution => format!("execution({}.{})", r.class, r.method),
                Shadow::Call { callee } => format!("call({callee})"),
            };
            obs.event(
                "weave",
                "weave.advice",
                0,
                vec![
                    ("aspect".to_owned(), r.aspect.clone()),
                    ("advice".to_owned(), r.kind.to_string()),
                    ("shadow".to_owned(), shadow),
                    ("class".to_owned(), r.class.clone()),
                    ("method".to_owned(), r.method.clone()),
                ],
            );
        }
        obs.end_span(span, 0);
    }
    obs.end_span(pass, 0);
}

impl Weaver {
    /// Creates a weaver over the given aspects (earlier = outer).
    pub fn new(aspects: Vec<Aspect>) -> Self {
        Weaver { aspects }
    }

    /// The aspects, in precedence order.
    pub fn aspects(&self) -> &[Aspect] {
        &self.aspects
    }

    /// Weaves all aspects into a copy of `program` using the
    /// match-indexed, per-class-parallel pipeline (see module docs).
    ///
    /// # Errors
    /// Returns [`WeaveError`] when an aspect combines a `call(...)`
    /// pointcut with an unsupported advice kind, or places `cflow` in a
    /// position the weaver cannot residue-compile.
    pub fn weave(&self, program: &Program) -> Result<WeaveResult, WeaveError> {
        let instrumentation = self.validate_and_instrument()?;
        let aspects = effective_aspects(&self.aspects, instrumentation.as_ref());
        let index = MatchIndex::build(&aspects, program);
        let sequential = use_sequential(program.classes.len());
        let woven_classes: Vec<(ClassDecl, Vec<WovenJoinPoint>, Vec<WovenJoinPoint>)> =
            if sequential {
                (0..program.classes.len())
                    .map(|i| weave_class(&aspects, &program.classes[i], index.class(i)))
                    .collect()
            } else {
                let class_indices: Vec<usize> = (0..program.classes.len()).collect();
                class_indices
                    .par_iter()
                    .map(|&i| weave_class(&aspects, &program.classes[i], index.class(i)))
                    .collect()
            };
        // Reassemble in class order with the naive weaver's global phase
        // order: all call records first, then all execution records.
        let mut out = Program::new(program.name.clone());
        let mut trace = Vec::new();
        let mut exec_traces = Vec::with_capacity(woven_classes.len());
        for (class, call_trace, exec_trace) in woven_classes {
            out.classes.push(class);
            trace.extend(call_trace);
            exec_traces.push(exec_trace);
        }
        for exec_trace in exec_traces {
            trace.extend(exec_trace);
        }
        let path = if sequential { WeavePath::Sequential } else { WeavePath::Parallel };
        Ok(WeaveResult { program: out, trace, path })
    }

    /// [`Weaver::weave`] wrapped in trace spans: one `weave` span over
    /// the whole pass, one `class:<Name>` child span per class that
    /// received advice, and one `weave.advice` event per woven join
    /// point (aspect, advice kind, shadow, class, method) — the
    /// code-level link of the provenance chain.
    ///
    /// The spans are recorded *after* the parallel weave finishes, from
    /// the already-deterministic [`WeaveResult::trace`], grouped in
    /// program class order — so enabling tracing cannot perturb the
    /// parallel weave, and the recorded trace is byte-identical across
    /// runs and thread counts.
    ///
    /// # Errors
    /// Same conditions as [`Weaver::weave`].
    pub fn weave_traced(
        &self,
        program: &Program,
        obs: &comet_obs::Collector,
    ) -> Result<WeaveResult, WeaveError> {
        let result = self.weave(program)?;
        if obs.is_enabled() {
            record_weave_trace(obs, self.aspects.len(), &result);
        }
        Ok(result)
    }

    /// The sequential reference weaver: re-evaluates every pointcut at
    /// every shadow and clones the whole program up front.
    ///
    /// Kept deliberately: it is the differential oracle for
    /// [`Weaver::weave`] (the property suite asserts byte-identical
    /// output) and the "before" baseline in `e10_weaver` /
    /// `BENCH_weaver.json`. Not deprecated, but new code should call
    /// [`Weaver::weave`].
    ///
    /// # Errors
    /// Same conditions as [`Weaver::weave`].
    pub fn weave_naive(&self, program: &Program) -> Result<WeaveResult, WeaveError> {
        let instrumentation = self.validate_and_instrument()?;
        let aspects = effective_aspects(&self.aspects, instrumentation.as_ref());
        let mut woven = program.clone();
        let mut trace = Vec::new();
        // Calls first: execution weaving moves functional bodies into
        // `__`-suffixed helpers, which the call pass (correctly) skips as
        // containers, so call shadows must be found before that move.
        naive_weave_calls(&aspects, &mut woven, &mut trace);
        naive_weave_executions(&aspects, &mut woven, &mut trace);
        Ok(WeaveResult { program: woven, trace, path: WeavePath::Sequential })
    }

    /// Validates advice kinds at call shadows and cflow positions, and
    /// synthesizes the cflow counter-instrumentation aspect when any
    /// `cflow(...)` conjunct is present (the AspectJ strategy:
    /// enter/exit counters around the cflow-defining join points, an
    /// `active` check guarding the advice bodies).
    pub(crate) fn validate_and_instrument(&self) -> Result<Option<Aspect>, WeaveError> {
        for aspect in &self.aspects {
            for advice in &aspect.advices {
                if advice.pointcut.selects_calls()
                    && !matches!(advice.kind, AdviceKind::Before | AdviceKind::After)
                {
                    return Err(WeaveError::UnsupportedCallAdvice {
                        aspect: aspect.name.clone(),
                        kind: advice.kind.to_string(),
                    });
                }
            }
        }
        let mut cflow_inners: Vec<crate::pointcut::Pointcut> = Vec::new();
        for aspect in &self.aspects {
            for advice in &aspect.advices {
                let conjuncts = advice.pointcut.cflow_conjuncts().map_err(|detail| {
                    WeaveError::UnsupportedCflow { aspect: aspect.name.clone(), detail }
                })?;
                for c in conjuncts {
                    if !cflow_inners.iter().any(|p| p == c) {
                        cflow_inners.push(c.clone());
                    }
                }
            }
        }
        if cflow_inners.is_empty() {
            return Ok(None);
        }
        let mut instr = Aspect::new("__cflow_instrumentation");
        for inner in &cflow_inners {
            instr.advices.push(Advice::new(
                AdviceKind::Around,
                inner.clone(),
                cflow_instrumentation_body(&cflow_key(inner)),
            ));
        }
        Ok(Some(instr))
    }
}

/// The effective aspect list in precedence order: the synthesized cflow
/// instrumentation (outermost) followed by the user aspects — borrowed,
/// so the common no-cflow case costs nothing (previously this path
/// cloned the entire weaver, aspect bodies and all).
pub(crate) fn effective_aspects<'a>(
    own: &'a [Aspect],
    instrumentation: Option<&'a Aspect>,
) -> Vec<&'a Aspect> {
    match instrumentation {
        Some(instr) => std::iter::once(instr).chain(own.iter()).collect(),
        None => own.iter().collect(),
    }
}

// ---------------------------------------------------------------------
// Indexed per-class weaving (the parallel work unit)
// ---------------------------------------------------------------------

/// Weaves one class against the precomputed match tables, returning the
/// woven class plus its call-phase and execution-phase trace records.
/// Reads only `class` and the index — see `index.rs` for why this makes
/// classes independent (and therefore parallelizable) work units.
pub(crate) fn weave_class(
    aspects: &[&Aspect],
    class: &ClassDecl,
    matches: &ClassMatches,
) -> (ClassDecl, Vec<WovenJoinPoint>, Vec<WovenJoinPoint>) {
    let mut woven = class.clone();
    let aspect_names: Vec<&str> = aspects.iter().map(|a| a.name.as_str()).collect();

    // Call pass. Only methods with at least one matched call shadow are
    // rebuilt; everything else keeps its already-cloned body.
    let mut call_trace = Vec::new();
    for (mi, method) in class.methods.iter().enumerate() {
        let mm = &matches.methods[mi];
        if !mm.has_call_matches {
            continue;
        }
        let mut new_stmts = Vec::new();
        for stmt in &method.body.stmts {
            rewrite_call_stmt(stmt, mm, aspects, class, method, &mut new_stmts, &mut call_trace);
        }
        woven.methods[mi].body = Block::of(new_stmts);
    }

    // Execution pass, after the call pass (same phase order as the
    // naive weaver: the functional helper must reify the call-woven
    // body).
    let mut exec_trace = Vec::new();
    for (mi, method) in class.methods.iter().enumerate() {
        let mm = &matches.methods[mi];
        if mm.exec_layers.is_empty() {
            continue;
        }
        let layers: Vec<(usize, Vec<&Advice>)> = mm
            .exec_layers
            .iter()
            .map(|(k, js)| (*k, js.iter().map(|&j| &aspects[*k].advices[j]).collect()))
            .collect();
        apply_execution_layers(&mut woven, &method.name, &layers, &aspect_names, &mut exec_trace);
    }
    (woven, call_trace, exec_trace)
}

/// Emits `stmt` into `out`, wrapped with the advice the call table
/// matched for its callee. Structurally identical to the naive
/// [`naive_weave_call_stmt`], with the per-shadow pointcut evaluation
/// replaced by a table lookup.
fn rewrite_call_stmt(
    stmt: &Stmt,
    mm: &MethodMatches,
    aspects: &[&Aspect],
    class: &ClassDecl,
    method: &MethodDecl,
    out: &mut Vec<Stmt>,
    trace: &mut Vec<WovenJoinPoint>,
) {
    let callee = call_at_statement(stmt);
    let Some((callee_class, callee_name)) = callee else {
        match stmt {
            Stmt::If { cond, then_block, else_block } => {
                let mut tb = Vec::new();
                for s in &then_block.stmts {
                    rewrite_call_stmt(s, mm, aspects, class, method, &mut tb, trace);
                }
                let eb = else_block.as_ref().map(|b| {
                    let mut v = Vec::new();
                    for s in &b.stmts {
                        rewrite_call_stmt(s, mm, aspects, class, method, &mut v, trace);
                    }
                    Block::of(v)
                });
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_block: Block::of(tb),
                    else_block: eb,
                });
            }
            Stmt::While { cond, body } => {
                let mut v = Vec::new();
                for s in &body.stmts {
                    rewrite_call_stmt(s, mm, aspects, class, method, &mut v, trace);
                }
                out.push(Stmt::While { cond: cond.clone(), body: Block::of(v) });
            }
            Stmt::TryCatch { body, var, handler, finally } => {
                let mut b = Vec::new();
                for s in &body.stmts {
                    rewrite_call_stmt(s, mm, aspects, class, method, &mut b, trace);
                }
                let mut h = Vec::new();
                for s in &handler.stmts {
                    rewrite_call_stmt(s, mm, aspects, class, method, &mut h, trace);
                }
                let fin = finally.as_ref().map(|fb| {
                    let mut v = Vec::new();
                    for s in &fb.stmts {
                        rewrite_call_stmt(s, mm, aspects, class, method, &mut v, trace);
                    }
                    Block::of(v)
                });
                out.push(Stmt::TryCatch {
                    body: Block::of(b),
                    var: var.clone(),
                    handler: Block::of(h),
                    finally: fin,
                });
            }
            Stmt::Block(b) => {
                let mut v = Vec::new();
                for s in &b.stmts {
                    rewrite_call_stmt(s, mm, aspects, class, method, &mut v, trace);
                }
                out.push(Stmt::Block(Block::of(v)));
            }
            other => out.push(other.clone()),
        }
        return;
    };
    if callee_name.contains("__") {
        out.push(stmt.clone());
        return;
    }
    let key = (callee_class, callee_name);
    let matched = mm.calls.get(&key).map(Vec::as_slice).unwrap_or(&[]);
    let mut befores = Vec::new();
    let mut afters = Vec::new();
    for &(k, j) in matched {
        let advice = &aspects[k].advices[j];
        let record = WovenJoinPoint {
            class: class.name.clone(),
            method: method.name.clone(),
            aspect: aspects[k].name.clone(),
            kind: advice.kind,
            shadow: Shadow::Call { callee: key.1.clone() },
        };
        match advice.kind {
            AdviceKind::Before => {
                befores.extend(guarded_stmts(advice));
                trace.push(record);
            }
            AdviceKind::After => {
                afters.extend(guarded_stmts(advice));
                trace.push(record);
            }
            _ => {}
        }
    }
    if befores.is_empty() && afters.is_empty() {
        out.push(stmt.clone());
        return;
    }
    let jp = format!("{}.{}", key.0.clone().unwrap_or_else(|| "*".into()), key.1);
    out.push(Stmt::Block(Block::of(
        std::iter::once(Stmt::local("__jp", IrType::Str, Expr::str(jp)))
            .chain(befores)
            .chain(std::iter::once(stmt.clone()))
            .chain(afters)
            .collect(),
    )));
}

// ---------------------------------------------------------------------
// Shared execution-layer construction (naive and indexed paths)
// ---------------------------------------------------------------------

/// Applies the matched execution advice for `method_name` to `class`:
/// reifies the functional helper, builds the per-aspect layers
/// innermost-to-outermost, and redirects the public method. `layers`
/// must be non-empty, in aspect precedence order.
fn apply_execution_layers(
    class: &mut ClassDecl,
    method_name: &str,
    layers: &[(usize, Vec<&Advice>)],
    aspect_names: &[&str],
    trace: &mut Vec<WovenJoinPoint>,
) {
    let method_snapshot =
        class.find_method(method_name).expect("caller checked the method exists").clone();
    let jp_name = format!("{}.{}", class.name, method_name);
    let params = method_snapshot.params.clone();
    let ret = method_snapshot.ret.clone();
    let param_args: Vec<Expr> = params.iter().map(|p| Expr::var(&p.name)).collect();

    // 1. Reify the original body.
    let functional_name = format!("{method_name}__functional");
    let mut functional = method_snapshot.clone();
    functional.name = functional_name.clone();
    functional.annotations.clear();
    class.methods.push(functional);

    // 2. Build layers innermost (last aspect) to outermost (first).
    let mut inner_name = functional_name;
    for (k, advices) in layers.iter().rev() {
        let aspect_name = aspect_names[*k];
        // 2a. Around advice, chained so the first-declared around is
        // outermost within the aspect.
        for (j, advice) in advices
            .iter()
            .filter(|a| a.kind == AdviceKind::Around)
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            let helper_name = format!("{method_name}__around_{k}_{j}");
            let mut body = guarded_advice_body(advice);
            subst_proceed_block(&mut body, &inner_name, &param_args);
            inject_jp_local(&mut body, &jp_name);
            inject_args_local(&mut body, &param_args);
            let mut helper = MethodDecl::new(&helper_name);
            helper.params = params.clone();
            helper.ret = ret.clone();
            helper.body = body;
            class.methods.push(helper);
            inner_name = helper_name;
            trace.push(WovenJoinPoint {
                class: class.name.clone(),
                method: method_name.to_owned(),
                aspect: aspect_name.to_owned(),
                kind: AdviceKind::Around,
                shadow: Shadow::Execution,
            });
        }
        // 2b. Before/after wrapper for this aspect, outside its arounds.
        let befores: Vec<&&Advice> =
            advices.iter().filter(|a| a.kind == AdviceKind::Before).collect();
        let after_returnings: Vec<&&Advice> =
            advices.iter().filter(|a| a.kind == AdviceKind::AfterReturning).collect();
        let after_throwings: Vec<&&Advice> =
            advices.iter().filter(|a| a.kind == AdviceKind::AfterThrowing).collect();
        let afters: Vec<&&Advice> =
            advices.iter().filter(|a| a.kind == AdviceKind::After).collect();
        if befores.is_empty()
            && after_returnings.is_empty()
            && after_throwings.is_empty()
            && afters.is_empty()
        {
            continue;
        }
        let helper_name = format!("{method_name}__layer_{k}");
        let inner_call = Expr::call_this(inner_name.clone(), param_args.clone());
        let non_void = ret != IrType::Void;

        let mut ctx_block = Block::default();
        inject_jp_local(&mut ctx_block, &jp_name);
        inject_args_local(&mut ctx_block, &param_args);
        let mut stmts: Vec<Stmt> = ctx_block.stmts;
        for b in &befores {
            stmts.extend(guarded_stmts(b));
            trace.push(jp_record(class, method_name, aspect_name, AdviceKind::Before));
        }
        let mut try_body: Vec<Stmt> = Vec::new();
        if non_void {
            try_body.push(Stmt::local("__result", ret.clone(), inner_call));
        } else {
            try_body.push(Stmt::Expr(inner_call));
        }
        for a in &after_returnings {
            try_body.extend(guarded_stmts(a));
            trace.push(jp_record(class, method_name, aspect_name, AdviceKind::AfterReturning));
        }
        if non_void {
            try_body.push(Stmt::ret(Expr::var("__result")));
        } else {
            try_body.push(Stmt::Return(None));
        }
        let needs_catch = !after_throwings.is_empty();
        let needs_finally = !afters.is_empty();
        if needs_catch || needs_finally {
            let mut handler = Vec::new();
            for a in &after_throwings {
                handler.extend(guarded_stmts(a));
                trace.push(jp_record(class, method_name, aspect_name, AdviceKind::AfterThrowing));
            }
            handler.push(Stmt::Throw(Expr::var("__error")));
            let mut finally = Vec::new();
            for a in &afters {
                finally.extend(guarded_stmts(a));
                trace.push(jp_record(class, method_name, aspect_name, AdviceKind::After));
            }
            stmts.push(Stmt::TryCatch {
                body: Block::of(try_body),
                var: "__error".into(),
                handler: Block::of(handler),
                finally: if needs_finally { Some(Block::of(finally)) } else { None },
            });
        } else {
            stmts.extend(try_body);
        }

        let mut helper = MethodDecl::new(&helper_name);
        helper.params = params.clone();
        helper.ret = ret.clone();
        helper.body = Block::of(stmts);
        class.methods.push(helper);
        inner_name = helper_name;
    }

    // 3. The public method delegates to the outermost layer.
    let delegate_call = Expr::call_this(inner_name, param_args);
    let public = class.find_method_mut(method_name).expect("still present");
    public.body = if ret == IrType::Void {
        Block::of(vec![Stmt::Expr(delegate_call), Stmt::Return(None)])
    } else {
        Block::of(vec![Stmt::ret(delegate_call)])
    };
}

// ---------------------------------------------------------------------
// Naive reference implementation (differential oracle + "before" bench)
// ---------------------------------------------------------------------

fn naive_weave_executions(
    aspects: &[&Aspect],
    program: &mut Program,
    trace: &mut Vec<WovenJoinPoint>,
) {
    for class_idx in 0..program.classes.len() {
        let method_names: Vec<String> =
            program.classes[class_idx].methods.iter().map(|m| m.name.clone()).collect();
        for method_name in method_names {
            naive_weave_one_execution(
                aspects,
                &mut program.classes[class_idx],
                &method_name,
                trace,
            );
        }
    }
}

fn naive_weave_one_execution(
    aspects: &[&Aspect],
    class: &mut ClassDecl,
    method_name: &str,
    trace: &mut Vec<WovenJoinPoint>,
) {
    // Already-woven methods (their functional helper exists) are left
    // alone: weaving is idempotent per method.
    if class.find_method(&format!("{method_name}__functional")).is_some()
        || method_name.contains("__")
    {
        return;
    }
    // Gather matching advice per aspect, preserving aspect order —
    // evaluated from scratch for every method, which is exactly what the
    // MatchIndex exists to avoid.
    let method_snapshot =
        class.find_method(method_name).expect("caller iterates real names").clone();
    let mut layers: Vec<(usize, Vec<&Advice>)> = Vec::new();
    for (k, aspect) in aspects.iter().enumerate() {
        let matching: Vec<&Advice> = aspect
            .advices
            .iter()
            .filter(|a| a.pointcut.matches_execution(class, &method_snapshot))
            .collect();
        if !matching.is_empty() {
            layers.push((k, matching));
        }
    }
    if layers.is_empty() {
        return;
    }
    let aspect_names: Vec<&str> = aspects.iter().map(|a| a.name.as_str()).collect();
    apply_execution_layers(class, method_name, &layers, &aspect_names, trace);
}

fn naive_weave_calls(aspects: &[&Aspect], program: &mut Program, trace: &mut Vec<WovenJoinPoint>) {
    for class_idx in 0..program.classes.len() {
        for method_idx in 0..program.classes[class_idx].methods.len() {
            let class_snapshot = program.classes[class_idx].clone();
            let method_snapshot = class_snapshot.methods[method_idx].clone();
            // Skip advice-generated helpers as *containers*: their
            // call statements are delegation plumbing.
            if method_snapshot.name.contains("__") {
                continue;
            }
            let mut new_stmts = Vec::new();
            for stmt in &method_snapshot.body.stmts {
                naive_weave_call_stmt(
                    aspects,
                    stmt,
                    &class_snapshot,
                    &method_snapshot,
                    &mut new_stmts,
                    trace,
                );
            }
            program.classes[class_idx].methods[method_idx].body = Block::of(new_stmts);
        }
    }
}

/// Emits `stmt` into `out`, surrounded by any matching call advice.
/// Call shadows are only recognized at statement position (the IR has
/// no statement-level expression evaluation order to exploit).
fn naive_weave_call_stmt(
    aspects: &[&Aspect],
    stmt: &Stmt,
    class: &ClassDecl,
    method: &MethodDecl,
    out: &mut Vec<Stmt>,
    trace: &mut Vec<WovenJoinPoint>,
) {
    let callee = call_at_statement(stmt);
    let Some((callee_class, callee_name)) = callee else {
        // Recurse into structured statements so nested shadows are
        // found.
        match stmt {
            Stmt::If { cond, then_block, else_block } => {
                let mut tb = Vec::new();
                for s in &then_block.stmts {
                    naive_weave_call_stmt(aspects, s, class, method, &mut tb, trace);
                }
                let eb = else_block.as_ref().map(|b| {
                    let mut v = Vec::new();
                    for s in &b.stmts {
                        naive_weave_call_stmt(aspects, s, class, method, &mut v, trace);
                    }
                    Block::of(v)
                });
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_block: Block::of(tb),
                    else_block: eb,
                });
            }
            Stmt::While { cond, body } => {
                let mut v = Vec::new();
                for s in &body.stmts {
                    naive_weave_call_stmt(aspects, s, class, method, &mut v, trace);
                }
                out.push(Stmt::While { cond: cond.clone(), body: Block::of(v) });
            }
            Stmt::TryCatch { body, var, handler, finally } => {
                let mut b = Vec::new();
                for s in &body.stmts {
                    naive_weave_call_stmt(aspects, s, class, method, &mut b, trace);
                }
                let mut h = Vec::new();
                for s in &handler.stmts {
                    naive_weave_call_stmt(aspects, s, class, method, &mut h, trace);
                }
                let fin = finally.as_ref().map(|fb| {
                    let mut v = Vec::new();
                    for s in &fb.stmts {
                        naive_weave_call_stmt(aspects, s, class, method, &mut v, trace);
                    }
                    Block::of(v)
                });
                out.push(Stmt::TryCatch {
                    body: Block::of(b),
                    var: var.clone(),
                    handler: Block::of(h),
                    finally: fin,
                });
            }
            Stmt::Block(b) => {
                let mut v = Vec::new();
                for s in &b.stmts {
                    naive_weave_call_stmt(aspects, s, class, method, &mut v, trace);
                }
                out.push(Stmt::Block(Block::of(v)));
            }
            other => out.push(other.clone()),
        }
        return;
    };
    if callee_name.contains("__") {
        out.push(stmt.clone());
        return;
    }
    let callee_class_ref = callee_class.as_deref();
    let mut befores = Vec::new();
    let mut afters = Vec::new();
    for aspect in aspects {
        for advice in &aspect.advices {
            if !advice.pointcut.selects_calls() {
                continue;
            }
            if advice.pointcut.matches_call(class, method, callee_class_ref, &callee_name) {
                let record = WovenJoinPoint {
                    class: class.name.clone(),
                    method: method.name.clone(),
                    aspect: aspect.name.clone(),
                    kind: advice.kind,
                    shadow: Shadow::Call { callee: callee_name.clone() },
                };
                match advice.kind {
                    AdviceKind::Before => {
                        befores.extend(guarded_stmts(advice));
                        trace.push(record);
                    }
                    AdviceKind::After => {
                        afters.extend(guarded_stmts(advice));
                        trace.push(record);
                    }
                    _ => {}
                }
            }
        }
    }
    if befores.is_empty() && afters.is_empty() {
        out.push(stmt.clone());
        return;
    }
    let jp = format!("{}.{}", callee_class.clone().unwrap_or_else(|| "*".into()), callee_name);
    out.push(Stmt::Block(Block::of(
        std::iter::once(Stmt::local("__jp", IrType::Str, Expr::str(jp)))
            .chain(befores)
            .chain(std::iter::once(stmt.clone()))
            .chain(afters)
            .collect(),
    )));
}

fn jp_record(
    class: &ClassDecl,
    method: &str,
    aspect_name: &str,
    kind: AdviceKind,
) -> WovenJoinPoint {
    WovenJoinPoint {
        class: class.name.clone(),
        method: method.to_owned(),
        aspect: aspect_name.to_owned(),
        kind,
        shadow: Shadow::Execution,
    }
}

/// Recognizes a statement-position call and returns
/// `(callee class if resolvable, callee method)`.
pub(crate) fn call_at_statement(stmt: &Stmt) -> Option<(Option<String>, String)> {
    let expr = match stmt {
        Stmt::Expr(e) => e,
        Stmt::Local { init: Some(e), .. } => e,
        Stmt::Assign { value, .. } => value,
        Stmt::Return(Some(e)) => e,
        _ => return None,
    };
    match expr {
        Expr::Call { recv, method, .. } => {
            let class = match recv.as_deref() {
                None | Some(Expr::This) => None, // self-call: class unknown here
                Some(Expr::New { class, .. }) => Some(class.clone()),
                _ => None,
            };
            Some((class, method.clone()))
        }
        _ => None,
    }
}

/// The runtime key identifying a cflow context: the inner pointcut's
/// canonical text.
fn cflow_key(inner: &crate::pointcut::Pointcut) -> String {
    inner.to_string()
}

/// Wraps an advice body in the runtime guards its `cflow` conjuncts
/// require: around advice bypasses straight to `proceed()` outside the
/// cflow; other kinds simply skip their statements.
fn guarded_advice_body(advice: &Advice) -> Block {
    let conjuncts = advice.pointcut.cflow_conjuncts().expect("validated before weaving started");
    let mut body = advice.body.clone();
    for inner in conjuncts {
        let active = Expr::intrinsic(CFLOW_ACTIVE, vec![Expr::str(cflow_key(inner))]);
        body = match advice.kind {
            AdviceKind::Around => {
                let mut stmts = vec![Stmt::If {
                    cond: Expr::Unary { op: IrUnOp::Not, operand: Box::new(active) },
                    then_block: Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
                    else_block: None,
                }];
                stmts.extend(body.stmts);
                Block::of(stmts)
            }
            _ => Block::of(vec![Stmt::If { cond: active, then_block: body, else_block: None }]),
        };
    }
    body
}

fn guarded_stmts(advice: &Advice) -> Vec<Stmt> {
    guarded_advice_body(advice).stmts
}

/// The synthetic around advice maintaining the cflow counter on the
/// cflow-defining join points: enter, proceed (exception-safe), exit.
fn cflow_instrumentation_body(key: &str) -> Block {
    Block::of(vec![
        Stmt::Expr(Expr::intrinsic(CFLOW_ENTER, vec![Expr::str(key)])),
        Stmt::Local { name: "__cf_r".into(), ty: IrType::Str, init: None },
        Stmt::TryCatch {
            body: Block::of(vec![Stmt::set_var("__cf_r", Expr::Proceed(vec![]))]),
            var: "__cf_e".into(),
            handler: Block::of(vec![
                Stmt::Expr(Expr::intrinsic(CFLOW_EXIT, vec![Expr::str(key)])),
                Stmt::Throw(Expr::var("__cf_e")),
            ]),
            finally: None,
        },
        Stmt::Expr(Expr::intrinsic(CFLOW_EXIT, vec![Expr::str(key)])),
        Stmt::ret(Expr::var("__cf_r")),
    ])
}

/// Injects the join-point context locals at the head of an
/// advice-derived body: `__jp` (`"Class.method"`), `__method` (the bare
/// method name) and `__args` (a list of the original arguments).
fn inject_jp_local(body: &mut Block, jp: &str) {
    let method = jp.rsplit('.').next().unwrap_or(jp);
    body.stmts.insert(0, Stmt::local("__jp", IrType::Str, Expr::str(jp)));
    body.stmts.insert(1, Stmt::local("__method", IrType::Str, Expr::str(method)));
}

/// Injects `local __args = [p1, p2, ...]` after the other context locals.
fn inject_args_local(body: &mut Block, param_args: &[Expr]) {
    body.stmts.insert(
        2,
        Stmt::Local {
            name: "__args".into(),
            ty: IrType::List(Box::new(IrType::Str)),
            init: Some(Expr::ListLit(param_args.to_vec())),
        },
    );
}

/// Replaces every `proceed(args)` in the block with a call to
/// `inner_name`; empty-arg `proceed()` forwards the original parameters.
fn subst_proceed_block(block: &mut Block, inner_name: &str, param_args: &[Expr]) {
    for stmt in &mut block.stmts {
        subst_proceed_stmt(stmt, inner_name, param_args);
    }
}

fn subst_proceed_stmt(stmt: &mut Stmt, inner: &str, params: &[Expr]) {
    match stmt {
        Stmt::Local { init, .. } => {
            if let Some(e) = init {
                subst_proceed_expr(e, inner, params);
            }
        }
        Stmt::Assign { target, value } => {
            if let LValue::Field { recv, .. } = target {
                subst_proceed_expr(recv, inner, params);
            }
            subst_proceed_expr(value, inner, params);
        }
        Stmt::Expr(e) | Stmt::Throw(e) => subst_proceed_expr(e, inner, params),
        Stmt::If { cond, then_block, else_block } => {
            subst_proceed_expr(cond, inner, params);
            subst_proceed_block(then_block, inner, params);
            if let Some(eb) = else_block {
                subst_proceed_block(eb, inner, params);
            }
        }
        Stmt::While { cond, body } => {
            subst_proceed_expr(cond, inner, params);
            subst_proceed_block(body, inner, params);
        }
        Stmt::Return(Some(e)) => subst_proceed_expr(e, inner, params),
        Stmt::Return(None) => {}
        Stmt::TryCatch { body, handler, finally, .. } => {
            subst_proceed_block(body, inner, params);
            subst_proceed_block(handler, inner, params);
            if let Some(fin) = finally {
                subst_proceed_block(fin, inner, params);
            }
        }
        Stmt::Block(b) => subst_proceed_block(b, inner, params),
    }
}

fn subst_proceed_expr(expr: &mut Expr, inner: &str, params: &[Expr]) {
    match expr {
        Expr::Proceed(args) => {
            let call_args = if args.is_empty() {
                params.to_vec()
            } else {
                let mut a = std::mem::take(args);
                for e in &mut a {
                    subst_proceed_expr(e, inner, params);
                }
                a
            };
            *expr = Expr::call_this(inner.to_owned(), call_args);
        }
        Expr::Field { recv, .. } => subst_proceed_expr(recv, inner, params),
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                subst_proceed_expr(r, inner, params);
            }
            for a in args {
                subst_proceed_expr(a, inner, params);
            }
        }
        Expr::New { args, .. } | Expr::Intrinsic { args, .. } | Expr::ListLit(args) => {
            for a in args {
                subst_proceed_expr(a, inner, params);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            subst_proceed_expr(lhs, inner, params);
            subst_proceed_expr(rhs, inner, params);
        }
        Expr::Unary { operand, .. } => subst_proceed_expr(operand, inner, params),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointcut::parse_pointcut;
    use comet_codegen::{check_program, Param};

    fn sample_program() -> Program {
        let mut p = Program::new("app");
        let mut bank = ClassDecl::new("Bank");
        let mut transfer = MethodDecl::new("transfer");
        transfer.params.push(Param::new("amount", IrType::Int));
        transfer.ret = IrType::Bool;
        transfer.body = Block::of(vec![Stmt::ret(Expr::bool(true))]);
        bank.methods.push(transfer);
        let mut audit = MethodDecl::new("audit");
        audit.body = Block::of(vec![Stmt::Expr(Expr::call_this("helper", vec![]))]);
        bank.methods.push(audit);
        bank.methods.push(MethodDecl::new("helper"));
        p.classes.push(bank);
        p
    }

    fn log_stmt(tag: &str) -> Stmt {
        Stmt::Expr(Expr::intrinsic("log.emit", vec![Expr::str("info"), Expr::str(tag)]))
    }

    #[test]
    fn before_advice_wraps_execution() {
        let aspect = Aspect::new("logging").with_advice(Advice::new(
            AdviceKind::Before,
            parse_pointcut("execution(Bank.transfer)").unwrap(),
            Block::of(vec![log_stmt("before")]),
        ));
        let result = Weaver::new(vec![aspect]).weave(&sample_program()).unwrap();
        assert_eq!(result.trace.len(), 1);
        assert_eq!(result.trace[0].kind, AdviceKind::Before);
        let bank = result.program.find_class("Bank").unwrap();
        assert!(bank.find_method("transfer__functional").is_some());
        assert!(bank.find_method("transfer__layer_0").is_some());
        // Public signature unchanged.
        let public = bank.find_method("transfer").unwrap();
        assert_eq!(public.ret, IrType::Bool);
        assert_eq!(public.params.len(), 1);
        assert!(check_program(&result.program).is_empty());
    }

    #[test]
    fn no_matching_advice_leaves_program_untouched() {
        let aspect = Aspect::new("logging").with_advice(Advice::new(
            AdviceKind::Before,
            parse_pointcut("execution(Nothing.matches)").unwrap(),
            Block::of(vec![log_stmt("before")]),
        ));
        let p = sample_program();
        let result = Weaver::new(vec![aspect]).weave(&p).unwrap();
        assert_eq!(result.program, p);
        assert!(result.trace.is_empty());
    }

    #[test]
    fn around_advice_substitutes_proceed() {
        let aspect = Aspect::new("tx").with_advice(Advice::new(
            AdviceKind::Around,
            parse_pointcut("execution(Bank.transfer)").unwrap(),
            Block::of(vec![
                Stmt::Expr(Expr::intrinsic("tx.begin", vec![Expr::str("rc")])),
                Stmt::local("r", IrType::Bool, Expr::Proceed(vec![])),
                Stmt::Expr(Expr::intrinsic("tx.commit", vec![])),
                Stmt::ret(Expr::var("r")),
            ]),
        ));
        let result = Weaver::new(vec![aspect]).weave(&sample_program()).unwrap();
        let bank = result.program.find_class("Bank").unwrap();
        let around = bank.find_method("transfer__around_0_0").unwrap();
        // Proceed was replaced by a call to the functional helper with the
        // original parameter forwarded.
        let has_call = around.body.stmts.iter().any(|s| {
            matches!(
                s,
                Stmt::Local { init: Some(Expr::Call { method, args, .. }), .. }
                    if method == "transfer__functional"
                        && args == &vec![Expr::var("amount")]
            )
        });
        assert!(has_call, "{:?}", around.body);
        assert!(check_program(&result.program).is_empty());
    }

    #[test]
    fn precedence_first_aspect_is_outermost() {
        let outer = Aspect::new("outer").with_advice(Advice::new(
            AdviceKind::Before,
            parse_pointcut("execution(Bank.transfer)").unwrap(),
            Block::of(vec![log_stmt("outer")]),
        ));
        let inner = Aspect::new("inner").with_advice(Advice::new(
            AdviceKind::Before,
            parse_pointcut("execution(Bank.transfer)").unwrap(),
            Block::of(vec![log_stmt("inner")]),
        ));
        let result = Weaver::new(vec![outer, inner]).weave(&sample_program()).unwrap();
        let bank = result.program.find_class("Bank").unwrap();
        // The public method delegates to layer_0 (outer aspect), which
        // delegates to layer_1 (inner aspect).
        let public = bank.find_method("transfer").unwrap();
        let delegates_to = |m: &MethodDecl| -> Option<String> {
            m.body.stmts.iter().find_map(|s| match s {
                Stmt::Return(Some(Expr::Call { method, .. })) => Some(method.clone()),
                Stmt::Local { init: Some(Expr::Call { method, .. }), .. } => Some(method.clone()),
                Stmt::Expr(Expr::Call { method, .. }) => Some(method.clone()),
                _ => None,
            })
        };
        assert_eq!(delegates_to(public).unwrap(), "transfer__layer_0");
        let layer0 = bank.find_method("transfer__layer_0").unwrap();
        assert_eq!(delegates_to(layer0).unwrap(), "transfer__layer_1");
        let layer1 = bank.find_method("transfer__layer_1").unwrap();
        assert_eq!(delegates_to(layer1).unwrap(), "transfer__functional");
    }

    #[test]
    fn after_throwing_and_finally_structure() {
        let aspect = Aspect::new("x")
            .with_advice(Advice::new(
                AdviceKind::AfterThrowing,
                parse_pointcut("execution(Bank.transfer)").unwrap(),
                Block::of(vec![log_stmt("boom")]),
            ))
            .with_advice(Advice::new(
                AdviceKind::After,
                parse_pointcut("execution(Bank.transfer)").unwrap(),
                Block::of(vec![log_stmt("finally")]),
            ));
        let result = Weaver::new(vec![aspect]).weave(&sample_program()).unwrap();
        let bank = result.program.find_class("Bank").unwrap();
        let layer = bank.find_method("transfer__layer_0").unwrap();
        let has_try = layer.body.stmts.iter().any(|s| {
            matches!(s, Stmt::TryCatch { handler, finally, .. }
                if !handler.stmts.is_empty() && finally.is_some())
        });
        assert!(has_try);
        assert_eq!(result.trace.len(), 2);
    }

    #[test]
    fn call_advice_wraps_statement_calls() {
        let aspect = Aspect::new("client-log")
            .with_advice(Advice::new(
                AdviceKind::Before,
                parse_pointcut("call(*.helper)").unwrap(),
                Block::of(vec![log_stmt("pre-call")]),
            ))
            .with_advice(Advice::new(
                AdviceKind::After,
                parse_pointcut("call(*.helper)").unwrap(),
                Block::of(vec![log_stmt("post-call")]),
            ));
        let result = Weaver::new(vec![aspect]).weave(&sample_program()).unwrap();
        let audit = result.program.find_method("Bank", "audit").unwrap();
        // The call statement became a block: [__jp, before, call, after].
        match &audit.body.stmts[0] {
            Stmt::Block(b) => assert_eq!(b.stmts.len(), 4),
            other => panic!("expected block, got {other:?}"),
        }
        assert_eq!(result.trace.len(), 2);
        assert!(matches!(&result.trace[0].shadow, Shadow::Call { callee } if callee == "helper"));
    }

    #[test]
    fn around_at_call_shadow_is_rejected() {
        let aspect = Aspect::new("bad").with_advice(Advice::new(
            AdviceKind::Around,
            parse_pointcut("call(*.helper)").unwrap(),
            Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
        ));
        let err = Weaver::new(vec![aspect]).weave(&sample_program()).unwrap_err();
        assert!(matches!(err, WeaveError::UnsupportedCallAdvice { .. }));
        assert!(err.to_string().contains("around"));
    }

    #[test]
    fn weaving_twice_does_not_re_advise_helpers() {
        let aspect = Aspect::new("logging").with_advice(Advice::new(
            AdviceKind::Before,
            parse_pointcut("execution(Bank.transfer)").unwrap(),
            Block::of(vec![log_stmt("before")]),
        ));
        let weaver = Weaver::new(vec![aspect]);
        let once = weaver.weave(&sample_program()).unwrap();
        let twice = weaver.weave(&once.program).unwrap();
        // The public method matches again (it kept its name) but is
        // detected as already woven, so the second weave is a no-op.
        assert_eq!(once.trace.len(), 1);
        assert!(twice.trace.is_empty());
        assert_eq!(twice.program, once.program);
        assert!(check_program(&twice.program).is_empty());
    }

    #[test]
    fn void_method_weaving() {
        let mut p = Program::new("app");
        let mut c = ClassDecl::new("A");
        let mut m = MethodDecl::new("fire");
        m.body = Block::of(vec![Stmt::Expr(Expr::intrinsic(
            "log.emit",
            vec![Expr::str("info"), Expr::str("core")],
        ))]);
        c.methods.push(m);
        p.classes.push(c);
        let aspect = Aspect::new("x").with_advice(Advice::new(
            AdviceKind::AfterReturning,
            parse_pointcut("execution(A.fire)").unwrap(),
            Block::of(vec![log_stmt("done")]),
        ));
        let result = Weaver::new(vec![aspect]).weave(&p).unwrap();
        let layer = result.program.find_method("A", "fire__layer_0").unwrap();
        // Void: no __result local, call then advice then plain return.
        assert!(layer.body.stmts.iter().all(|s| !matches!(
            s,
            Stmt::Local { name, .. } if name == "__result"
        )));
        assert!(check_program(&result.program).is_empty());
    }

    /// A mixed-shadow program exercising every advice kind, calls in
    /// nested statements, cflow, and multiple classes.
    fn mixed_program() -> Program {
        let mut p = sample_program();
        let mut teller = ClassDecl::new("Teller");
        let mut serve = MethodDecl::new("serve");
        serve.params.push(Param::new("n", IrType::Int));
        serve.body = Block::of(vec![
            Stmt::Expr(Expr::call_this("audit", vec![])),
            Stmt::While {
                cond: Expr::bool(true),
                body: Block::of(vec![Stmt::Expr(Expr::call_this("audit", vec![]))]),
            },
            Stmt::If {
                cond: Expr::bool(false),
                then_block: Block::of(vec![Stmt::Expr(Expr::call_this("transfer", vec![]))]),
                else_block: Some(Block::of(vec![Stmt::Return(None)])),
            },
        ]);
        teller.methods.push(serve);
        p.classes.push(teller);
        p
    }

    fn mixed_aspects() -> Vec<Aspect> {
        vec![
            Aspect::new("log")
                .with_advice(Advice::new(
                    AdviceKind::Before,
                    parse_pointcut("execution(*.*)").unwrap(),
                    Block::of(vec![log_stmt("b")]),
                ))
                .with_advice(Advice::new(
                    AdviceKind::After,
                    parse_pointcut("call(*.audit)").unwrap(),
                    Block::of(vec![log_stmt("post")]),
                )),
            Aspect::new("tx").with_advice(Advice::new(
                AdviceKind::Around,
                parse_pointcut("execution(Bank.transfer) && cflow(execution(Teller.serve))")
                    .unwrap(),
                Block::of(vec![Stmt::ret(Expr::Proceed(vec![]))]),
            )),
            Aspect::new("audit").with_advice(Advice::new(
                AdviceKind::AfterReturning,
                parse_pointcut("execution(Bank.*) && args(1)").unwrap(),
                Block::of(vec![log_stmt("ret")]),
            )),
        ]
    }

    #[test]
    fn weave_traced_records_one_event_per_join_point() {
        let weaver = Weaver::new(mixed_aspects());
        let p = mixed_program();
        let obs = comet_obs::Collector::enabled();
        let traced = weaver.weave_traced(&p, &obs).unwrap();
        let plain = weaver.weave(&p).unwrap();
        assert_eq!(traced, plain, "tracing must not perturb the weave");
        let trace = obs.take();
        let advice_events: Vec<&comet_obs::Event> =
            trace.events.iter().filter(|e| e.name == "weave.advice").collect();
        assert_eq!(advice_events.len(), plain.trace.len());
        // Every event sits inside a class span under the weave pass.
        let pass = &trace.spans[0];
        assert_eq!(pass.name, "weave");
        assert_eq!(
            comet_obs::Trace::attr(&pass.attrs, "joinpoints"),
            Some(plain.trace.len().to_string().as_str())
        );
        for e in &advice_events {
            let class_span = &trace.spans[e.span.unwrap() as usize];
            assert!(class_span.name.starts_with("class:"), "{class_span:?}");
            assert_eq!(class_span.parent, Some(pass.id));
        }
        // Determinism across runs and thread counts.
        let retrace = |threads: usize| {
            let obs = comet_obs::Collector::enabled();
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
            pool.install(|| weaver.weave_traced(&p, &obs)).unwrap();
            obs.take()
        };
        assert_eq!(retrace(1), retrace(4));
    }

    #[test]
    fn indexed_weave_equals_naive_on_mixed_program() {
        let weaver = Weaver::new(mixed_aspects());
        let p = mixed_program();
        let indexed = weaver.weave(&p).unwrap();
        let naive = weaver.weave_naive(&p).unwrap();
        assert_eq!(indexed.program, naive.program);
        assert_eq!(indexed.trace, naive.trace);
        assert!(check_program(&indexed.program).is_empty());
    }

    #[test]
    fn indexed_weave_equals_naive_under_pinned_thread_counts() {
        let weaver = Weaver::new(mixed_aspects());
        let p = mixed_program();
        let reference = weaver.weave_naive(&p).unwrap();
        for threads in [1, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
            let woven = pool.install(|| weaver.weave(&p)).unwrap();
            assert_eq!(woven, reference, "diverged at {threads} threads");
        }
    }
}
