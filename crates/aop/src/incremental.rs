//! Incremental re-weaving: splice a dirty subset of classes into the
//! previous [`WeaveResult`] instead of re-weaving the whole program.
//!
//! ## Why per-class splicing is sound
//!
//! The critical-pair argument in `index.rs` established that classes
//! are independent units of work: weaving a class reads only that
//! class's declaration plus the (read-only) aspect list, and writes
//! only that class. It follows that a class whose *input declaration is
//! unchanged* weaves to the same output — so a cached woven class can
//! be reused verbatim whenever its pre-weave declaration is equal to
//! the new one. The dirty-class set steers *which* classes are even
//! candidates for re-weaving; the per-class input-equality check makes
//! correctness independent of the dirty set's precision (an over-dirty
//! set costs time, an under-dirty set is caught by the equality guard
//! only when the declaration really changed — callers derive the set
//! conservatively from the model's [`DirtySet`](comet_model::DirtySet)
//! closure, see `comet-model`'s `dirty` module).
//!
//! The reassembled trace keeps the full weaver's global phase order
//! (all call records in class order, then all execution records in
//! class order), so the spliced result is **byte-identical** to a full
//! [`Weaver::weave`] — the full weaver is retained as the differential
//! oracle and the property suite asserts exactly this equality.
//!
//! ## Cost model: the result is shared, not copied
//!
//! [`IncrementalWeaver::weave_at`] returns `Arc<WeaveResult>` and the
//! cache keeps a twin handle. A one-class edit must therefore never pay
//! an O(program) copy:
//!
//! * **full hit** (unchanged revision and input) — the cached handle is
//!   cloned; O(1) beyond the input-equality verification;
//! * **in-place splice** — when the class topology is unchanged (same
//!   slot count, every reused slot maps to its own position) and the
//!   caller has dropped the previous handle, `Arc::try_unwrap` recovers
//!   the buffer and the re-woven classes overwrite their slots; trace
//!   segments are replaced back-to-front with `Vec::splice`, which
//!   moves records instead of cloning them;
//! * **reassembly fallback** — topology changes (class added, removed,
//!   reordered) or a still-live previous handle fall back to copying
//!   the reused slots out of the shared result. Correctness never
//!   depends on which path ran.
//!
//! ## Cache keying and invalidation
//!
//! The cache is keyed by the caller-supplied *revision* (the model
//! generation counter feeding the functional program). Revisions are
//! only comparable within one model instance — clones and undo-restored
//! snapshots restart the counter — so a revision-equal hit additionally
//! verifies per-class input equality before short-circuiting. Aspect
//! changes must be handled by the owner (the lifecycle fingerprints its
//! aspect list and replaces the whole `IncrementalWeaver`).

use crate::index::{call_advice_candidates, index_class};
use crate::weaver::{
    effective_aspects, use_sequential, weave_class, WeaveError, WeavePath, WeaveResult, Weaver,
    WovenJoinPoint,
};
use comet_codegen::{ClassDecl, Program};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// What one [`IncrementalWeaver::weave_at`] call did — feeds the
/// `weave.incremental.*` obs counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalStats {
    /// True when the previous result was reused, fully (unchanged
    /// revision) or partially (dirty-subset splice).
    pub hit: bool,
    /// Classes actually re-woven this call.
    pub rewoven: usize,
    /// Classes in the program.
    pub total: usize,
}

/// Per-slot cache metadata: the pre-weave declaration the slot was
/// woven from and how many trace records it contributed to each phase.
/// The woven class itself lives in the shared result's program — slot
/// `i` here describes `result.program.classes[i]`.
#[derive(Debug, Clone)]
struct CachedClass {
    input: ClassDecl,
    calls: usize,
    execs: usize,
}

/// One freshly woven slot, staged for splicing.
struct FreshClass {
    slot: usize,
    woven: ClassDecl,
    calls: Vec<WovenJoinPoint>,
    execs: Vec<WovenJoinPoint>,
}

#[derive(Debug, Clone)]
struct CachedWeave {
    revision: u64,
    /// Aligned with `result.program.classes`.
    classes: Vec<CachedClass>,
    /// The woven result, shared with the last caller. Once the caller
    /// drops its handle the next splice reuses this buffer in place.
    result: Arc<WeaveResult>,
}

/// Start offsets of each slot's call and execution trace segments in
/// the flat trace (all call segments in slot order, then all execution
/// segments in slot order).
fn trace_offsets(classes: &[CachedClass]) -> (Vec<usize>, Vec<usize>) {
    let total_calls: usize = classes.iter().map(|s| s.calls).sum();
    let mut call_off = Vec::with_capacity(classes.len());
    let mut exec_off = Vec::with_capacity(classes.len());
    let (mut c, mut e) = (0, total_calls);
    for s in classes {
        call_off.push(c);
        c += s.calls;
        exec_off.push(e);
        e += s.execs;
    }
    (call_off, exec_off)
}

/// A [`Weaver`] with a one-deep result cache and dirty-set splicing.
#[derive(Debug, Clone)]
pub struct IncrementalWeaver {
    weaver: Weaver,
    cached: Option<CachedWeave>,
}

impl IncrementalWeaver {
    /// Wraps `weaver`; the first [`IncrementalWeaver::weave_at`] is
    /// necessarily a full weave.
    pub fn new(weaver: Weaver) -> Self {
        IncrementalWeaver { weaver, cached: None }
    }

    /// The underlying weaver (e.g. for oracle comparisons).
    pub fn weaver(&self) -> &Weaver {
        &self.weaver
    }

    /// Drops the cached result; the next weave runs in full.
    pub fn invalidate(&mut self) {
        self.cached = None;
    }

    /// Weaves `program` at model `revision`, reusing the previous
    /// result where the dirty-class set allows:
    ///
    /// * same revision and equal input program → return the cached
    ///   result handle, zero classes re-woven;
    /// * `dirty` given → re-weave only classes that are named dirty or
    ///   whose declaration changed, splice everything else from cache;
    /// * `dirty` is `None` (unknown delta) or no cache → full weave.
    ///
    /// The result is byte-identical to [`Weaver::weave`] on the same
    /// program in every case (the handle is shared with the internal
    /// cache; see the module docs for the cost model).
    ///
    /// # Errors
    /// Same conditions as [`Weaver::weave`].
    pub fn weave_at(
        &mut self,
        revision: u64,
        program: &Program,
        dirty: Option<&BTreeSet<String>>,
    ) -> Result<(Arc<WeaveResult>, IncrementalStats), WeaveError> {
        let total = program.classes.len();
        if let Some(cached) = &self.cached {
            // Revision equality alone is not trusted (restored
            // snapshots restart the counter): verify the input too.
            // This is a comparison, not a copy — the hit itself is an
            // `Arc` clone.
            if cached.revision == revision
                && cached.result.program.name == program.name
                && cached.classes.len() == total
                && cached.classes.iter().zip(&program.classes).all(|(cc, c)| cc.input == *c)
            {
                let result = Arc::clone(&cached.result);
                return Ok((result, IncrementalStats { hit: true, rewoven: 0, total }));
            }
        }

        let instrumentation = self.weaver.validate_and_instrument()?;
        let aspects = effective_aspects(self.weaver.aspects(), instrumentation.as_ref());
        let call_advices = call_advice_candidates(&aspects);

        // Which cached slot each output slot reuses. Duplicate class
        // names are consumed in declaration order.
        let plan: Vec<Option<usize>> = match (&self.cached, dirty) {
            (Some(cached), Some(dirty)) => {
                let mut by_name: HashMap<&str, VecDeque<usize>> = HashMap::new();
                for (i, cc) in cached.classes.iter().enumerate() {
                    by_name.entry(cc.input.name.as_str()).or_default().push_back(i);
                }
                program
                    .classes
                    .iter()
                    .map(|class| {
                        if dirty.contains(&class.name) {
                            return None;
                        }
                        let slot = by_name.get_mut(class.name.as_str())?.pop_front()?;
                        (cached.classes[slot].input == *class).then_some(slot)
                    })
                    .collect()
            }
            _ => vec![None; total],
        };

        let rewoven = plan.iter().filter(|p| p.is_none()).count();
        let hit = self.cached.is_some() && rewoven < total;
        let sequential = use_sequential(rewoven);
        let path = if sequential { WeavePath::Sequential } else { WeavePath::Parallel };

        // Weave the slots the plan could not fill.
        let todo: Vec<usize> = (0..total).filter(|i| plan[*i].is_none()).collect();
        let weave_one = |i: &usize| -> FreshClass {
            let class = &program.classes[*i];
            let matches = index_class(&aspects, &call_advices, class);
            let (woven, calls, execs) = weave_class(&aspects, class, &matches);
            FreshClass { slot: *i, woven, calls, execs }
        };
        let fresh: Vec<FreshClass> = if sequential {
            todo.iter().map(weave_one).collect()
        } else {
            todo.par_iter().map(weave_one).collect()
        };

        // In-place splice needs an unchanged topology (every reused
        // slot keeps its position) and sole ownership of the buffer.
        // Each spliced segment moves the trace tail behind it, so the
        // path only wins while few slots changed — past a quarter of
        // the program, rebuilding the buffers once is cheaper than the
        // repeated tail moves.
        let identity = rewoven * 4 <= total
            && self.cached.as_ref().is_some_and(|c| c.classes.len() == total)
            && plan.iter().enumerate().all(|(i, p)| p.is_none() || *p == Some(i));
        let mut taken = None;
        if identity {
            if let Some(cw) = self.cached.take() {
                match Arc::try_unwrap(cw.result) {
                    Ok(owned) => taken = Some((owned, cw.classes)),
                    Err(shared) => {
                        self.cached = Some(CachedWeave {
                            revision: cw.revision,
                            classes: cw.classes,
                            result: shared,
                        });
                    }
                }
            }
        }

        let (result, classes) = match taken {
            Some((owned, slots)) => splice_in_place(owned, slots, fresh, program, path),
            None => reassemble(self.cached.as_ref(), &plan, fresh, program, path),
        };
        self.cached = Some(CachedWeave { revision, classes, result: Arc::clone(&result) });
        Ok((result, IncrementalStats { hit, rewoven, total }))
    }

    /// [`IncrementalWeaver::weave_at`] plus the same post-hoc trace
    /// spans [`Weaver::weave_traced`] records — derived purely from the
    /// result, so a cache hit traces byte-identically to a full weave.
    ///
    /// # Errors
    /// Same conditions as [`Weaver::weave`].
    pub fn weave_at_traced(
        &mut self,
        revision: u64,
        program: &Program,
        dirty: Option<&BTreeSet<String>>,
        obs: &comet_obs::Collector,
    ) -> Result<(Arc<WeaveResult>, IncrementalStats), WeaveError> {
        let (result, stats) = self.weave_at(revision, program, dirty)?;
        if obs.is_enabled() {
            crate::weaver::record_weave_trace(obs, self.weaver.aspects().len(), &result);
        }
        Ok((result, stats))
    }
}

/// The hot splice: overwrite re-woven slots inside the recovered result
/// buffer. Trace segments are replaced back-to-front (execution phase
/// first — it sits behind the call phase in the flat trace) so the
/// offsets computed from the *previous* slot metadata stay valid while
/// earlier segments are still untouched. Nothing here copies a reused
/// class or trace record.
fn splice_in_place(
    mut owned: WeaveResult,
    mut slots: Vec<CachedClass>,
    mut fresh: Vec<FreshClass>,
    program: &Program,
    path: WeavePath,
) -> (Arc<WeaveResult>, Vec<CachedClass>) {
    let (call_off, exec_off) = trace_offsets(&slots);
    for f in fresh.iter_mut().rev() {
        let start = exec_off[f.slot];
        let old = slots[f.slot].execs;
        let execs = std::mem::take(&mut f.execs);
        slots[f.slot].execs = execs.len();
        owned.trace.splice(start..start + old, execs);
    }
    for f in fresh.iter_mut().rev() {
        let start = call_off[f.slot];
        let old = slots[f.slot].calls;
        let calls = std::mem::take(&mut f.calls);
        slots[f.slot].calls = calls.len();
        owned.trace.splice(start..start + old, calls);
    }
    for f in fresh {
        owned.program.classes[f.slot] = f.woven;
        slots[f.slot].input = program.classes[f.slot].clone();
    }
    owned.program.name.clone_from(&program.name);
    owned.path = path;
    let result = Arc::new(owned);
    (result, slots)
}

/// The cold path: build a fresh result, copying reused slots out of the
/// shared previous result (topology changed, or the caller still holds
/// the previous handle).
fn reassemble(
    cached: Option<&CachedWeave>,
    plan: &[Option<usize>],
    fresh: Vec<FreshClass>,
    program: &Program,
    path: WeavePath,
) -> (Arc<WeaveResult>, Vec<CachedClass>) {
    let offsets = cached.map(|c| trace_offsets(&c.classes));
    let mut fresh = fresh.into_iter();
    let mut out = Program::new(program.name.clone());
    let mut slots = Vec::with_capacity(plan.len());
    let mut call_segs: Vec<Vec<WovenJoinPoint>> = Vec::with_capacity(plan.len());
    let mut exec_segs: Vec<Vec<WovenJoinPoint>> = Vec::with_capacity(plan.len());
    for (i, reuse) in plan.iter().enumerate() {
        match reuse {
            Some(j) => {
                let cw = cached.expect("plan only reuses when a cache exists");
                let (call_off, exec_off) = offsets.as_ref().expect("offsets follow cache");
                let meta = &cw.classes[*j];
                out.classes.push(cw.result.program.classes[*j].clone());
                call_segs.push(cw.result.trace[call_off[*j]..call_off[*j] + meta.calls].to_vec());
                exec_segs.push(cw.result.trace[exec_off[*j]..exec_off[*j] + meta.execs].to_vec());
                slots.push(CachedClass {
                    input: program.classes[i].clone(),
                    calls: meta.calls,
                    execs: meta.execs,
                });
            }
            None => {
                let f = fresh.next().expect("one fresh weave per unplanned slot");
                debug_assert_eq!(f.slot, i);
                slots.push(CachedClass {
                    input: program.classes[i].clone(),
                    calls: f.calls.len(),
                    execs: f.execs.len(),
                });
                out.classes.push(f.woven);
                call_segs.push(f.calls);
                exec_segs.push(f.execs);
            }
        }
    }
    let mut trace = Vec::new();
    for seg in call_segs {
        trace.extend(seg);
    }
    for seg in exec_segs {
        trace.extend(seg);
    }
    let result = Arc::new(WeaveResult { program: out, trace, path });
    (result, slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::{Advice, AdviceKind, Aspect};
    use crate::pointcut::parse_pointcut;
    use comet_codegen::{Block, Expr, MethodDecl, Stmt};

    fn program(n: usize) -> Program {
        let mut p = Program::new("app");
        for i in 0..n {
            let mut c = ClassDecl::new(format!("C{i}"));
            let mut m = MethodDecl::new("run");
            m.body = Block::of(vec![Stmt::Expr(Expr::call_this("helper", vec![]))]);
            c.methods.push(m);
            c.methods.push(MethodDecl::new("helper"));
            p.classes.push(c);
        }
        p
    }

    fn aspects() -> Vec<Aspect> {
        vec![
            Aspect::new("log").with_advice(Advice::new(
                AdviceKind::Before,
                parse_pointcut("execution(*.run)").unwrap(),
                Block::of(vec![Stmt::Expr(Expr::intrinsic(
                    "log.emit",
                    vec![Expr::str("info"), Expr::var("__jp")],
                ))]),
            )),
            Aspect::new("audit").with_advice(Advice::new(
                AdviceKind::After,
                parse_pointcut("call(*.helper)").unwrap(),
                Block::of(vec![Stmt::Expr(Expr::intrinsic(
                    "log.emit",
                    vec![Expr::str("info"), Expr::str("post")],
                ))]),
            )),
        ]
    }

    #[test]
    fn unchanged_revision_is_a_full_hit() {
        let p = program(5);
        let mut iw = IncrementalWeaver::new(Weaver::new(aspects()));
        let (first, s0) = iw.weave_at(1, &p, None).unwrap();
        assert!(!s0.hit);
        assert_eq!(s0.rewoven, 5);
        let (again, s1) = iw.weave_at(1, &p, None).unwrap();
        assert!(s1.hit);
        assert_eq!(s1.rewoven, 0, "unchanged revision must not re-weave");
        assert_eq!(first, again);
        // The hit is a shared handle, not a copy.
        assert!(Arc::ptr_eq(&first, &again));
    }

    #[test]
    fn empty_delta_reweaves_zero_classes() {
        let p = program(5);
        let mut iw = IncrementalWeaver::new(Weaver::new(aspects()));
        iw.weave_at(1, &p, None).unwrap();
        let (spliced, stats) = iw.weave_at(2, &p, Some(&BTreeSet::new())).unwrap();
        assert!(stats.hit);
        assert_eq!(stats.rewoven, 0, "empty dirty set must splice everything");
        assert_eq!(*spliced, Weaver::new(aspects()).weave(&p).unwrap());
    }

    #[test]
    fn dirty_subset_reweaves_only_that_subset_byte_identically() {
        let mut p = program(6);
        let mut iw = IncrementalWeaver::new(Weaver::new(aspects()));
        iw.weave_at(1, &p, None).unwrap();
        // Edit one class: add a method that the execution pointcut
        // doesn't select but that changes the declaration.
        p.classes[2].methods.push(MethodDecl::new("extra"));
        let dirty: BTreeSet<String> = ["C2".to_owned()].into();
        let (spliced, stats) = iw.weave_at(2, &p, Some(&dirty)).unwrap();
        assert!(stats.hit);
        assert_eq!(stats.rewoven, 1);
        assert_eq!(stats.total, 6);
        assert_eq!(*spliced, Weaver::new(aspects()).weave(&p).unwrap());
    }

    #[test]
    fn splice_reuses_the_result_buffer_once_the_caller_drops_it() {
        let mut p = program(6);
        let mut iw = IncrementalWeaver::new(Weaver::new(aspects()));
        iw.weave_at(1, &p, None).unwrap(); // handle dropped immediately
        p.classes[2].methods.push(MethodDecl::new("extra"));
        let dirty: BTreeSet<String> = ["C2".to_owned()].into();
        let (spliced, _) = iw.weave_at(2, &p, Some(&dirty)).unwrap();
        // A reused class must be the same woven output, and the whole
        // result byte-identical to the oracle even on the in-place path.
        assert_eq!(*spliced, Weaver::new(aspects()).weave(&p).unwrap());
        // Holding the handle forces the copy fallback; still identical.
        p.classes[3].methods.push(MethodDecl::new("extra2"));
        let dirty: BTreeSet<String> = ["C3".to_owned()].into();
        let (again, stats) = iw.weave_at(3, &p, Some(&dirty)).unwrap();
        assert_eq!(stats.rewoven, 1);
        assert_eq!(*again, Weaver::new(aspects()).weave(&p).unwrap());
        drop(spliced);
    }

    #[test]
    fn changed_declaration_outside_dirty_set_is_still_rewoven() {
        let mut p = program(4);
        let mut iw = IncrementalWeaver::new(Weaver::new(aspects()));
        iw.weave_at(1, &p, None).unwrap();
        // Lie about the dirty set: change C1 but only name C3 dirty.
        // The input-equality guard must catch C1 anyway.
        p.classes[1].methods.push(MethodDecl::new("sneaky"));
        let dirty: BTreeSet<String> = ["C3".to_owned()].into();
        let (spliced, stats) = iw.weave_at(2, &p, Some(&dirty)).unwrap();
        assert_eq!(stats.rewoven, 2);
        assert_eq!(*spliced, Weaver::new(aspects()).weave(&p).unwrap());
    }

    #[test]
    fn unknown_delta_forces_full_reweave() {
        let p = program(4);
        let mut iw = IncrementalWeaver::new(Weaver::new(aspects()));
        iw.weave_at(1, &p, None).unwrap();
        let (_, stats) = iw.weave_at(2, &p, None).unwrap();
        assert_eq!(stats.rewoven, 4, "None delta means nothing can be trusted");
    }

    #[test]
    fn class_addition_and_removal_splice_correctly() {
        let mut p = program(5);
        let mut iw = IncrementalWeaver::new(Weaver::new(aspects()));
        iw.weave_at(1, &p, None).unwrap();
        // Remove C4, add C9.
        p.classes.pop();
        let mut fresh = ClassDecl::new("C9");
        fresh.methods.push(MethodDecl::new("run"));
        p.classes.push(fresh);
        let dirty: BTreeSet<String> = ["C4".to_owned(), "C9".to_owned()].into();
        let (spliced, stats) = iw.weave_at(2, &p, Some(&dirty)).unwrap();
        assert_eq!(stats.rewoven, 1, "only the new class is woven work");
        assert_eq!(*spliced, Weaver::new(aspects()).weave(&p).unwrap());
    }

    #[test]
    fn invalidate_drops_the_cache() {
        let p = program(3);
        let mut iw = IncrementalWeaver::new(Weaver::new(aspects()));
        iw.weave_at(1, &p, None).unwrap();
        iw.invalidate();
        let (_, stats) = iw.weave_at(1, &p, Some(&BTreeSet::new())).unwrap();
        assert!(!stats.hit);
        assert_eq!(stats.rewoven, 3);
    }
}
