//! Precomputed pointcut-match tables: the [`MatchIndex`].
//!
//! The naive weaver re-evaluates every aspect's every pointcut at every
//! join-point shadow it visits — for call shadows that means once per
//! *statement*, so a method that calls `log` in a loop body pays the
//! full pointcut tree again for each occurrence. The `MatchIndex` is
//! built in one pass over the program before any weaving happens:
//!
//! * **Execution table** — per method, the matched advice list grouped
//!   by aspect in precedence order (`exec_layers`). Each pointcut is
//!   evaluated exactly once per (aspect, advice, method).
//! * **Call-shadow table** — per container method, a map keyed by the
//!   callee (`(declaring class if resolvable, method name)`) giving the
//!   matching call advices. Each pointcut is evaluated once per
//!   *distinct* callee in a method, not once per call statement.
//!
//! Both tables are immutable once built, which is what makes the weave
//! itself parallelizable.
//!
//! ## Why per-class parallel weaving is sound
//!
//! Weaving a class only ever (a) rewrites the bodies of that class's
//! own methods and (b) appends `__`-suffixed helper methods to that
//! same class; the decision of *what* to weave comes entirely from this
//! read-only index. In critical-pair terms (Altahat et al., see
//! PAPERS.md): two aspect applications conflict only when their
//! join-point shadows overlap or one application's rewrite creates or
//! destroys a shadow the other matches. Shadows here are (class,
//! method) executions and (class, method, statement) calls — shadows in
//! different classes are disjoint by construction, and helper methods
//! created during weaving are excluded from shadow-hood by the `__`
//! naming rule, so weaving one class can neither create nor destroy a
//! shadow in another. All critical pairs therefore live *within* one
//! class, where the weaver already serializes applications by aspect
//! precedence order. Hence classes are independent units of work:
//! weaving them in any order — or concurrently — produces the same
//! program as the sequential weaver, which the differential property
//! tests in `tests/weaver_properties.rs` check output-byte-for-byte.

use crate::advice::{AdviceKind, Aspect};
use crate::weaver::call_at_statement;
use comet_codegen::{ClassDecl, MethodDecl, Program, Stmt};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};

/// Identity of a call shadow's match-relevant data inside one container
/// method: callee class (when statically resolvable) and callee name.
pub(crate) type CallKey = (Option<String>, String);

/// Match results for one method of one class.
#[derive(Debug, Default)]
pub(crate) struct MethodMatches {
    /// Execution advice grouped by aspect, `(aspect index, advice
    /// indices)`, aspect precedence order, only non-empty groups. Empty
    /// for methods excluded from execution weaving (helpers, already
    /// woven).
    pub exec_layers: Vec<(usize, Vec<usize>)>,
    /// Call-shadow table: distinct callee → matching `(aspect index,
    /// advice index)` pairs in precedence order. Misses are cached as
    /// empty entries so the weave pass never re-evaluates a pointcut.
    pub calls: HashMap<CallKey, Vec<(usize, usize)>>,
    /// True when at least one callee in `calls` has a match; a `false`
    /// lets the weave pass skip rebuilding the method body entirely.
    pub has_call_matches: bool,
}

/// Match results for every method of one class, in declaration order.
#[derive(Debug)]
pub(crate) struct ClassMatches {
    /// One entry per method, same order as `ClassDecl::methods`.
    pub methods: Vec<MethodMatches>,
}

/// The full per-program index; see the module docs.
#[derive(Debug)]
pub(crate) struct MatchIndex {
    classes: Vec<ClassMatches>,
}

impl MatchIndex {
    /// Builds the index in one (parallel) pass over `program`.
    /// `aspects` is the effective list in precedence order, including
    /// any synthesized cflow instrumentation aspect.
    pub(crate) fn build(aspects: &[&Aspect], program: &Program) -> Self {
        let call_advices = call_advice_candidates(aspects);
        let classes: Vec<ClassMatches> = if crate::weaver::use_sequential(program.classes.len()) {
            program.classes.iter().map(|c| index_class(aspects, &call_advices, c)).collect()
        } else {
            let class_indices: Vec<usize> = (0..program.classes.len()).collect();
            class_indices
                .par_iter()
                .map(|&ci| index_class(aspects, &call_advices, &program.classes[ci]))
                .collect()
        };
        MatchIndex { classes }
    }

    /// The match tables for the class at position `i` in the program.
    pub(crate) fn class(&self, i: usize) -> &ClassMatches {
        &self.classes[i]
    }
}

/// Call advice candidates: only before/after participate at call
/// shadows (validation rejects user around/afterX there; the
/// synthesized cflow instrumentation may legitimately carry around
/// advice whose inner pointcut selects calls, and the naive weaver
/// ignores it at call shadows — so exclude it here for identical
/// output).
pub(crate) fn call_advice_candidates(aspects: &[&Aspect]) -> Vec<(usize, usize)> {
    aspects
        .iter()
        .enumerate()
        .flat_map(|(k, aspect)| {
            aspect
                .advices
                .iter()
                .enumerate()
                .filter(|(_, adv)| {
                    adv.pointcut.selects_calls()
                        && matches!(adv.kind, AdviceKind::Before | AdviceKind::After)
                })
                .map(move |(j, _)| (k, j))
        })
        .collect()
}

/// Builds the match tables for one class — the per-class unit the
/// incremental weaver re-indexes when splicing.
pub(crate) fn index_class(
    aspects: &[&Aspect],
    call_advices: &[(usize, usize)],
    class: &ClassDecl,
) -> ClassMatches {
    let method_names: HashSet<&str> = class.methods.iter().map(|m| m.name.as_str()).collect();
    let methods = class
        .methods
        .iter()
        .map(|method| index_method(aspects, call_advices, class, method, &method_names))
        .collect();
    ClassMatches { methods }
}

fn index_method(
    aspects: &[&Aspect],
    call_advices: &[(usize, usize)],
    class: &ClassDecl,
    method: &MethodDecl,
    method_names: &HashSet<&str>,
) -> MethodMatches {
    let is_helper = method.name.contains("__");
    // Execution weaving skips helpers and methods whose functional
    // reification already exists (idempotence), mirroring the weaver's
    // own rule.
    let already_woven =
        is_helper || method_names.contains(format!("{}__functional", method.name).as_str());
    let exec_layers = if already_woven {
        Vec::new()
    } else {
        aspects
            .iter()
            .enumerate()
            .filter_map(|(k, aspect)| {
                let matching: Vec<usize> = aspect
                    .advices
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.pointcut.matches_execution(class, method))
                    .map(|(j, _)| j)
                    .collect();
                (!matching.is_empty()).then_some((k, matching))
            })
            .collect()
    };

    // Call shadows: helpers are never containers, and with no call
    // advice at all the statement walk is skipped outright.
    let mut calls = HashMap::new();
    if !is_helper && !call_advices.is_empty() {
        for stmt in &method.body.stmts {
            collect_call_keys(stmt, aspects, call_advices, class, method, &mut calls);
        }
    }
    let has_call_matches = calls.values().any(|v: &Vec<(usize, usize)>| !v.is_empty());
    MethodMatches { exec_layers, calls, has_call_matches }
}

/// Walks `stmt` exactly as the weaver's call pass does, evaluating the
/// call advices once per distinct callee key.
fn collect_call_keys(
    stmt: &Stmt,
    aspects: &[&Aspect],
    call_advices: &[(usize, usize)],
    class: &ClassDecl,
    method: &MethodDecl,
    calls: &mut HashMap<CallKey, Vec<(usize, usize)>>,
) {
    if let Some((callee_class, callee_name)) = call_at_statement(stmt) {
        // Weaver-generated helpers are never advised as callees.
        if callee_name.contains("__") {
            return;
        }
        calls.entry((callee_class, callee_name)).or_insert_with_key(|(cc, cn)| {
            call_advices
                .iter()
                .copied()
                .filter(|&(k, j)| {
                    aspects[k].advices[j].pointcut.matches_call(class, method, cc.as_deref(), cn)
                })
                .collect()
        });
        // A statement that *is* a call shadow is wrapped whole; the
        // weaver does not look for further shadows inside it.
        return;
    }
    match stmt {
        Stmt::If { then_block, else_block, .. } => {
            for s in &then_block.stmts {
                collect_call_keys(s, aspects, call_advices, class, method, calls);
            }
            if let Some(eb) = else_block {
                for s in &eb.stmts {
                    collect_call_keys(s, aspects, call_advices, class, method, calls);
                }
            }
        }
        Stmt::While { body, .. } => {
            for s in &body.stmts {
                collect_call_keys(s, aspects, call_advices, class, method, calls);
            }
        }
        Stmt::TryCatch { body, handler, finally, .. } => {
            for s in &body.stmts {
                collect_call_keys(s, aspects, call_advices, class, method, calls);
            }
            for s in &handler.stmts {
                collect_call_keys(s, aspects, call_advices, class, method, calls);
            }
            if let Some(fb) = finally {
                for s in &fb.stmts {
                    collect_call_keys(s, aspects, call_advices, class, method, calls);
                }
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                collect_call_keys(s, aspects, call_advices, class, method, calls);
            }
        }
        _ => {}
    }
}
