//! # comet-aop — aspect-oriented programming over the code IR
//!
//! The paper pairs every concrete model transformation with a concrete
//! *aspect* that implements the concern at code level. AspectJ (the
//! paper's reference implementation substrate) is not available in Rust,
//! so this crate implements the join-point/pointcut/advice model as a
//! **source-level weaver over the `comet-codegen` IR**:
//!
//! * **Join points**: method executions, plus statement-position method
//!   calls (for `call(...)` pointcuts with before/after advice).
//! * **Pointcuts**: a small language with `execution(Type.method)`,
//!   `call(Type.method)`, `within(Type)`, `@class(Ann)`,
//!   `@method(Ann)`, `args(n)`, `*` wildcards, and `&&`/`||`/`!`.
//! * **Advice**: `before`, `after` (finally), `afterReturning`,
//!   `afterThrowing`, and `around` with `proceed(...)`.
//! * **Precedence**: aspects are woven in list order; earlier aspects are
//!   *outer* — exactly the paper's rule that the order of concrete model
//!   transformations dictates aspect precedence at code level.
//!
//! ## Example
//!
//! ```
//! use comet_aop::{Advice, AdviceKind, Aspect, Weaver, parse_pointcut};
//! use comet_codegen::{Block, Expr, Stmt, Program, ClassDecl, MethodDecl};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = Program::new("app");
//! let mut class = ClassDecl::new("Account");
//! class.methods.push(MethodDecl::new("deposit"));
//! program.classes.push(class);
//!
//! let logging = Aspect::new("logging").with_advice(Advice::new(
//!     AdviceKind::Before,
//!     parse_pointcut("execution(Account.*)")?,
//!     Block::of(vec![Stmt::Expr(Expr::intrinsic(
//!         "log.emit",
//!         vec![Expr::str("info"), Expr::var("__jp")],
//!     ))]),
//! ));
//! let woven = Weaver::new(vec![logging]).weave(&program)?;
//! assert_eq!(woven.trace.len(), 1);
//! # Ok(())
//! # }
//! ```

mod advice;
mod incremental;
mod index;
mod metrics;
mod pattern;
mod pointcut;
mod weaver;

pub use advice::{Advice, AdviceKind, Aspect};
pub use incremental::{IncrementalStats, IncrementalWeaver};
pub use metrics::{concern_metrics, ConcernMetrics, MetricsReport};
pub use pattern::NamePattern;
pub use pointcut::{parse_pointcut, Pointcut, PointcutParseError};
pub use weaver::{
    Shadow, WeaveError, WeavePath, WeaveResult, Weaver, WovenJoinPoint, PARALLEL_MIN_CLASSES,
};
