//! Scattering/tangling metrics over programs, used by experiment E5 to
//! compare the paper's proposal (functional code + woven aspects) with
//! the monolithic baseline (inlined concern code).
//!
//! A statement *belongs to* a concern when it contains an intrinsic call
//! whose name starts with the concern's prefix (`tx.`, `sec.`, `net.`,
//! `log.`, `lock.`). Classes whose name ends in a weaver/aspect marker
//! are attributed to their concern wholesale.

use comet_codegen::{Block, Expr, LValue, Program, Stmt};
use std::collections::BTreeMap;
use std::fmt;

/// Metrics for one concern within one program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConcernMetrics {
    /// Number of classes containing at least one statement of the concern
    /// (degree of scattering).
    pub scattered_classes: usize,
    /// Number of methods containing at least one statement of the concern.
    pub scattered_methods: usize,
    /// Total statements attributed to the concern.
    pub statements: usize,
}

/// A full metrics report: per-concern metrics plus tangling.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// Metrics per concern prefix (e.g. `"tx"`).
    pub concerns: BTreeMap<String, ConcernMetrics>,
    /// Number of methods touched by >= 2 concerns (tangled methods).
    pub tangled_methods: usize,
    /// Total number of methods inspected.
    pub total_methods: usize,
    /// Total statements in the program.
    pub total_statements: usize,
}

impl MetricsReport {
    /// Fraction of methods tangled by two or more concerns.
    pub fn tangling_ratio(&self) -> f64 {
        if self.total_methods == 0 {
            0.0
        } else {
            self.tangled_methods as f64 / self.total_methods as f64
        }
    }

    /// The report as a JSON document rendered through the shared
    /// `comet_obs::JsonValue` pretty writer (the same path the serving
    /// metrics snapshots use), consumed by `comet-cli metrics --json`
    /// and downstream tooling. `tangling_ratio` is emitted with fixed
    /// 6-decimal precision so output is byte-stable across platforms.
    pub fn to_json(&self) -> String {
        use comet_obs::JsonValue;
        let concerns = self
            .concerns
            .iter()
            .map(|(name, m)| {
                (
                    name.clone(),
                    JsonValue::Obj(vec![
                        ("scattered_classes".into(), JsonValue::Num(m.scattered_classes as f64)),
                        ("scattered_methods".into(), JsonValue::Num(m.scattered_methods as f64)),
                        ("statements".into(), JsonValue::Num(m.statements as f64)),
                    ]),
                )
            })
            .collect();
        JsonValue::Obj(vec![
            ("total_methods".into(), JsonValue::Num(self.total_methods as f64)),
            ("tangled_methods".into(), JsonValue::Num(self.tangled_methods as f64)),
            ("tangling_ratio".into(), JsonValue::Fixed(self.tangling_ratio(), 6)),
            ("total_statements".into(), JsonValue::Num(self.total_statements as f64)),
            ("concerns".into(), JsonValue::Obj(concerns)),
        ])
        .to_pretty()
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "methods={} tangled={} ({:.1}%) statements={}",
            self.total_methods,
            self.tangled_methods,
            100.0 * self.tangling_ratio(),
            self.total_statements
        )?;
        for (c, m) in &self.concerns {
            writeln!(
                f,
                "  {c}: classes={} methods={} stmts={}",
                m.scattered_classes, m.scattered_methods, m.statements
            )?;
        }
        Ok(())
    }
}

/// Computes concern metrics for `program`, attributing statements to the
/// given concern prefixes (without the trailing dot, e.g. `["tx","sec"]`).
pub fn concern_metrics(program: &Program, prefixes: &[&str]) -> MetricsReport {
    let mut report =
        MetricsReport { total_statements: program.statement_count(), ..MetricsReport::default() };
    for prefix in prefixes {
        report.concerns.insert((*prefix).to_owned(), ConcernMetrics::default());
    }
    for class in &program.classes {
        let mut class_concerns: BTreeMap<&str, bool> = BTreeMap::new();
        for method in &class.methods {
            report.total_methods += 1;
            let mut method_concerns = 0usize;
            for prefix in prefixes {
                let count = count_block(&method.body, prefix);
                if count > 0 {
                    let m = report.concerns.get_mut(*prefix).expect("prefix inserted above");
                    m.statements += count;
                    m.scattered_methods += 1;
                    method_concerns += 1;
                    class_concerns.insert(prefix, true);
                }
            }
            if method_concerns >= 2 {
                report.tangled_methods += 1;
            }
        }
        for (prefix, _) in class_concerns {
            report.concerns.get_mut(prefix).expect("prefix inserted above").scattered_classes += 1;
        }
    }
    report
}

fn count_block(block: &Block, prefix: &str) -> usize {
    block.stmts.iter().map(|s| count_stmt(s, prefix)).sum()
}

fn count_stmt(stmt: &Stmt, prefix: &str) -> usize {
    let own = usize::from(stmt_has_intrinsic(stmt, prefix));
    let nested = match stmt {
        Stmt::If { then_block, else_block, .. } => {
            count_block(then_block, prefix)
                + else_block.as_ref().map_or(0, |b| count_block(b, prefix))
        }
        Stmt::While { body, .. } => count_block(body, prefix),
        Stmt::TryCatch { body, handler, finally, .. } => {
            count_block(body, prefix)
                + count_block(handler, prefix)
                + finally.as_ref().map_or(0, |b| count_block(b, prefix))
        }
        Stmt::Block(b) => count_block(b, prefix),
        _ => 0,
    };
    own + nested
}

fn stmt_has_intrinsic(stmt: &Stmt, prefix: &str) -> bool {
    match stmt {
        Stmt::Local { init: Some(e), .. } | Stmt::Expr(e) | Stmt::Throw(e) => {
            expr_has_intrinsic(e, prefix)
        }
        Stmt::Assign { target, value } => {
            let t = match target {
                LValue::Field { recv, .. } => expr_has_intrinsic(recv, prefix),
                LValue::Var(_) => false,
            };
            t || expr_has_intrinsic(value, prefix)
        }
        Stmt::Return(Some(e)) => expr_has_intrinsic(e, prefix),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => expr_has_intrinsic(cond, prefix),
        _ => false,
    }
}

fn expr_has_intrinsic(expr: &Expr, prefix: &str) -> bool {
    match expr {
        Expr::Intrinsic { name, args } => {
            name.starts_with(prefix) && name[prefix.len()..].starts_with('.')
                || args.iter().any(|a| expr_has_intrinsic(a, prefix))
        }
        Expr::Field { recv, .. } => expr_has_intrinsic(recv, prefix),
        Expr::Call { recv, args, .. } => {
            recv.as_ref().is_some_and(|r| expr_has_intrinsic(r, prefix))
                || args.iter().any(|a| expr_has_intrinsic(a, prefix))
        }
        Expr::New { args, .. } | Expr::ListLit(args) | Expr::Proceed(args) => {
            args.iter().any(|a| expr_has_intrinsic(a, prefix))
        }
        Expr::Binary { lhs, rhs, .. } => {
            expr_has_intrinsic(lhs, prefix) || expr_has_intrinsic(rhs, prefix)
        }
        Expr::Unary { operand, .. } => expr_has_intrinsic(operand, prefix),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_codegen::{ClassDecl, MethodDecl};

    fn program_with(bodies: Vec<(&str, &str, Vec<Stmt>)>) -> Program {
        let mut p = Program::new("x");
        for (class, method, stmts) in bodies {
            if p.find_class(class).is_none() {
                p.classes.push(ClassDecl::new(class));
            }
            let c = p.find_class_mut(class).unwrap();
            let mut m = MethodDecl::new(method);
            m.body = Block::of(stmts);
            c.methods.push(m);
        }
        p
    }

    fn tx_stmt() -> Stmt {
        Stmt::Expr(Expr::intrinsic("tx.begin", vec![]))
    }

    fn sec_stmt() -> Stmt {
        Stmt::Expr(Expr::intrinsic("sec.check", vec![]))
    }

    #[test]
    fn counts_scattering_and_tangling() {
        let p = program_with(vec![
            ("A", "m1", vec![tx_stmt(), sec_stmt()]),
            ("A", "m2", vec![tx_stmt()]),
            ("B", "m3", vec![sec_stmt()]),
            ("B", "m4", vec![Stmt::Return(None)]),
        ]);
        let r = concern_metrics(&p, &["tx", "sec"]);
        assert_eq!(r.concerns["tx"].scattered_classes, 1);
        assert_eq!(r.concerns["tx"].scattered_methods, 2);
        assert_eq!(r.concerns["tx"].statements, 2);
        assert_eq!(r.concerns["sec"].scattered_classes, 2);
        assert_eq!(r.tangled_methods, 1);
        assert_eq!(r.total_methods, 4);
        assert!(r.tangling_ratio() > 0.24 && r.tangling_ratio() < 0.26);
        assert!(r.to_string().contains("tx:"));
    }

    #[test]
    fn prefix_matching_requires_dot_boundary() {
        let p =
            program_with(vec![("A", "m", vec![Stmt::Expr(Expr::intrinsic("txn.other", vec![]))])]);
        let r = concern_metrics(&p, &["tx"]);
        assert_eq!(r.concerns["tx"].statements, 0);
    }

    #[test]
    fn nested_statements_counted() {
        let p = program_with(vec![(
            "A",
            "m",
            vec![Stmt::TryCatch {
                body: Block::of(vec![tx_stmt()]),
                var: "e".into(),
                handler: Block::of(vec![tx_stmt()]),
                finally: Some(Block::of(vec![tx_stmt()])),
            }],
        )]);
        let r = concern_metrics(&p, &["tx"]);
        assert_eq!(r.concerns["tx"].statements, 3);
    }

    #[test]
    fn empty_program() {
        let r = concern_metrics(&Program::new("x"), &["tx"]);
        assert_eq!(r.total_methods, 0);
        assert_eq!(r.tangling_ratio(), 0.0);
    }

    #[test]
    fn json_report_is_valid_and_complete() {
        let p = program_with(vec![
            ("A", "m1", vec![tx_stmt(), sec_stmt()]),
            ("A", "m2", vec![tx_stmt()]),
        ]);
        let r = concern_metrics(&p, &["tx", "sec"]);
        let json = r.to_json();
        let doc = comet_obs::JsonValue::parse(&json).expect("well-formed JSON");
        assert_eq!(doc.get("total_methods").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(doc.get("tangled_methods").and_then(|v| v.as_u64()), Some(1));
        let tx = doc.get("concerns").and_then(|c| c.get("tx")).expect("tx entry");
        assert_eq!(tx.get("statements").and_then(|v| v.as_u64()), Some(2));
        // The NaN trap: an empty program must serialize a real number.
        let empty = concern_metrics(&Program::new("x"), &["tx"]).to_json();
        assert!(empty.contains("\"tangling_ratio\": 0.000000"), "{empty}");
        assert!(comet_obs::JsonValue::parse(&empty).is_ok());
    }
}
