//! The pointcut language: designators, a hand-written parser, and the
//! matcher over execution shadows (class, method).

use crate::pattern::NamePattern;
use comet_codegen::{ClassDecl, MethodDecl};
use std::fmt;

/// A pointcut expression selecting join-point shadows.
#[derive(Debug, Clone, PartialEq)]
pub enum Pointcut {
    /// `execution(Type.method)` — matches executions of matching methods.
    Execution {
        /// Class pattern.
        class: NamePattern,
        /// Method pattern.
        method: NamePattern,
    },
    /// `call(Type.method)` — matches statement-position calls to matching
    /// methods (receiver type is not statically known in the IR, so the
    /// class pattern matches the *callee method name's* declaring class
    /// when resolvable, and `*` otherwise).
    Call {
        /// Class pattern.
        class: NamePattern,
        /// Method pattern.
        method: NamePattern,
    },
    /// `within(Type)` — restricts to shadows lexically inside classes
    /// matching the pattern.
    Within(NamePattern),
    /// `@class(Annotation)` — the declaring class carries the annotation.
    AnnotatedClass(String),
    /// `@method(Annotation)` — the method carries the annotation.
    AnnotatedMethod(String),
    /// `args(n)` — the method takes exactly `n` parameters.
    ArgsCount(usize),
    /// `cflow(pointcut)` — matches join points occurring within the
    /// dynamic control flow of a join point selected by the inner
    /// pointcut. Statically matches *every* shadow; the weaver inserts a
    /// runtime counter guard (the AspectJ implementation strategy).
    /// Only valid as a top-level conjunct (not under `!` or `||`).
    Cflow(Box<Pointcut>),
    /// Conjunction.
    And(Box<Pointcut>, Box<Pointcut>),
    /// Disjunction.
    Or(Box<Pointcut>, Box<Pointcut>),
    /// Negation.
    Not(Box<Pointcut>),
}

impl Pointcut {
    /// Returns true when this pointcut selects the *execution* of
    /// `method` declared in `class`.
    pub fn matches_execution(&self, class: &ClassDecl, method: &MethodDecl) -> bool {
        match self {
            Pointcut::Execution { class: cp, method: mp } => {
                cp.matches(&class.name) && mp.matches(&method.name)
            }
            // A `call` designator never matches an execution shadow.
            Pointcut::Call { .. } => false,
            // Dynamic residue: statically matches anywhere; the weaver
            // guards the advice body with a runtime counter check.
            Pointcut::Cflow(_) => true,
            Pointcut::Within(cp) => cp.matches(&class.name),
            Pointcut::AnnotatedClass(a) => class.has_annotation(a),
            Pointcut::AnnotatedMethod(a) => method.has_annotation(a),
            Pointcut::ArgsCount(n) => method.params.len() == *n,
            Pointcut::And(l, r) => {
                l.matches_execution(class, method) && r.matches_execution(class, method)
            }
            Pointcut::Or(l, r) => {
                l.matches_execution(class, method) || r.matches_execution(class, method)
            }
            Pointcut::Not(p) => !p.matches_execution(class, method),
        }
    }

    /// Returns true when this pointcut selects a *call* shadow: a call to
    /// `callee_method` (declared in `callee_class` when resolvable)
    /// occurring inside `within_class.within_method`.
    pub fn matches_call(
        &self,
        within_class: &ClassDecl,
        within_method: &MethodDecl,
        callee_class: Option<&str>,
        callee_method: &str,
    ) -> bool {
        match self {
            Pointcut::Call { class: cp, method: mp } => {
                let class_ok = match callee_class {
                    Some(c) => cp.matches(c),
                    None => cp.is_wildcard(),
                };
                class_ok && mp.matches(callee_method)
            }
            Pointcut::Execution { .. } => false,
            Pointcut::Cflow(_) => true,
            Pointcut::Within(cp) => cp.matches(&within_class.name),
            Pointcut::AnnotatedClass(a) => within_class.has_annotation(a),
            Pointcut::AnnotatedMethod(a) => within_method.has_annotation(a),
            Pointcut::ArgsCount(_) => false,
            Pointcut::And(l, r) => {
                l.matches_call(within_class, within_method, callee_class, callee_method)
                    && r.matches_call(within_class, within_method, callee_class, callee_method)
            }
            Pointcut::Or(l, r) => {
                l.matches_call(within_class, within_method, callee_class, callee_method)
                    || r.matches_call(within_class, within_method, callee_class, callee_method)
            }
            Pointcut::Not(p) => {
                !p.matches_call(within_class, within_method, callee_class, callee_method)
            }
        }
    }

    /// True when the pointcut tree contains a `call(...)` designator.
    pub fn selects_calls(&self) -> bool {
        match self {
            Pointcut::Call { .. } => true,
            Pointcut::And(l, r) | Pointcut::Or(l, r) => l.selects_calls() || r.selects_calls(),
            Pointcut::Not(p) => p.selects_calls(),
            Pointcut::Cflow(p) => p.selects_calls(),
            _ => false,
        }
    }

    /// Collects the inner pointcuts of every top-level `cflow(...)`
    /// conjunct.
    ///
    /// # Errors
    /// Returns the offending subtree's text when a `cflow` occurs under
    /// `!` or `||` (dynamic residues there are not supported).
    pub fn cflow_conjuncts(&self) -> Result<Vec<&Pointcut>, String> {
        fn contains_cflow(p: &Pointcut) -> bool {
            match p {
                Pointcut::Cflow(_) => true,
                Pointcut::And(l, r) | Pointcut::Or(l, r) => contains_cflow(l) || contains_cflow(r),
                Pointcut::Not(inner) => contains_cflow(inner),
                _ => false,
            }
        }
        match self {
            Pointcut::Cflow(inner) => {
                if contains_cflow(inner) {
                    Err(format!("nested cflow in `{self}`"))
                } else {
                    Ok(vec![inner.as_ref()])
                }
            }
            Pointcut::And(l, r) => {
                let mut out = l.cflow_conjuncts()?;
                out.extend(r.cflow_conjuncts()?);
                Ok(out)
            }
            Pointcut::Or(l, r) => {
                if contains_cflow(l) || contains_cflow(r) {
                    Err(format!("cflow under `||` in `{self}`"))
                } else {
                    Ok(Vec::new())
                }
            }
            Pointcut::Not(inner) => {
                if contains_cflow(inner) {
                    Err(format!("cflow under `!` in `{self}`"))
                } else {
                    Ok(Vec::new())
                }
            }
            _ => Ok(Vec::new()),
        }
    }
}

impl fmt::Display for Pointcut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pointcut::Execution { class, method } => write!(f, "execution({class}.{method})"),
            Pointcut::Call { class, method } => write!(f, "call({class}.{method})"),
            Pointcut::Cflow(p) => write!(f, "cflow({p})"),
            Pointcut::Within(c) => write!(f, "within({c})"),
            Pointcut::AnnotatedClass(a) => write!(f, "@class({a})"),
            Pointcut::AnnotatedMethod(a) => write!(f, "@method({a})"),
            Pointcut::ArgsCount(n) => write!(f, "args({n})"),
            Pointcut::And(l, r) => write!(f, "({l} && {r})"),
            Pointcut::Or(l, r) => write!(f, "({l} || {r})"),
            Pointcut::Not(p) => write!(f, "!{p}"),
        }
    }
}

/// Pointcut parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointcutParseError {
    /// Explanation of the failure.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for PointcutParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for PointcutParseError {}

/// Parses a pointcut expression, e.g.
/// `execution(Bank.*) && @method(Transactional) && !within(Test*)`.
///
/// # Errors
/// Returns [`PointcutParseError`] on malformed input.
pub fn parse_pointcut(source: &str) -> Result<Pointcut, PointcutParseError> {
    let mut p = PcParser { src: source.as_bytes(), pos: 0 };
    let pc = p.or_expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(pc)
}

struct PcParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> PcParser<'a> {
    fn err(&self, message: &str) -> PointcutParseError {
        PointcutParseError { message: message.to_owned(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && (self.src[self.pos] as char).is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Pointcut, PointcutParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat("||") {
            let rhs = self.and_expr()?;
            lhs = Pointcut::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Pointcut, PointcutParseError> {
        let mut lhs = self.unary()?;
        while self.eat("&&") {
            let rhs = self.unary()?;
            lhs = Pointcut::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Pointcut, PointcutParseError> {
        self.skip_ws();
        if self.eat("!") {
            let inner = self.unary()?;
            return Ok(Pointcut::Not(Box::new(inner)));
        }
        if self.eat("(") {
            let inner = self.or_expr()?;
            if !self.eat(")") {
                return Err(self.err("expected `)`"));
            }
            return Ok(inner);
        }
        self.designator()
    }

    fn word(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '*' || c == '@' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn designator(&mut self) -> Result<Pointcut, PointcutParseError> {
        let name = self.word();
        if name.is_empty() {
            return Err(self.err("expected a pointcut designator"));
        }
        if !self.eat("(") {
            return Err(self.err("expected `(` after designator"));
        }
        if name == "cflow" {
            let inner = self.or_expr()?;
            if !self.eat(")") {
                return Err(self.err("expected `)` after cflow pointcut"));
            }
            return Ok(Pointcut::Cflow(Box::new(inner)));
        }
        let result = match name.as_str() {
            "execution" | "call" => {
                let class = self.word();
                if !self.eat(".") {
                    return Err(self.err("expected `.` between class and method pattern"));
                }
                let method = self.word();
                if class.is_empty() || method.is_empty() {
                    return Err(self.err("empty pattern"));
                }
                if name == "execution" {
                    Pointcut::Execution {
                        class: NamePattern::new(class),
                        method: NamePattern::new(method),
                    }
                } else {
                    Pointcut::Call {
                        class: NamePattern::new(class),
                        method: NamePattern::new(method),
                    }
                }
            }
            "within" => {
                let class = self.word();
                if class.is_empty() {
                    return Err(self.err("empty pattern"));
                }
                Pointcut::Within(NamePattern::new(class))
            }
            "@class" => {
                let ann = self.word();
                if ann.is_empty() {
                    return Err(self.err("empty annotation name"));
                }
                Pointcut::AnnotatedClass(ann)
            }
            "@method" => {
                let ann = self.word();
                if ann.is_empty() {
                    return Err(self.err("empty annotation name"));
                }
                Pointcut::AnnotatedMethod(ann)
            }
            "args" => {
                let n = self.word();
                let count: usize =
                    n.parse().map_err(|_| self.err("expected a number in args(...)"))?;
                Pointcut::ArgsCount(count)
            }
            other => {
                return Err(PointcutParseError {
                    message: format!("unknown designator `{other}`"),
                    offset: self.pos,
                })
            }
        };
        if !self.eat(")") {
            return Err(self.err("expected `)`"));
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_codegen::{Annotation, IrType, Param};

    fn class(name: &str) -> ClassDecl {
        ClassDecl::new(name)
    }

    fn method(name: &str, params: usize) -> MethodDecl {
        let mut m = MethodDecl::new(name);
        for i in 0..params {
            m.params.push(Param::new(format!("p{i}"), IrType::Int));
        }
        m
    }

    #[test]
    fn parses_and_matches_execution() {
        let pc = parse_pointcut("execution(Bank.transfer)").unwrap();
        assert!(pc.matches_execution(&class("Bank"), &method("transfer", 3)));
        assert!(!pc.matches_execution(&class("Bank"), &method("audit", 0)));
        assert!(!pc.matches_execution(&class("Account"), &method("transfer", 3)));
    }

    #[test]
    fn wildcards() {
        let pc = parse_pointcut("execution(*.get*)").unwrap();
        assert!(pc.matches_execution(&class("Account"), &method("getBalance", 0)));
        assert!(!pc.matches_execution(&class("Account"), &method("setBalance", 1)));
    }

    #[test]
    fn boolean_combinators_and_precedence() {
        let pc = parse_pointcut("within(Bank) && !execution(*.audit) || args(9)").unwrap();
        assert!(pc.matches_execution(&class("Bank"), &method("transfer", 3)));
        assert!(!pc.matches_execution(&class("Bank"), &method("audit", 0)));
        assert!(pc.matches_execution(&class("Other"), &method("x", 9)));
    }

    #[test]
    fn annotations_and_args() {
        let pc = parse_pointcut("@method(Transactional) && args(3)").unwrap();
        let mut m = method("transfer", 3);
        m.annotations.push(Annotation::new("Transactional"));
        assert!(pc.matches_execution(&class("Bank"), &m));
        assert!(!pc.matches_execution(&class("Bank"), &method("transfer", 3)));
        let pc = parse_pointcut("@class(Remote)").unwrap();
        let mut c = class("Bank");
        c.annotations.push(Annotation::new("Remote"));
        assert!(pc.matches_execution(&c, &method("x", 0)));
    }

    #[test]
    fn call_designator_matches_call_shadows_only() {
        let pc = parse_pointcut("call(Bank.transfer)").unwrap();
        assert!(!pc.matches_execution(&class("Bank"), &method("transfer", 3)));
        assert!(pc.matches_call(&class("Client"), &method("run", 0), Some("Bank"), "transfer"));
        assert!(!pc.matches_call(&class("Client"), &method("run", 0), Some("Bank"), "audit"));
        // Unresolvable callee class only matches the universal pattern.
        assert!(!pc.matches_call(&class("Client"), &method("run", 0), None, "transfer"));
        let pc = parse_pointcut("call(*.transfer)").unwrap();
        assert!(pc.matches_call(&class("Client"), &method("run", 0), None, "transfer"));
        assert!(pc.selects_calls());
        assert!(!parse_pointcut("execution(A.b)").unwrap().selects_calls());
    }

    #[test]
    fn parens_group() {
        let pc = parse_pointcut("within(Bank) && (execution(*.a) || execution(*.b))").unwrap();
        assert!(pc.matches_execution(&class("Bank"), &method("a", 0)));
        assert!(pc.matches_execution(&class("Bank"), &method("b", 0)));
        assert!(!pc.matches_execution(&class("Bank"), &method("c", 0)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_pointcut("bogus(A.b)").is_err());
        assert!(parse_pointcut("execution(A)").is_err());
        assert!(parse_pointcut("execution(A.b) &&").is_err());
        assert!(parse_pointcut("execution(A.b) extra").is_err());
        assert!(parse_pointcut("args(x)").is_err());
        assert!(parse_pointcut("(execution(A.b)").is_err());
        assert!(parse_pointcut("").is_err());
    }

    #[test]
    fn display_reparses() {
        for src in [
            "execution(Bank.*)",
            "call(*.transfer)",
            "(within(A) && !args(2))",
            "(@class(Remote) || @method(Logged))",
        ] {
            let pc = parse_pointcut(src).unwrap();
            let printed = pc.to_string();
            let re = parse_pointcut(&printed).unwrap();
            assert_eq!(pc, re, "`{src}` -> `{printed}`");
        }
    }
}
