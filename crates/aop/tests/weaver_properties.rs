//! Differential property tests for the weaver: the indexed, per-class
//! parallel [`Weaver::weave`] must produce byte-identical programs and
//! traces to the sequential full-scan reference [`Weaver::weave_naive`],
//! for arbitrary programs and arbitrary aspect lists in arbitrary
//! precedence orders. This is the empirical check backing the
//! critical-pair independence argument in `src/index.rs`.

use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, Weaver};
use comet_codegen::{Block, ClassDecl, Expr, IrType, MethodDecl, Param, Program, Stmt};
use proptest::prelude::*;

const CLASSES: [&str; 4] = ["C0", "C1", "C2", "C3"];
const METHODS: [&str; 4] = ["m0", "m1", "m2", "m3"];

/// Execution pointcuts covering literals, wildcards, name patterns,
/// conjunction with args, disjunction, and a cflow conjunct (which
/// makes the weaver synthesize its instrumentation aspect).
const EXEC_PCS: [&str; 8] = [
    "execution(C0.m0)",
    "execution(C1.*)",
    "execution(*.m1)",
    "execution(*.*)",
    "execution(C*.m*)",
    "execution(*.*) && args(1)",
    "execution(C2.m2) || execution(C3.m3)",
    "execution(*.m0) && cflow(execution(C1.m1))",
];

/// Call pointcuts; only before/after advice is legal at call shadows.
const CALL_PCS: [&str; 4] = ["call(*.m0)", "call(*.m2)", "call(C1.m1)", "call(*.*)"];

const EXEC_KINDS: [AdviceKind; 5] = [
    AdviceKind::Before,
    AdviceKind::After,
    AdviceKind::Around,
    AdviceKind::AfterReturning,
    AdviceKind::AfterThrowing,
];

fn log_stmt(tag: &str) -> Stmt {
    Stmt::Expr(Expr::intrinsic("log.emit", vec![Expr::str("info"), Expr::str(tag)]))
}

/// One statement of a generated method body: `shape` picks the
/// statement form, `callee` the target of any embedded call.
fn build_stmt(shape: u8, callee: u8) -> Stmt {
    let callee = METHODS[callee as usize % METHODS.len()];
    let call = Expr::call_this(callee.to_owned(), vec![]);
    match shape % 6 {
        0 => Stmt::Expr(call),
        1 => Stmt::local("tmp", IrType::Int, call),
        2 => Stmt::If {
            cond: Expr::bool(true),
            then_block: Block::of(vec![Stmt::Expr(call)]),
            else_block: Some(Block::of(vec![log_stmt("else")])),
        },
        3 => Stmt::While { cond: Expr::bool(false), body: Block::of(vec![Stmt::Expr(call)]) },
        4 => Stmt::Block(Block::of(vec![log_stmt("nested"), Stmt::Expr(call)])),
        _ => log_stmt("plain"),
    }
}

/// `(has_param, body statement seeds)` per method slot.
type MethodSpec = (bool, Vec<(u8, u8)>);

fn build_program(spec: &[Vec<MethodSpec>]) -> Program {
    let mut p = Program::new("prop");
    for (ci, methods) in spec.iter().enumerate() {
        let mut class = ClassDecl::new(CLASSES[ci % CLASSES.len()]);
        for (mi, (has_param, stmts)) in methods.iter().enumerate() {
            let mut m = MethodDecl::new(METHODS[mi % METHODS.len()]);
            if *has_param {
                m.params.push(Param::new("x", IrType::Int));
                m.ret = IrType::Int;
            }
            m.body = Block::of(stmts.iter().map(|&(s, c)| build_stmt(s, c)).collect());
            class.methods.push(m);
        }
        p.classes.push(class);
    }
    p
}

/// `(name seed, advices as (is_call, kind seed, pointcut seed))`.
type AspectSpec = Vec<(bool, u8, u8)>;

fn build_aspects(spec: &[AspectSpec]) -> Vec<Aspect> {
    spec.iter()
        .enumerate()
        .map(|(i, advices)| {
            let mut aspect = Aspect::new(format!("asp{i}"));
            for &(is_call, kind, pc) in advices {
                let (kind, pointcut) = if is_call {
                    let kind = if kind % 2 == 0 { AdviceKind::Before } else { AdviceKind::After };
                    (kind, CALL_PCS[pc as usize % CALL_PCS.len()])
                } else {
                    (
                        EXEC_KINDS[kind as usize % EXEC_KINDS.len()],
                        EXEC_PCS[pc as usize % EXEC_PCS.len()],
                    )
                };
                let body = if kind == AdviceKind::Around {
                    Block::of(vec![log_stmt("around"), Stmt::ret(Expr::Proceed(vec![]))])
                } else {
                    Block::of(vec![log_stmt("advice")])
                };
                aspect = aspect.with_advice(Advice::new(
                    kind,
                    parse_pointcut(pointcut).expect("pool pointcuts parse"),
                    body,
                ));
            }
            aspect
        })
        .collect()
}

fn arb_method() -> impl Strategy<Value = MethodSpec> {
    (any::<bool>(), prop::collection::vec((any::<u8>(), any::<u8>()), 0..5))
}

fn arb_program_spec() -> impl Strategy<Value = Vec<Vec<MethodSpec>>> {
    prop::collection::vec(prop::collection::vec(arb_method(), 1..4), 1..5)
}

fn arb_aspect_spec() -> impl Strategy<Value = Vec<AspectSpec>> {
    prop::collection::vec(
        prop::collection::vec((any::<bool>(), any::<u8>(), any::<u8>()), 1..4),
        0..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The core differential property: indexed parallel weave ≡ naive
    /// sequential weave, program and trace, for arbitrary programs and
    /// arbitrary aspect orders.
    #[test]
    fn indexed_parallel_weave_matches_naive(
        pspec in arb_program_spec(),
        aspec in arb_aspect_spec(),
    ) {
        let program = build_program(&pspec);
        let weaver = Weaver::new(build_aspects(&aspec));
        let indexed = weaver.weave(&program).expect("pool aspects are weavable");
        let naive = weaver.weave_naive(&program).expect("pool aspects are weavable");
        prop_assert_eq!(&indexed.program, &naive.program);
        prop_assert_eq!(&indexed.trace, &naive.trace);
    }

    /// Reversing the aspect list is still deterministic: both paths see
    /// the same (different) precedence order and stay identical.
    #[test]
    fn aspect_order_reversal_keeps_paths_identical(
        pspec in arb_program_spec(),
        aspec in arb_aspect_spec(),
    ) {
        let program = build_program(&pspec);
        let mut aspects = build_aspects(&aspec);
        aspects.reverse();
        let weaver = Weaver::new(aspects);
        let indexed = weaver.weave(&program).expect("weavable");
        let naive = weaver.weave_naive(&program).expect("weavable");
        prop_assert_eq!(&indexed.program, &naive.program);
        prop_assert_eq!(&indexed.trace, &naive.trace);
    }

    /// Woven programs are full of `__` helper methods and synthesized
    /// blocks — re-weaving one stresses the helper-exclusion rules, and
    /// the two paths must still agree statement-for-statement.
    #[test]
    fn paths_agree_on_already_woven_input(
        pspec in arb_program_spec(),
        aspec in arb_aspect_spec(),
    ) {
        let program = build_program(&pspec);
        let weaver = Weaver::new(build_aspects(&aspec));
        let once = weaver.weave(&program).expect("weavable");
        let twice = weaver.weave(&once.program).expect("weavable");
        let twice_naive = weaver.weave_naive(&once.program).expect("weavable");
        prop_assert_eq!(&twice.program, &twice_naive.program);
        prop_assert_eq!(&twice.trace, &twice_naive.trace);
    }
}
