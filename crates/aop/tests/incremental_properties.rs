//! Differential property tests for [`IncrementalWeaver`]: against the
//! full [`Weaver::weave`] oracle, the spliced result must be
//! byte-identical — program and trace — for arbitrary edit sequences
//! and, crucially, for **arbitrary dirty-set claims**, including lies
//! (claiming a changed class clean). Correctness rests on the per-class
//! input-equality guard, not on the caller's dirty set being precise;
//! the dirty set only bounds how much work a *truthful* caller pays.

use comet_aop::{parse_pointcut, Advice, AdviceKind, Aspect, IncrementalWeaver, Weaver};
use comet_codegen::{Block, ClassDecl, Expr, IrType, MethodDecl, Param, Program, Stmt};
use proptest::prelude::*;
use std::collections::BTreeSet;

const CLASSES: [&str; 4] = ["C0", "C1", "C2", "C3"];
const METHODS: [&str; 4] = ["m0", "m1", "m2", "m3"];

const EXEC_PCS: [&str; 6] = [
    "execution(C0.m0)",
    "execution(C1.*)",
    "execution(*.m1)",
    "execution(*.*)",
    "execution(C*.m*)",
    "execution(*.*) && args(1)",
];

const CALL_PCS: [&str; 3] = ["call(*.m0)", "call(C1.m1)", "call(*.*)"];

fn log_stmt(tag: &str) -> Stmt {
    Stmt::Expr(Expr::intrinsic("log.emit", vec![Expr::str("info"), Expr::str(tag)]))
}

fn build_stmt(shape: u8, callee: u8) -> Stmt {
    let callee = METHODS[callee as usize % METHODS.len()];
    let call = Expr::call_this(callee.to_owned(), vec![]);
    match shape % 4 {
        0 => Stmt::Expr(call),
        1 => Stmt::local("tmp", IrType::Int, call),
        2 => Stmt::While { cond: Expr::bool(false), body: Block::of(vec![Stmt::Expr(call)]) },
        _ => log_stmt("plain"),
    }
}

/// Per class: methods as `(has_param, statements as (shape, callee))`.
type ClassSpec = Vec<(bool, Vec<(u8, u8)>)>;

fn build_program(spec: &[ClassSpec]) -> Program {
    let mut p = Program::new("prop");
    for (ci, methods) in spec.iter().enumerate() {
        let mut class = ClassDecl::new(CLASSES[ci % CLASSES.len()]);
        for (mi, (has_param, stmts)) in methods.iter().enumerate() {
            let mut m = MethodDecl::new(METHODS[mi % METHODS.len()]);
            if *has_param {
                m.params.push(Param::new("x", IrType::Int));
                m.ret = IrType::Int;
            }
            m.body = Block::of(stmts.iter().map(|&(s, c)| build_stmt(s, c)).collect());
            class.methods.push(m);
        }
        p.classes.push(class);
    }
    p
}

fn build_aspects(spec: &[Vec<(bool, u8, u8)>]) -> Vec<Aspect> {
    spec.iter()
        .enumerate()
        .map(|(i, advices)| {
            let mut aspect = Aspect::new(format!("asp{i}"));
            for &(is_call, kind, pc) in advices {
                let (kind, pointcut) = if is_call {
                    let kind = if kind % 2 == 0 { AdviceKind::Before } else { AdviceKind::After };
                    (kind, CALL_PCS[pc as usize % CALL_PCS.len()])
                } else {
                    let kinds = [AdviceKind::Before, AdviceKind::After, AdviceKind::AfterReturning];
                    (kinds[kind as usize % kinds.len()], EXEC_PCS[pc as usize % EXEC_PCS.len()])
                };
                aspect = aspect.with_advice(Advice::new(
                    kind,
                    parse_pointcut(pointcut).expect("pool pointcuts parse"),
                    Block::of(vec![log_stmt("advice")]),
                ));
            }
            aspect
        })
        .collect()
}

/// One program edit; seeds select targets modulo current size so every
/// sequence is applicable. Returns the names of the classes it touched.
#[derive(Debug, Clone)]
enum Edit {
    AddStmt(u8, u8, u8, u8),
    AddMethod(u8, u8),
    AddClass(u8),
    RemoveClass(u8),
    Nothing,
}

fn apply_edit(program: &mut Program, edit: &Edit) -> Vec<String> {
    match edit {
        Edit::AddStmt(c, m, shape, callee) => {
            if program.classes.is_empty() {
                return Vec::new();
            }
            let ci = *c as usize % program.classes.len();
            let class = &mut program.classes[ci];
            if class.methods.is_empty() {
                return Vec::new();
            }
            let mi = *m as usize % class.methods.len();
            class.methods[mi].body.stmts.push(build_stmt(*shape, *callee));
            vec![class.name.clone()]
        }
        Edit::AddMethod(c, m) => {
            if program.classes.is_empty() {
                return Vec::new();
            }
            let ci = *c as usize % program.classes.len();
            let class = &mut program.classes[ci];
            let mut method = MethodDecl::new(METHODS[*m as usize % METHODS.len()]);
            method.body = Block::of(vec![log_stmt("fresh")]);
            class.methods.push(method);
            vec![class.name.clone()]
        }
        Edit::AddClass(seed) => {
            let mut class = ClassDecl::new(format!("N{seed}"));
            let mut method = MethodDecl::new(METHODS[*seed as usize % METHODS.len()]);
            method.body = Block::of(vec![log_stmt("new-class")]);
            class.methods.push(method);
            let name = class.name.clone();
            program.classes.push(class);
            vec![name]
        }
        Edit::RemoveClass(c) => {
            if program.classes.len() <= 1 {
                return Vec::new();
            }
            let ci = *c as usize % program.classes.len();
            vec![program.classes.remove(ci).name]
        }
        Edit::Nothing => Vec::new(),
    }
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(c, m, s, k)| Edit::AddStmt(c, m, s, k)),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(c, m, s, k)| Edit::AddStmt(c, m, s, k)),
        (any::<u8>(), any::<u8>()).prop_map(|(c, m)| Edit::AddMethod(c, m)),
        any::<u8>().prop_map(Edit::AddClass),
        any::<u8>().prop_map(Edit::RemoveClass),
        Just(Edit::Nothing),
    ]
}

/// How the caller reports the dirty set to the incremental weaver.
/// `Lie` claims nothing changed — the equality guard must compensate.
#[derive(Debug, Clone)]
enum Claim {
    Exact,
    Unknown,
    Padded(u8),
    Lie,
}

fn arb_claim() -> impl Strategy<Value = Claim> {
    prop_oneof![
        Just(Claim::Exact),
        Just(Claim::Exact),
        Just(Claim::Unknown),
        any::<u8>().prop_map(Claim::Padded),
        any::<u8>().prop_map(Claim::Padded),
        Just(Claim::Lie),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole differential property: after every edit, the
    /// incremental weave equals the full weave byte-for-byte no matter
    /// how the dirty set was reported.
    #[test]
    fn incremental_weave_matches_full_weave_under_arbitrary_claims(
        pspec in prop::collection::vec(
            prop::collection::vec(
                (any::<bool>(), prop::collection::vec((any::<u8>(), any::<u8>()), 0..4)),
                1..4,
            ),
            1..5,
        ),
        aspec in prop::collection::vec(
            prop::collection::vec((any::<bool>(), any::<u8>(), any::<u8>()), 1..3),
            0..4,
        ),
        edits in prop::collection::vec((arb_edit(), arb_claim()), 1..10),
    ) {
        let mut program = build_program(&pspec);
        let aspects = build_aspects(&aspec);
        let full = Weaver::new(aspects.clone());
        let mut incremental = IncrementalWeaver::new(Weaver::new(aspects));
        let mut revision = 0u64;

        // Prime the cache with the base program.
        let oracle = full.weave(&program).expect("pool aspects are weavable");
        let (got, _) = incremental.weave_at(revision, &program, None).expect("weavable");
        prop_assert_eq!(&*got, &oracle, "priming weave diverged");

        for (edit, claim) in &edits {
            let touched = apply_edit(&mut program, edit);
            if !touched.is_empty() {
                revision += 1;
            }
            let dirty: Option<BTreeSet<String>> = match claim {
                Claim::Exact => Some(touched.iter().cloned().collect()),
                Claim::Unknown => None,
                Claim::Padded(seed) => {
                    let mut set: BTreeSet<String> = touched.iter().cloned().collect();
                    set.insert(CLASSES[*seed as usize % CLASSES.len()].to_owned());
                    Some(set)
                }
                Claim::Lie => Some(BTreeSet::new()),
            };
            let oracle = full.weave(&program).expect("pool aspects are weavable");
            let (got, stats) =
                incremental.weave_at(revision, &program, dirty.as_ref()).expect("weavable");
            prop_assert_eq!(&got.program, &oracle.program, "programs diverged after {:?}", edit);
            prop_assert_eq!(&got.trace, &oracle.trace, "traces diverged after {:?}", edit);
            prop_assert!(stats.rewoven <= stats.total);
            if touched.is_empty() {
                // No edit, same revision and input: must be a full hit.
                prop_assert!(stats.hit, "unchanged program missed the cache");
                prop_assert_eq!(stats.rewoven, 0, "unchanged program re-wove classes");
            }
        }
    }
}
