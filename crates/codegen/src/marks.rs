//! The shared mark vocabulary: stereotype names and tagged-value keys
//! that concrete model transformations write into the PSM and that both
//! the aspect generators and the monolithic baseline generator read.
//!
//! Centralizing the vocabulary here (the lowest crate that both
//! `comet-concerns` and the baseline generator depend on) keeps the two
//! code paths honest: they consume exactly the same marks, so E5 compares
//! generation *strategies*, not vocabularies.

/// Stereotype marking an operation (or class) as transactional.
pub const STEREO_TRANSACTIONAL: &str = "Transactional";
/// Tag: transaction isolation level (`read-committed` | `serializable`).
pub const TAG_TX_ISOLATION: &str = "comet.tx.isolation";
/// Tag: transaction propagation (`required` | `requires-new`).
pub const TAG_TX_PROPAGATION: &str = "comet.tx.propagation";

/// Stereotype marking an operation as access-controlled.
pub const STEREO_SECURED: &str = "Secured";
/// Tag: role required to invoke the secured operation.
pub const TAG_SEC_ROLE: &str = "comet.sec.role";
/// Tag: security policy on failure (`deny` | `audit`).
pub const TAG_SEC_POLICY: &str = "comet.sec.policy";

/// Stereotype marking a class as remotely accessible.
pub const STEREO_REMOTE: &str = "Remote";
/// Tag: logical node the remote object is deployed on.
pub const TAG_DIST_NODE: &str = "comet.dist.node";
/// Tag: name under which the object registers in the naming service.
pub const TAG_DIST_REGISTRY: &str = "comet.dist.registry";

/// Stereotype marking an operation for call logging.
pub const STEREO_LOGGED: &str = "Logged";
/// Tag: log level (`info` | `debug` | `trace`).
pub const TAG_LOG_LEVEL: &str = "comet.log.level";

/// Stereotype marking an operation as mutually exclusive per object.
pub const STEREO_SYNCHRONIZED: &str = "Synchronized";
/// Tag: name of the lock guarding the synchronized operation.
pub const TAG_SYNC_LOCK: &str = "comet.sync.lock";

/// Name of the naming-service registration operation the distribution
/// transformation adds to remote classes.
pub const DIST_REGISTER_OP: &str = "registerRemote";

/// Stereotype marking a class as persisted to the document store;
/// mutator operations carry it too, so the generators know where to
/// save.
pub const STEREO_PERSISTENT: &str = "Persistent";
/// Tag: the attribute providing the persistence identity (key).
pub const TAG_PERSIST_KEY: &str = "comet.persist.key";
/// Tag: key prefix (collection name) in the document store.
pub const TAG_PERSIST_STORE: &str = "comet.persist.store";
/// Name of the operation the persistence transformation adds for
/// reloading the object from the store.
pub const PERSIST_RELOAD_OP: &str = "reload";

/// Stereotype marking an operation as safely retryable (idempotent per
/// the fault-tolerance parameter set).
pub const STEREO_RETRYABLE: &str = "Retryable";
/// Stereotype marking an operation with a completion deadline.
pub const STEREO_DEADLINE: &str = "Deadline";
/// Stereotype marking an operation as guarded by a circuit breaker.
pub const STEREO_BREAKER: &str = "Breaker";
/// Tag: maximum retry attempts (including the first call).
pub const TAG_FT_MAX_ATTEMPTS: &str = "comet.ft.max_attempts";
/// Tag: base exponential-backoff delay in sim-µs.
pub const TAG_FT_BACKOFF_US: &str = "comet.ft.backoff_us";
/// Tag: completion deadline in sim-µs (0 = none).
pub const TAG_FT_DEADLINE_US: &str = "comet.ft.deadline_us";
/// Tag: consecutive failures before the breaker opens.
pub const TAG_FT_BREAKER_THRESHOLD: &str = "comet.ft.breaker_threshold";
/// Tag: sim-µs an open breaker waits before a half-open probe.
pub const TAG_FT_BREAKER_COOLDOWN_US: &str = "comet.ft.breaker_cooldown_us";

/// Every stereotype of the concern vocabulary. The functional code
/// generator strips these (plus all `comet.*` tags) so the functional
/// artifact is independent of concern parameters — the incrementality
/// property experiment E5 measures.
pub const CONCERN_STEREOTYPES: &[&str] = &[
    STEREO_TRANSACTIONAL,
    STEREO_SECURED,
    STEREO_REMOTE,
    STEREO_LOGGED,
    STEREO_SYNCHRONIZED,
    STEREO_PERSISTENT,
    STEREO_RETRYABLE,
    STEREO_DEADLINE,
    STEREO_BREAKER,
];

/// True for tagged-value keys owned by the concern vocabulary.
pub fn is_concern_tag(key: &str) -> bool {
    key.starts_with("comet.")
}

/// Stereotype pairs that must never land on the same element: marking
/// an element with both is a critical-pair conflict no application
/// order can repair, so interaction analysis reports `Conflicts` even
/// when both orders weave. Each entry is `(a, b, rationale)`.
pub const EXCLUSIVE_STEREOTYPES: &[(&str, &str, &str)] = &[(
    STEREO_RETRYABLE,
    STEREO_SYNCHRONIZED,
    "retrying a lock-guarded operation amplifies lock hold times and \
     turns transient faults into livelock",
)];

/// Intrinsic names understood by the `comet-interp` runtime. The
/// generators emit these; the interpreter binds them to the simulated
/// middleware.
pub mod intrinsics {
    /// Begin a transaction. Args: isolation (Str). Returns tx id (Int).
    pub const TX_BEGIN: &str = "tx.begin";
    /// Commit the current transaction.
    pub const TX_COMMIT: &str = "tx.commit";
    /// True when a transaction is active (propagation checks).
    pub const TX_ACTIVE: &str = "tx.active";
    /// Roll back the current transaction.
    pub const TX_ROLLBACK: &str = "tx.rollback";
    /// Check access. Args: required role (Str), resource (Str). Throws on
    /// denial.
    pub const SEC_CHECK: &str = "sec.check";
    /// Remote call. Args: node (Str), registry name (Str), method (Str),
    /// then the forwarded arguments. Returns the remote result.
    pub const NET_CALL: &str = "net.call";
    /// Remote call taking the forwarded arguments as one list value
    /// (pairs with the weaver-injected `__args` local). Args: node (Str),
    /// registry name (Str), method (Str), args (List).
    pub const NET_CALL_LIST: &str = "net.call_list";
    /// Register `this` in the naming service. Args: node (Str), name (Str).
    pub const NET_REGISTER: &str = "net.register";
    /// True when execution is currently on the given node. Args: node (Str).
    pub const NET_IS_LOCAL: &str = "net.is_local";
    /// Emit a log record. Args: level (Str), message (Str).
    pub const LOG_EMIT: &str = "log.emit";
    /// Acquire a named lock. Args: lock name (Str).
    pub const LOCK_ACQUIRE: &str = "lock.acquire";
    /// Release a named lock. Args: lock name (Str).
    pub const LOCK_RELEASE: &str = "lock.release";
    /// Save a snapshot of `this` under a key. Args: key (Str).
    pub const STORE_SAVE: &str = "store.save";
    /// Load a snapshot into `this`. Args: key (Str). Returns Bool found.
    pub const STORE_LOAD: &str = "store.load";
    /// Current sim time in µs. Returns Int.
    pub const FT_NOW_US: &str = "ft.now_us";
    /// Exponential-backoff sleep advancing the sim clock. Args: attempt
    /// (Int, 1-based), base delay (Int, sim-µs). Returns µs slept (Int).
    pub const FT_BACKOFF: &str = "ft.backoff";
    /// Circuit-breaker admission check; throws a typed circuit-open
    /// error on rejection. Args: callee (Str).
    pub const FT_BREAKER_ALLOW: &str = "ft.breaker.allow";
    /// Record a call outcome on the callee's breaker. Args: callee
    /// (Str), ok (Bool), threshold (Int), cooldown µs (Int).
    pub const FT_BREAKER_RECORD: &str = "ft.breaker.record";
    /// Deadline check; throws a typed deadline error once elapsed time
    /// reaches the limit. Args: callee (Str), start µs (Int), deadline
    /// µs (Int, 0 = disabled).
    pub const FT_DEADLINE_CHECK: &str = "ft.deadline.check";
    /// Enter a cflow context (weaver-internal). Args: key (Str).
    pub const CFLOW_ENTER: &str = "cflow.enter";
    /// Exit a cflow context (weaver-internal). Args: key (Str).
    pub const CFLOW_EXIT: &str = "cflow.exit";
    /// True while inside the cflow context. Args: key (Str).
    pub const CFLOW_ACTIVE: &str = "cflow.active";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_keys_are_namespaced() {
        for key in [
            TAG_TX_ISOLATION,
            TAG_TX_PROPAGATION,
            TAG_SEC_ROLE,
            TAG_SEC_POLICY,
            TAG_DIST_NODE,
            TAG_DIST_REGISTRY,
            TAG_LOG_LEVEL,
            TAG_SYNC_LOCK,
        ] {
            assert!(key.starts_with("comet."), "{key} must be namespaced");
        }
    }

    #[test]
    fn stereotypes_are_capitalized() {
        for s in [
            STEREO_TRANSACTIONAL,
            STEREO_SECURED,
            STEREO_REMOTE,
            STEREO_LOGGED,
            STEREO_SYNCHRONIZED,
        ] {
            assert!(s.chars().next().unwrap().is_uppercase());
        }
    }
}
